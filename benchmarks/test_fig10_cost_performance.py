"""Figure 10: long-run performance on traces.

10a — the canonical checkpointing program's runtime increase shrinks as the
      market MTTF grows: beyond ~20h the overhead is under 10%.
10b — Flint vs unmodified Spark (both with Flint's server selection) on the
      current (calm) spot market and on a volatile GCE-like market:
      paper reports <1% vs >5% (current) and <5% vs ~12% (volatile).
"""


import numpy as np

from repro.analysis.longrun import (
    CanonicalConfig,
    CanonicalSimulator,
    fixed_market_selector,
    flint_batch_selector,
)
from repro.analysis.tables import format_table
from repro.factory import standard_provider, uniform_mttf_provider
from repro.simulation.clock import HOUR

MTTFS_10A = [1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0]
RUNS = 60


def _mean_overhead(provider, config, selector, runs=RUNS, spacing=9 * HOUR):
    sim = CanonicalSimulator(provider, config, selector)
    outcomes = sim.sweep(num_runs=runs, spacing=spacing)
    return float(np.mean([o.overhead for o in outcomes]))


def _fig10a():
    overheads = {}
    for mttf_h in MTTFS_10A:
        provider = uniform_mttf_provider(seed=55, mttf_hours=mttf_h, num_markets=2)
        market = provider.spot_markets()[0].market_id
        config = CanonicalConfig(job_length=4 * HOUR)
        overheads[mttf_h] = _mean_overhead(
            provider, config, fixed_market_selector(market)
        )
    return overheads


def test_fig10a_overhead_vs_mttf(benchmark):
    overheads = benchmark.pedantic(_fig10a, rounds=1, iterations=1)
    rows = [[f"{m:.0f}h", overheads[m] * 100] for m in MTTFS_10A]
    print(format_table(["MTTF", "runtime increase (%)"], rows,
                       title="Figure 10a: canonical program overhead vs MTTF"))
    # Overhead falls with MTTF and is below 10% beyond 20 hours.
    assert overheads[1.0] > overheads[20.0]
    assert overheads[20.0] < 0.10
    assert overheads[25.0] < 0.10
    benchmark.extra_info["overhead_pct"] = {str(k): v * 100 for k, v in overheads.items()}


def _fig10b():
    results = {}
    # "Current spot market": the calm EC2-like catalog.
    current = standard_provider(seed=55)
    # "High volatility": a GCE-like ~20h MTTF universe.
    volatile = uniform_mttf_provider(seed=55, mttf_hours=20.0, num_markets=4)
    for market_name, provider in (("current spot", current), ("volatile (GCE-like)", volatile)):
        for system, checkpointing in (("Flint", True), ("unmodified Spark", False)):
            config = CanonicalConfig(job_length=6 * HOUR, checkpointing=checkpointing)
            results[(market_name, system)] = _mean_overhead(
                provider, config, flint_batch_selector(), runs=50, spacing=13 * HOUR
            )
    return results


def test_fig10b_flint_vs_unmodified_spark(benchmark):
    results = benchmark.pedantic(_fig10b, rounds=1, iterations=1)
    rows = [
        [market, system, results[(market, system)] * 100]
        for (market, system) in results
    ]
    print(format_table(["market", "system", "runtime increase (%)"], rows,
                       title="Figure 10b: Flint vs unmodified Spark on spot"))
    # The gap matters most where it hurts: in the volatile market Flint's
    # checkpointing clearly beats pure recomputation (paper: <5% vs ~12%).
    assert results[("volatile (GCE-like)", "Flint")] < results[
        ("volatile (GCE-like)", "unmodified Spark")
    ]
    # Flint stays small everywhere; in the calm market both are small and
    # statistically close (paper: <1% vs >5% under its busier traces).
    assert results[("current spot", "Flint")] < 0.08
    assert results[("volatile (GCE-like)", "Flint")] < 0.10
    benchmark.extra_info["overhead_pct"] = {
        f"{m}/{s}": v * 100 for (m, s), v in results.items()
    }
