"""Figure 2: availability ECDFs and MTTFs of transient servers.

Paper: EC2 spot MTTFs at an on-demand bid span ~18.8h (sa-east-1a) to ~701h
(us-west-2c); GCE preemptible MTTFs cluster at ~20-23h with a hard 24h cap.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.simulation.clock import DAY, HOUR
from repro.simulation.rng import SeededRNG
from repro.traces.ec2 import EC2_CATALOG, build_market_traces
from repro.traces.gce import PreemptibleLifetimeModel
from repro.traces.stats import availability_ecdf, time_to_failure_samples

FIG2A_ZONES = {
    "us-west-2c": ("us-west-2c/r3.large", 701.14),
    "eu-west-1c": ("eu-west-1c/r3.large", 101.10),
    "sa-east-1a": ("sa-east-1a/r3.large", 18.77),
}

FIG2B_TYPES = {
    "f1-micro": 21.68,
    "n1-standard-1": 20.26,
    "n1-highmem-2": 22.92,
}


def _ec2_availability():
    rng = SeededRNG(42, "fig2a")
    specs = [s for s in EC2_CATALOG if s.market_id in {m for m, _ in FIG2A_ZONES.values()}]
    traces = build_market_traces(rng, specs, horizon=120 * DAY)
    rows = []
    measured = {}
    for zone, (market_id, paper_mttf) in FIG2A_ZONES.items():
        spec = next(s for s in specs if s.market_id == market_id)
        samples = time_to_failure_samples(
            traces[market_id], spec.instance_type.on_demand_price, sample_interval=2 * HOUR
        )
        x, y = availability_ecdf(samples)
        mttf_h = samples.mean() / HOUR
        measured[zone] = mttf_h
        median_h = float(np.interp(0.5, y, x)) / HOUR
        rows.append([zone, paper_mttf, mttf_h, median_h, len(samples)])
    return rows, measured


def test_fig2a_ec2_spot_availability(benchmark):
    rows, measured = benchmark.pedantic(_ec2_availability, rounds=1, iterations=1)
    print(
        format_table(
            ["zone", "paper MTTF(h)", "measured MTTF(h)", "median TTF(h)", "samples"],
            rows,
            title="Figure 2a: EC2 spot availability (bid = on-demand price)",
        )
    )
    # The paper's ordering across volatility regimes must hold.
    assert measured["us-west-2c"] > measured["eu-west-1c"] > measured["sa-east-1a"]
    # And each lands within a factor ~3 of the paper's MTTF.
    for zone, (_m, paper) in FIG2A_ZONES.items():
        assert paper / 3 < measured[zone] < paper * 3
    benchmark.extra_info["measured_mttf_hours"] = measured


def _gce_availability():
    rows = []
    measured = {}
    for itype, paper_mttf in FIG2B_TYPES.items():
        model = PreemptibleLifetimeModel(target_mttf=paper_mttf * HOUR)
        rng = SeededRNG(42, f"fig2b-{itype}")
        lifetimes = model.sample_lifetimes(rng, 2000)
        x, y = availability_ecdf(lifetimes)
        mttf_h = lifetimes.mean() / HOUR
        capped = float((lifetimes >= 24 * HOUR - 1).mean())
        measured[itype] = mttf_h
        rows.append([itype, paper_mttf, mttf_h, capped])
    return rows, measured


def test_fig2b_gce_preemptible_availability(benchmark):
    rows, measured = benchmark.pedantic(_gce_availability, rounds=1, iterations=1)
    print(
        format_table(
            ["instance type", "paper MTTF(h)", "measured MTTF(h)", "frac at 24h cap"],
            rows,
            title="Figure 2b: GCE preemptible availability",
        )
    )
    for itype, paper in FIG2B_TYPES.items():
        assert abs(measured[itype] - paper) < 2.0  # hours
        assert measured[itype] <= 24.0
    benchmark.extra_info["measured_mttf_hours"] = measured
