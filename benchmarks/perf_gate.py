"""Perf regression gate: fresh ``perf_smoke`` run vs the committed baseline.

Runs the engine perf smoke and compares it against the checked-in
``BENCH_engine.json``:

- **Wall-clock gate** — any workload more than ``--threshold`` (default
  30%) slower than the committed baseline fails the gate.  Workloads whose
  baseline wall time is under ``--min-wall`` seconds are reported but not
  gated (sub-second timings are noise-dominated on shared CI runners).
- **Determinism gate** — the *simulated* runtimes must match the baseline
  exactly: they are pure outputs of the discrete-event engine and may not
  drift with the host.  Any mismatch means an unintended behaviour change.

Usage:
    PYTHONPATH=src python benchmarks/perf_gate.py \
        [--baseline BENCH_engine.json] [--threshold 0.30] [--out path.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for path in (_ROOT, os.path.join(_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.perf_smoke import run_smoke  # noqa: E402

#: Relative tolerance for "exact" simulated-time comparison: simulated
#: runtimes are deterministic floats, but give repr/round-tripping through
#: JSON a hair of slack.
_SIM_RTOL = 1e-9


def _sim_runtimes(entry: dict) -> dict:
    out = {"fig7_baseline": entry["fig7"]["baseline_runtime"],
           "fig7_revoked": entry["fig7"]["revoked_runtime"]}
    for k, v in entry["fig8"]["simulated_runtime_seconds"].items():
        out[f"fig8_{k}"] = v
    return out


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _SIM_RTOL * max(abs(a), abs(b), 1.0)


def compare(baseline: dict, fresh: dict, threshold: float, min_wall: float):
    """Returns (failures, notes): gate violations and informational lines."""
    failures = []
    notes = []
    base_workloads = baseline.get("workloads", {})
    for name, fresh_entry in fresh["workloads"].items():
        base_entry = base_workloads.get(name)
        if base_entry is None:
            notes.append(f"{name}: no committed baseline entry; skipping")
            continue
        base_wall = base_entry["wall_seconds"]
        fresh_wall = fresh_entry["wall_seconds"]
        ratio = fresh_wall / base_wall if base_wall else float("inf")
        line = (
            f"{name}: wall {fresh_wall:.3f}s vs baseline {base_wall:.3f}s "
            f"({(ratio - 1.0) * 100.0:+.1f}%)"
        )
        if base_wall < min_wall:
            notes.append(line + f" [not gated: baseline < {min_wall}s]")
        elif ratio > 1.0 + threshold:
            failures.append(
                line + f" exceeds the {threshold * 100.0:.0f}% regression gate"
            )
        else:
            notes.append(line)
        base_sim = _sim_runtimes(base_entry)
        fresh_sim = _sim_runtimes(fresh_entry)
        for key in sorted(base_sim.keys() & fresh_sim.keys()):
            if not _close(base_sim[key], fresh_sim[key]):
                failures.append(
                    f"{name}: simulated runtime {key} changed "
                    f"{base_sim[key]!r} -> {fresh_sim[key]!r} "
                    "(the engine is no longer behaviour-identical)"
                )
    for name in base_workloads.keys() - fresh["workloads"].keys():
        failures.append(f"{name}: present in baseline but missing from fresh run")
    return failures, notes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default=os.path.join(_ROOT, "BENCH_engine.json")
    )
    parser.add_argument(
        "--out", default=os.path.join(_ROOT, "BENCH_engine.fresh.json"),
        help="where to write the fresh perf_smoke report",
    )
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="relative wall-clock regression allowed per workload")
    parser.add_argument("--min-wall", type=float, default=0.2,
                        help="baseline walls below this are reported, not gated")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    fresh = run_smoke(args.out, mode=baseline.get("scheduler_mode", "incremental"))
    failures, notes = compare(baseline, fresh, args.threshold, args.min_wall)
    for note in notes:
        print(f"ok: {note}")
    for failure in failures:
        print(f"FAIL: {failure}")
    total = fresh["totals"]["wall_seconds"]
    print(f"perf gate: {len(failures)} failure(s), fresh total wall {total}s")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
