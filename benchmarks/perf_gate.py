"""Perf regression gate: fresh ``perf_smoke`` run vs the committed baseline.

Runs the engine perf smoke and compares it against the checked-in
``BENCH_engine.json``:

- **Wall-clock gate** — any workload more than ``--threshold`` (default
  30%) slower than the committed baseline fails the gate.  Workloads whose
  baseline wall time is under ``--min-wall`` seconds are reported but not
  gated (sub-second timings are noise-dominated on shared CI runners).
- **Throughput gate** — the same threshold applied to ``tasks_per_second``
  (reciprocally: higher is better), with the same ``--min-wall`` noise
  exemption.  Catches data-plane slowdowns that wall time alone can hide
  behind a faster host.
- **Determinism gate** — the *simulated* runtimes must match the baseline
  exactly: they are pure outputs of the discrete-event engine and may not
  drift with the host.  Any mismatch means an unintended behaviour change.
- **Streaming gate** — the micro-batch plane's wall-based ingest
  ``records_per_second`` must stay above an absolute floor
  (``--min-stream-rps``) and within the regression threshold of the
  committed baseline; its simulated batch latencies and recovery metrics
  ride the determinism gate like every other simulated time.
- **Long-horizon gate** — the analytic market plane's
  ``simulated_seconds_per_wall_second`` (a 1000-node two-week portfolio
  sweep) must stay above an absolute floor (``--min-sims-per-wall``) and
  within the regression threshold of the baseline: the O(breakpoints)
  billing/market machinery is what keeps month-long 10k-node what-ifs
  interactive.
- **Columnar gate** — the data-plane microbench (row closures vs columnar
  batch kernels) must keep each workload's speedup above an absolute floor
  (``--min-columnar-speedup``) and its columnar tasks/second within the
  regression threshold of the baseline.  Gated counters missing from a
  stale baseline are failures with the re-baseline command in the message,
  never silent skips.

The fresh run replays the committed baseline's configuration — scheduler
mode, fusion, **and executor backend + worker count** — so the gate always
compares like-with-like: an inline baseline never gates a process-pool run
(whose wall profile legitimately differs) and vice versa.  The executor
plane is behaviour-invariant by contract, so the determinism gate holds
across backends regardless; only the wall/throughput gates need the pairing.

Usage:
    PYTHONPATH=src python benchmarks/perf_gate.py \
        [--baseline BENCH_engine.json] [--threshold 0.30] [--out path.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for path in (_ROOT, os.path.join(_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.perf_smoke import columnar_comparison, run_smoke  # noqa: E402

#: Relative tolerance for "exact" simulated-time comparison: simulated
#: runtimes are deterministic floats, but give repr/round-tripping through
#: JSON a hair of slack.
_SIM_RTOL = 1e-9


#: The command that rebuilds the committed baseline from scratch.
_REBASELINE = (
    "PYTHONPATH=src python benchmarks/perf_smoke.py --out BENCH_engine.json "
    "--compare-columnar --compare-executors"
)


def _sim_runtimes(entry: dict) -> dict:
    """Every deterministic simulated-seconds metric an entry carries.

    Tolerant of schema drift: a metric absent from one side is simply not
    emitted here — ``compare`` reports the asymmetry instead of crashing.
    """
    out = {}
    fig7 = entry.get("fig7", {})
    if "baseline_runtime" in fig7:
        out["fig7_baseline"] = fig7["baseline_runtime"]
    if "revoked_runtime" in fig7:
        out["fig7_revoked"] = fig7["revoked_runtime"]
    for k, v in entry.get("fig8", {}).get("simulated_runtime_seconds", {}).items():
        out[f"fig8_{k}"] = v
    for k, v in entry.get("multitenant", {}).get("simulated_seconds", {}).items():
        out[f"multitenant_{k}"] = v
    for k, v in entry.get("streaming", {}).get("simulated_seconds", {}).items():
        out[f"streaming_{k}"] = v
    for k, v in entry.get("saturation", {}).get("simulated_seconds", {}).items():
        out[f"saturation_{k}"] = v
    for k, v in entry.get("longhorizon", {}).get("simulated_seconds", {}).items():
        out[f"longhorizon_{k}"] = v
    return out


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _SIM_RTOL * max(abs(a), abs(b), 1.0)


def compare(baseline: dict, fresh: dict, threshold: float, min_wall: float,
            min_stream_rps: float = 0.0, min_sims_per_wall: float = 0.0):
    """Returns (failures, notes): gate violations and informational lines."""
    failures = []
    notes = []
    base_workloads = baseline.get("workloads", {})
    for name, fresh_entry in fresh["workloads"].items():
        base_entry = base_workloads.get(name)
        if base_entry is None:
            notes.append(
                f"{name}: no committed baseline entry; not gated "
                f"(re-baseline with: {_REBASELINE})"
            )
            continue
        base_wall = base_entry.get("wall_seconds")
        fresh_wall = fresh_entry["wall_seconds"]
        if base_wall is None:
            failures.append(
                f"{name}: baseline entry has no wall_seconds — the committed "
                f"BENCH_engine.json is stale; re-baseline with: {_REBASELINE}"
            )
            continue
        ratio = fresh_wall / base_wall if base_wall else float("inf")
        line = (
            f"{name}: wall {fresh_wall:.3f}s vs baseline {base_wall:.3f}s "
            f"({(ratio - 1.0) * 100.0:+.1f}%)"
        )
        if base_wall < min_wall:
            notes.append(line + f" [not gated: baseline < {min_wall}s]")
        elif ratio > 1.0 + threshold:
            failures.append(
                line + f" exceeds the {threshold * 100.0:.0f}% regression gate"
            )
        else:
            notes.append(line)
        # Throughput gate: tasks/second may not fall more than the same
        # threshold below the committed baseline (higher is better, so the
        # gate is the wall gate's reciprocal).  Sub-min-wall workloads are
        # exempt for the same noise reason.
        base_tps = base_entry.get("tasks_per_second")
        fresh_tps = fresh_entry.get("tasks_per_second")
        if base_tps is None:
            # A gated counter missing from the committed baseline is a
            # failure, not a shrug: silently skipping it would let a
            # regression in that counter ride in on the stale file.
            failures.append(
                f"{name}: gated counter tasks_per_second is missing from the "
                f"committed baseline (observed fresh value: {fresh_tps}) — "
                f"the baseline predates this gate; re-baseline with: "
                f"{_REBASELINE}"
            )
        elif fresh_tps:
            tps_ratio = fresh_tps / base_tps
            line = (
                f"{name}: throughput {fresh_tps}/s vs baseline {base_tps}/s "
                f"({(tps_ratio - 1.0) * 100.0:+.1f}%)"
            )
            if base_wall < min_wall:
                notes.append(line + f" [not gated: baseline < {min_wall}s]")
            elif tps_ratio < 1.0 / (1.0 + threshold):
                failures.append(
                    line
                    + f" falls below the {threshold * 100.0:.0f}% throughput "
                    f"gate (if intentional, re-baseline with: {_REBASELINE})"
                )
            else:
                notes.append(line)
        # Streaming floor: wall-based ingest records/second may neither fall
        # below the absolute floor nor regress more than the threshold
        # against the committed baseline.
        fresh_rps = fresh_entry.get("records_per_second")
        if fresh_rps is not None:
            base_rps = base_entry.get("records_per_second")
            if base_rps is None:
                failures.append(
                    f"{name}: gated counter records_per_second is missing "
                    f"from the committed baseline (observed fresh value: "
                    f"{fresh_rps}) — the baseline predates the streaming "
                    f"gate; re-baseline with: {_REBASELINE}"
                )
            else:
                rps_ratio = fresh_rps / base_rps
                line = (
                    f"{name}: streaming ingest {fresh_rps} records/s vs "
                    f"baseline {base_rps} records/s "
                    f"({(rps_ratio - 1.0) * 100.0:+.1f}%, "
                    f"floor {min_stream_rps})"
                )
                if fresh_rps < min_stream_rps:
                    failures.append(
                        line + " falls below the streaming records/s floor "
                        f"(if intentional, re-baseline with: {_REBASELINE})"
                    )
                elif rps_ratio < 1.0 / (1.0 + threshold):
                    failures.append(
                        line + f" falls below the {threshold * 100.0:.0f}% "
                        f"throughput gate (if intentional, re-baseline "
                        f"with: {_REBASELINE})"
                    )
                else:
                    notes.append(line)
        # Long-horizon floor: the analytic market plane must keep a wall
        # second worth at least ``min_sims_per_wall`` simulated seconds, and
        # may not regress more than the threshold against the baseline —
        # this is the "10k-node month at interactive speed" guarantee.
        fresh_spw = fresh_entry.get("simulated_seconds_per_wall_second")
        if fresh_spw is not None:
            base_spw = base_entry.get("simulated_seconds_per_wall_second")
            if base_spw is None:
                failures.append(
                    f"{name}: gated counter simulated_seconds_per_wall_second "
                    f"is missing from the committed baseline (observed fresh "
                    f"value: {fresh_spw}) — the baseline predates the "
                    f"long-horizon gate; re-baseline with: {_REBASELINE}"
                )
            else:
                spw_ratio = fresh_spw / base_spw
                line = (
                    f"{name}: long-horizon throughput {fresh_spw:.3g} "
                    f"simulated s per wall s vs baseline {base_spw:.3g} "
                    f"({(spw_ratio - 1.0) * 100.0:+.1f}%, "
                    f"floor {min_sims_per_wall:.3g})"
                )
                if fresh_spw < min_sims_per_wall:
                    failures.append(
                        line + " falls below the simulated-seconds-per-wall-"
                        f"second floor (if intentional, re-baseline with: "
                        f"{_REBASELINE})"
                    )
                elif spw_ratio < 1.0 / (1.0 + threshold):
                    failures.append(
                        line + f" falls below the {threshold * 100.0:.0f}% "
                        f"throughput gate (if intentional, re-baseline "
                        f"with: {_REBASELINE})"
                    )
                else:
                    notes.append(line)
        base_sim = _sim_runtimes(base_entry)
        fresh_sim = _sim_runtimes(fresh_entry)
        for key in sorted(base_sim.keys() & fresh_sim.keys()):
            if not _close(base_sim[key], fresh_sim[key]):
                failures.append(
                    f"{name}: simulated runtime {key} changed "
                    f"{base_sim[key]!r} -> {fresh_sim[key]!r} "
                    "(the engine is no longer behaviour-identical)"
                )
        for key in sorted(base_sim.keys() - fresh_sim.keys()):
            failures.append(
                f"{name}: baseline metric {key} is no longer reported by "
                f"perf_smoke — intentional schema changes need a fresh "
                f"baseline ({_REBASELINE})"
            )
    for name in base_workloads.keys() - fresh["workloads"].keys():
        failures.append(
            f"{name}: present in baseline but missing from fresh run — if the "
            f"workload was removed on purpose, re-baseline with: {_REBASELINE}"
        )
    return failures, notes


def compare_columnar(baseline: dict, fresh: dict, threshold: float,
                     min_speedup: float):
    """Gate the columnar data-plane microbench (``--compare-columnar``).

    Two checks per workload: the columnar-vs-row speedup may not fall below
    the absolute ``min_speedup`` floor, and columnar tasks/second may not
    regress more than ``threshold`` below the committed baseline.  A
    baseline without the ``columnar_comparison`` section fails — it
    predates this gate and must be regenerated.
    """
    failures = []
    notes = []
    base_cmp = baseline.get("columnar_comparison")
    fresh_cmp = fresh.get("columnar_comparison", {})
    if base_cmp is None:
        observed = {
            name: entry.get("speedup") for name, entry in fresh_cmp.items()
        }
        failures.append(
            "columnar_comparison: gated section is missing from the "
            f"committed baseline (observed fresh speedups: {observed}) — "
            f"the baseline predates the columnar gate; re-baseline with: "
            f"{_REBASELINE}"
        )
        return failures, notes
    for name, base_entry in base_cmp.items():
        fresh_entry = fresh_cmp.get(name)
        if fresh_entry is None:
            failures.append(
                f"columnar {name}: present in baseline but missing from the "
                f"fresh run — if the microbench workload was removed on "
                f"purpose, re-baseline with: {_REBASELINE}"
            )
            continue
        speedup = fresh_entry.get("speedup")
        base_speedup = base_entry.get("speedup")
        line = (
            f"columnar {name}: speedup {speedup}x vs baseline "
            f"{base_speedup}x (floor {min_speedup}x)"
        )
        if speedup is None or speedup < min_speedup:
            failures.append(
                line + " — the columnar plane no longer pays for itself on "
                "this workload"
            )
        else:
            notes.append(line)
        base_tps = base_entry.get("columnar_tasks_per_second")
        fresh_tps = fresh_entry.get("columnar_tasks_per_second")
        if base_tps is None:
            failures.append(
                f"columnar {name}: gated counter columnar_tasks_per_second "
                f"is missing from the committed baseline (observed fresh "
                f"value: {fresh_tps}) — re-baseline with: {_REBASELINE}"
            )
        elif fresh_tps:
            tps_ratio = fresh_tps / base_tps
            line = (
                f"columnar {name}: throughput {fresh_tps}/s vs baseline "
                f"{base_tps}/s ({(tps_ratio - 1.0) * 100.0:+.1f}%)"
            )
            if tps_ratio < 1.0 / (1.0 + threshold):
                failures.append(
                    line + f" falls below the {threshold * 100.0:.0f}% "
                    f"throughput gate (if intentional, re-baseline with: "
                    f"{_REBASELINE})"
                )
            else:
                notes.append(line)
    return failures, notes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default=os.path.join(_ROOT, "BENCH_engine.json")
    )
    parser.add_argument(
        "--out", default=os.path.join(_ROOT, "BENCH_engine.fresh.json"),
        help="where to write the fresh perf_smoke report",
    )
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="relative wall-clock regression allowed per workload")
    parser.add_argument("--min-wall", type=float, default=0.2,
                        help="baseline walls below this are reported, not gated")
    parser.add_argument(
        "--min-stream-rps", type=float, default=50_000.0,
        help="absolute floor for streaming ingest records/second (the "
        "committed baseline sits far above it; the floor catches gross "
        "micro-batch-plane regressions even on slow shared runners)",
    )
    parser.add_argument(
        "--min-sims-per-wall", type=float, default=1_000_000.0,
        help="absolute floor for the long-horizon sweep's simulated seconds "
        "per wall second (the committed baseline sits in the tens of "
        "millions; the floor catches an accidental return to per-event "
        "billing even on slow shared runners)",
    )
    parser.add_argument(
        "--min-columnar-speedup", type=float, default=2.5,
        help="absolute floor for the columnar microbench speedup per "
        "workload (the committed baseline sits above 3x; the floor leaves "
        "slack for noisy shared runners)",
    )
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(f"perf gate: no baseline at {args.baseline}")
        print("Nothing to gate against. Generate and commit one with:")
        print(f"    {_REBASELINE}")
        return 2
    try:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except json.JSONDecodeError as exc:
        print(f"perf gate: baseline {args.baseline} is not valid JSON ({exc})")
        print(f"Regenerate it with:\n    {_REBASELINE}")
        return 2
    executor = baseline.get("executor", "inline")
    workers = baseline.get("worker_count")
    columnar = baseline.get("columnar", "on")
    print(
        f"perf gate: baseline config scheduler={baseline.get('scheduler_mode', 'incremental')} "
        f"fusion={baseline.get('fusion', 'on')} columnar={columnar} "
        f"executor={executor}"
        + (f" workers={workers}" if workers else "")
    )
    fresh = run_smoke(
        args.out,
        mode=baseline.get("scheduler_mode", "incremental"),
        fusion=baseline.get("fusion", "on"),
        executor=executor,
        workers=workers,
        columnar=columnar,
    )
    # The columnar microbench rides along on every gate run: it is cheap
    # (a few seconds) and it is the only evidence that the batch kernels
    # still pay for themselves.
    fresh["columnar_comparison"] = columnar_comparison()
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(fresh, fh, indent=2)
        fh.write("\n")
    failures, notes = compare(
        baseline, fresh, args.threshold, args.min_wall,
        min_stream_rps=args.min_stream_rps,
        min_sims_per_wall=args.min_sims_per_wall,
    )
    col_failures, col_notes = compare_columnar(
        baseline, fresh, args.threshold, args.min_columnar_speedup
    )
    failures.extend(col_failures)
    notes.extend(col_notes)
    for note in notes:
        print(f"ok: {note}")
    for failure in failures:
        print(f"FAIL: {failure}")
    total = fresh["totals"]["wall_seconds"]
    print(f"perf gate: {len(failures)} failure(s), fresh total wall {total}s")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
