"""Figure 8: running time vs number of concurrent revocations.

Paper: for each workload, runtimes under {0, 1, 5, 10} simultaneous
revocations with and without Flint's checkpointing.  Checkpointing bounds
the degradation (15-100% improvement); the impact of additional concurrent
revocations is sublinear, supporting the batch policy's single-market
choice.
"""

from benchmarks.conftest import BATCH_WORKLOADS
from repro.analysis.experiments import run_batch_workload
from repro.analysis.tables import format_table
from repro.simulation.clock import HOUR

FAILURES = [0, 1, 5, 10]
#: Low cluster MTTF pins a short τ so checkpoints actually occur within the
#: measured runs (the paper's failure-injection experiments behave the same).
CLUSTER_MTTF = 1 * HOUR


def _sweep(factory):
    results = {}
    for mode in ("none", "flint"):
        base = run_batch_workload(
            factory, checkpointing=mode, cluster_mttf=CLUSTER_MTTF
        )
        results[(mode, 0)] = base.runtime
        for k in FAILURES[1:]:
            failed = run_batch_workload(
                factory, checkpointing=mode, cluster_mttf=CLUSTER_MTTF,
                concurrent_failures=k, failure_at=base.runtime * 0.5,
            )
            results[(mode, k)] = failed.runtime
    return results


def _run_all():
    return {name: _sweep(factory) for name, factory in BATCH_WORKLOADS.items()}


def test_fig8_concurrent_failures(benchmark):
    all_results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for name, results in all_results.items():
        rows = [
            [k, results[("none", k)], results[("flint", k)]] for k in FAILURES
        ]
        print(
            format_table(
                ["# failures", "recomputation (s)", "checkpointing (s)"],
                rows,
                title=f"Figure 8: {name} runtime vs concurrent revocations",
            )
        )
        recompute = [results[("none", k)] for k in FAILURES]
        checkpoint = [results[("flint", k)] for k in FAILURES]
        # Runtime grows with the size of the revocation event.
        assert recompute[-1] > recompute[0]
        # Checkpointing bounds the damage at the larger revocation events.
        assert checkpoint[-1] < recompute[-1]
        # Sublinear growth: 10 failures cost less than 10x one failure's toll.
        toll_1 = recompute[1] - recompute[0]
        toll_10 = recompute[3] - recompute[0]
        if toll_1 > 1.0:
            assert toll_10 < 10 * toll_1
    benchmark.extra_info["runtimes"] = {
        name: {f"{mode}/{k}": results[(mode, k)] for mode, k in results}
        for name, results in all_results.items()
    }
