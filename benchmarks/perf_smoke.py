"""Engine performance smoke: wall-clock timings + scheduler counters.

Times lightweight versions of the Figure 7 (single revocation, no
checkpointing) and Figure 8 (checkpointed failure sweep) engine runs for
each batch workload under the incremental scheduler, plus a scaled-down
multi-tenant serving scenario (job server, fifo vs fair), and emits
``BENCH_engine.json`` with wall-clock per workload, task throughput, and
the ``SchedulerStats`` counters that evidence the O(1)/O(Δ) readiness
machinery (resolve-cache hit rate, rebuild fraction, invalidation counts).

The report records which executor plane produced the numbers (``executor``,
``worker_count``, ``host_cpus``) so the perf gate always compares
like-with-like; ``--compare-executors`` additionally re-runs the smoke under
every other ``FLINT_EXECUTOR`` backend and embeds per-backend wall seconds.

Usage:
    PYTHONPATH=src python benchmarks/perf_smoke.py [--out BENCH_engine.json]
        [--executor inline|process|async] [--executor-workers N]
        [--compare-fusion] [--compare-executors]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for path in (_ROOT, os.path.join(_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.conftest import BATCH_WORKLOADS, CLUSTER_SIZE  # noqa: E402
from repro.analysis.experiments import build_engine_context  # noqa: E402
from repro.core.ftmanager import FaultToleranceManager  # noqa: E402
from repro.engine.executor import EXECUTOR_BACKENDS, resolve_backend  # noqa: E402
from repro.simulation.clock import HOUR  # noqa: E402

MARKET = "od/r3.large"
FIG8_FAILURES = [0, 1, 5]
CLUSTER_MTTF = 1 * HOUR

_COUNTER_FIELDS = (
    "scheduling_rounds",
    "resolve_cache_hits",
    "resolve_cache_misses",
    "readiness_invalidations",
    "readiness_rebuilds",
    "fused_chains",
    "fused_stages",
    "kernels_offloaded",
    "kernels_consumed",
    "kernels_fallback",
)


def _run_scenario(factory, checkpointing, failures, failure_at):
    """One measured run; returns (simulated_runtime, FlintContext)."""
    ctx = build_engine_context(num_workers=CLUSTER_SIZE)
    manager = None
    if checkpointing:
        manager = FaultToleranceManager(ctx, lambda: CLUSTER_MTTF, min_tau=30.0)
        manager.start()
    workload = factory(ctx)
    workload.load()
    if failures:

        def inject(event):
            victims = ctx.cluster.live_workers()[:failures]
            ctx.cluster.force_revoke(victims)
            ctx.cluster.launch(MARKET, 0.175, count=len(victims), delay=120.0)

        ctx.env.schedule_in(failure_at, "inject-failures", callback=inject)
    t0 = ctx.now
    workload.run()
    runtime = ctx.now - t0
    if manager is not None:
        manager.stop()
    return runtime, ctx


def _accumulate(agg, ctx):
    stats = ctx.scheduler.stats
    for field in _COUNTER_FIELDS:
        agg[field] = agg.get(field, 0) + getattr(stats, field)
    agg["tasks_completed"] = agg.get("tasks_completed", 0) + stats.tasks_completed
    agg["ready_queue_peak"] = max(agg.get("ready_queue_peak", 0), stats.ready_queue_peak)
    # Sizing-memo counters live on the context, not SchedulerStats.
    agg["record_size_memo_hits"] = (
        agg.get("record_size_memo_hits", 0) + ctx.record_size_memo_hits
    )
    agg["record_size_memo_misses"] = (
        agg.get("record_size_memo_misses", 0) + ctx.record_size_memo_misses
    )


def _counters_payload(agg):
    resolves = agg["resolve_cache_hits"] + agg["resolve_cache_misses"]
    rounds = agg["scheduling_rounds"]
    memo_hits = agg.get("record_size_memo_hits", 0)
    memo_misses = agg.get("record_size_memo_misses", 0)
    memo_total = memo_hits + memo_misses
    return {
        "scheduling_rounds": rounds,
        "resolve_cache_hits": agg["resolve_cache_hits"],
        "resolve_cache_misses": agg["resolve_cache_misses"],
        # O(1) evidence: nearly every readiness consult is served from the
        # cache instead of a fresh lineage walk + worker probes.
        "resolve_cache_hit_rate": (
            round(agg["resolve_cache_hits"] / resolves, 4) if resolves else None
        ),
        "readiness_invalidations": agg["readiness_invalidations"],
        "readiness_rebuilds": agg["readiness_rebuilds"],
        # O(Δ) evidence: the ready list is rebuilt on a small fraction of
        # rounds; the legacy scheduler rebuilt it on every round.
        "rebuild_fraction": (
            round(agg["readiness_rebuilds"] / rounds, 4) if rounds else None
        ),
        "ready_queue_peak": agg["ready_queue_peak"],
        # Fused data plane: narrow chains collapsed into single streamed
        # passes (both zero under FLINT_FUSION=off, and for workloads whose
        # narrow stages are all single-operator).
        "fused_chains": agg.get("fused_chains", 0),
        "fused_stages": agg.get("fused_stages", 0),
        # Executor plane: kernels staged on the backend pool vs actually
        # consumed by dispatched tasks (all zero under the inline plane;
        # fallbacks mean the chain shape drifted between staging and
        # dispatch, and the task recomputed inline).
        "kernels_offloaded": agg.get("kernels_offloaded", 0),
        "kernels_consumed": agg.get("kernels_consumed", 0),
        "kernels_fallback": agg.get("kernels_fallback", 0),
        "record_size_memo_hits": memo_hits,
        "record_size_memo_misses": memo_misses,
        # Memoised per-RDD sizing: repeat record-size consults are dict
        # reads, not lineage walks.
        "record_size_memo_hit_rate": (
            round(memo_hits / memo_total, 4) if memo_total else None
        ),
    }


def _smoke_one_workload(factory):
    entry = {}
    agg: dict = {}

    # Figure 7 shape: baseline and one revocation, no checkpointing.
    wall_start = time.perf_counter()
    baseline, ctx = _run_scenario(factory, False, 0, None)
    _accumulate(agg, ctx)
    revoked, ctx = _run_scenario(factory, False, 1, baseline * 0.5)
    _accumulate(agg, ctx)
    entry["fig7"] = {
        "wall_seconds": round(time.perf_counter() - wall_start, 3),
        "baseline_runtime": baseline,
        "revoked_runtime": revoked,
        "increase": round(revoked / baseline - 1.0, 4),
    }

    # Figure 8 shape: checkpointed sweep over concurrent revocation counts.
    wall_start = time.perf_counter()
    runtimes = {}
    base_runtime, ctx = _run_scenario(factory, True, 0, None)
    runtimes["0"] = base_runtime
    _accumulate(agg, ctx)
    for k in FIG8_FAILURES[1:]:
        runtime, ctx = _run_scenario(factory, True, k, base_runtime * 0.5)
        runtimes[str(k)] = runtime
        _accumulate(agg, ctx)
    entry["fig8"] = {
        "wall_seconds": round(time.perf_counter() - wall_start, 3),
        "simulated_runtime_seconds": runtimes,
    }

    wall = entry["fig7"]["wall_seconds"] + entry["fig8"]["wall_seconds"]
    entry["wall_seconds"] = round(wall, 3)
    entry["tasks_completed"] = agg["tasks_completed"]
    entry["tasks_per_second"] = round(agg["tasks_completed"] / wall, 1) if wall else None
    entry["scheduler_counters"] = _counters_payload(agg)
    return entry, agg


def _smoke_multitenant():
    """Scaled-down multi-tenant serving scenario under both policies.

    Wall time and simulated interactive/batch latencies go through the same
    gates as the batch workloads, so server-layer regressions (or behaviour
    drift in the multiplexing scheduler) fail CI like engine ones do.
    """
    from repro.server.scenario import run_multitenant

    entry = {}
    agg: dict = {}
    sims = {}
    wall_start = time.perf_counter()
    for policy in ("fifo", "fair"):
        report = run_multitenant(
            policy=policy, num_workers=4, seed=1234, queries=4,
        )
        pool = report["pools"]["interactive"]
        sims[f"{policy}_interactive_p50"] = pool["p50_response"]
        sims[f"{policy}_interactive_p95"] = pool["p95_response"]
        sims[f"{policy}_batch_response"] = report["pools"]["batch"]["p50_response"]
        stats = report["scheduler_stats"]
        for field in _COUNTER_FIELDS:
            agg[field] = agg.get(field, 0) + stats[field]
        agg["tasks_completed"] = (
            agg.get("tasks_completed", 0) + stats["tasks_completed"]
        )
        agg["ready_queue_peak"] = max(
            agg.get("ready_queue_peak", 0), stats["ready_queue_peak"]
        )
        for field, value in report["sizing"].items():
            agg[field] = agg.get(field, 0) + value
    wall = round(time.perf_counter() - wall_start, 3)
    entry["wall_seconds"] = wall
    entry["multitenant"] = {"simulated_seconds": sims}
    entry["tasks_completed"] = agg["tasks_completed"]
    entry["tasks_per_second"] = round(agg["tasks_completed"] / wall, 1) if wall else None
    entry["scheduler_counters"] = _counters_payload(agg)
    return entry, agg


def run_smoke(
    out_path: str,
    mode: str = "incremental",
    fusion: str = "on",
    executor: str = "inline",
    workers: "int | None" = None,
) -> dict:
    os.environ["FLINT_SCHEDULER"] = mode
    os.environ["FLINT_FUSION"] = fusion
    # Executor plane under test.  The env var is the channel that reaches
    # every context the scenarios build; resolving here also validates the
    # name and pins the effective pool size into the report, so the gate can
    # compare like-with-like (inline baselines never gate a process run).
    os.environ["FLINT_EXECUTOR"] = executor
    if workers is not None:
        os.environ["FLINT_WORKERS"] = str(workers)
    else:
        os.environ.pop("FLINT_WORKERS", None)
    backend = resolve_backend(executor, workers)
    # Measured runs must never pay (or hide behind) tracing overhead: pin the
    # observability layer off and fail loudly if the env says otherwise, so
    # the committed gate always compares untraced engines.
    os.environ["FLINT_TRACE"] = "0"
    from repro.obs import tracing_enabled_by_env

    assert not tracing_enabled_by_env(), "perf smoke must run with tracing disabled"
    report = {
        "benchmark": "engine_perf_smoke",
        "scheduler_mode": mode,
        "fusion": fusion,
        "executor": backend.name,
        "worker_count": backend.worker_count,
        # Wall timings only mean anything relative to the host's core count:
        # on a single-core machine the parallel backends pay serialisation
        # and pool overhead with no concurrent compute to win back.
        "host_cpus": os.cpu_count(),
        "tracing": "disabled",
        "cluster_size": CLUSTER_SIZE,
        "cluster_mttf_seconds": CLUSTER_MTTF,
        "fig8_failure_counts": FIG8_FAILURES,
        "workloads": {},
    }
    total_wall = 0.0
    total_tasks = 0
    totals: dict = {}
    smokes = [(name, lambda f=factory: _smoke_one_workload(f))
              for name, factory in BATCH_WORKLOADS.items()]
    smokes.append(("MultiTenant", _smoke_multitenant))
    for name, smoke in smokes:
        entry, agg = smoke()
        report["workloads"][name] = entry
        total_wall += entry["wall_seconds"]
        total_tasks += entry["tasks_completed"]
        for field in _COUNTER_FIELDS:
            totals[field] = totals.get(field, 0) + agg[field]
        totals["tasks_completed"] = total_tasks
        totals["ready_queue_peak"] = max(
            totals.get("ready_queue_peak", 0), agg["ready_queue_peak"]
        )
    report["totals"] = {
        "wall_seconds": round(total_wall, 3),
        "tasks_completed": total_tasks,
        "tasks_per_second": round(total_tasks / total_wall, 1) if total_wall else None,
        "scheduler_counters": _counters_payload(totals),
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


def fusion_comparison(report: dict, unfused_out: str) -> dict:
    """Re-run the smoke with ``FLINT_FUSION=off`` and compare wall/throughput.

    The fused report must already exist; the unfused run lands beside it.
    Simulated runtimes are identical by construction (fusion only changes
    how narrow chains are executed, never what they compute or charge), so
    the interesting deltas are wall seconds and tasks/second.
    """
    unfused = run_smoke(
        unfused_out,
        mode=report["scheduler_mode"],
        fusion="off",
        executor=report.get("executor", "inline"),
        workers=report.get("worker_count"),
    )
    comparison = {}
    pairs = list(report["workloads"].items()) + [("totals", report["totals"])]
    for name, fused_entry in pairs:
        unfused_entry = (
            unfused["totals"] if name == "totals" else unfused["workloads"][name]
        )
        fused_wall = fused_entry["wall_seconds"]
        comparison[name] = {
            "fused_wall_seconds": fused_wall,
            "unfused_wall_seconds": unfused_entry["wall_seconds"],
            "fused_tasks_per_second": fused_entry["tasks_per_second"],
            "unfused_tasks_per_second": unfused_entry["tasks_per_second"],
            "wall_speedup": (
                round(unfused_entry["wall_seconds"] / fused_wall, 3)
                if fused_wall else None
            ),
        }
    return comparison


def executor_comparison(report: dict, out_for, workers: "int | None" = None) -> dict:
    """Re-run the smoke under every other executor backend.

    Simulated runtimes are backend-invariant by contract (the golden
    equivalence suite pins them bit-for-bit), so the deltas that matter are
    wall seconds and task throughput per backend.  Interpret them against
    ``host_cpus``: with a single core the process/async planes pay pickling
    and pool overhead with no parallel compute to win back; the Figure 8
    speedups need a multi-core host.  ``out_for(name)`` maps a backend name
    to the path its full report is written to.
    """
    comparison = {}
    for name in EXECUTOR_BACKENDS:
        if name == report.get("executor", "inline"):
            entry = report
        else:
            entry = run_smoke(
                out_for(name),
                mode=report["scheduler_mode"],
                fusion=report["fusion"],
                executor=name,
                workers=workers,
            )
        comparison[name] = {
            "worker_count": entry["worker_count"],
            "wall_seconds": entry["totals"]["wall_seconds"],
            "tasks_per_second": entry["totals"]["tasks_per_second"],
            "workload_wall_seconds": {
                wname: wentry["wall_seconds"]
                for wname, wentry in entry["workloads"].items()
            },
        }
    return comparison


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=os.path.join(_ROOT, "BENCH_engine.json"))
    parser.add_argument(
        "--mode", default="incremental", choices=["incremental", "legacy"]
    )
    parser.add_argument("--fusion", default="on", choices=["on", "off"])
    parser.add_argument(
        "--executor", default="inline", choices=list(EXECUTOR_BACKENDS),
        help="executor backend the measured runs use (FLINT_EXECUTOR)",
    )
    parser.add_argument(
        "--executor-workers", type=int, default=None,
        help="backend pool size (FLINT_WORKERS); default: host cores capped at 4",
    )
    parser.add_argument(
        "--compare-fusion", action="store_true",
        help="also run with FLINT_FUSION=off and report wall/throughput deltas",
    )
    parser.add_argument(
        "--compare-executors", action="store_true",
        help="also run under every other executor backend and record "
        "per-backend wall seconds in the report",
    )
    args = parser.parse_args()
    if args.compare_fusion and args.fusion != "on":
        parser.error("--compare-fusion requires --fusion on (the fused side)")
    report = run_smoke(
        args.out, args.mode, fusion=args.fusion,
        executor=args.executor, workers=args.executor_workers,
    )
    stem, ext = os.path.splitext(args.out)
    if args.compare_fusion:
        comparison = fusion_comparison(report, stem + ".unfused" + ext)
        report["fusion_comparison"] = comparison
    if args.compare_executors:
        report["executor_comparison"] = executor_comparison(
            report, lambda name: f"{stem}.{name}{ext}",
            workers=args.executor_workers,
        )
    if args.compare_fusion or args.compare_executors:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    for name, entry in report["workloads"].items():
        counters = entry["scheduler_counters"]
        if "fig7" in entry:
            breakdown = (
                f"(fig7 {entry['fig7']['wall_seconds']}s, "
                f"fig8 {entry['fig8']['wall_seconds']}s), "
            )
        else:
            sims = entry["multitenant"]["simulated_seconds"]
            breakdown = (
                f"(interactive p95 fifo {sims['fifo_interactive_p95']:.2f}s "
                f"vs fair {sims['fair_interactive_p95']:.2f}s), "
            )
        print(
            f"{name}: {entry['wall_seconds']}s wall "
            + breakdown
            + f"{entry['tasks_completed']} tasks ({entry['tasks_per_second']}/s), "
            f"resolve hit rate {counters['resolve_cache_hit_rate']}, "
            f"rebuild fraction {counters['rebuild_fraction']}, "
            f"fused chains {counters['fused_chains']}, "
            f"sizing memo hit rate {counters['record_size_memo_hit_rate']}"
        )
    totals = report["totals"]
    print(
        f"total: {totals['wall_seconds']}s wall, "
        f"{totals['tasks_completed']} tasks ({totals['tasks_per_second']}/s)"
    )
    for name, cmp in report.get("fusion_comparison", {}).items():
        print(
            f"fusion {name}: wall {cmp['fused_wall_seconds']}s fused vs "
            f"{cmp['unfused_wall_seconds']}s unfused "
            f"({cmp['wall_speedup']}x), throughput "
            f"{cmp['fused_tasks_per_second']}/s vs "
            f"{cmp['unfused_tasks_per_second']}/s"
        )
    for name, cmp in report.get("executor_comparison", {}).items():
        print(
            f"executor {name} (workers={cmp['worker_count']}, "
            f"host_cpus={report['host_cpus']}): "
            f"{cmp['wall_seconds']}s wall, {cmp['tasks_per_second']} tasks/s"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
