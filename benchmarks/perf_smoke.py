"""Engine performance smoke: wall-clock timings + scheduler counters.

Times lightweight versions of the Figure 7 (single revocation, no
checkpointing) and Figure 8 (checkpointed failure sweep) engine runs for
each batch workload under the incremental scheduler, plus a scaled-down
multi-tenant serving scenario (job server, fifo vs fair), and emits
``BENCH_engine.json`` with wall-clock per workload, task throughput, and
the ``SchedulerStats`` counters that evidence the O(1)/O(Δ) readiness
machinery (resolve-cache hit rate, rebuild fraction, invalidation counts).

The report records which executor plane produced the numbers (``executor``,
``worker_count``, ``host_cpus``) so the perf gate always compares
like-with-like; ``--compare-executors`` additionally re-runs the smoke under
every other ``FLINT_EXECUTOR`` backend and embeds per-backend wall seconds.

Usage:
    PYTHONPATH=src python benchmarks/perf_smoke.py [--out BENCH_engine.json]
        [--executor inline|process|async] [--executor-workers N]
        [--columnar on|off] [--compare-fusion] [--compare-executors]
        [--compare-columnar]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for path in (_ROOT, os.path.join(_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.conftest import BATCH_WORKLOADS, CLUSTER_SIZE  # noqa: E402
from repro.analysis.experiments import build_engine_context  # noqa: E402
from repro.core.ftmanager import FaultToleranceManager  # noqa: E402
from repro.engine.executor import EXECUTOR_BACKENDS, resolve_backend  # noqa: E402
from repro.simulation.clock import HOUR  # noqa: E402

MARKET = "od/r3.large"
FIG8_FAILURES = [0, 1, 5]
CLUSTER_MTTF = 1 * HOUR

_COUNTER_FIELDS = (
    "scheduling_rounds",
    "resolve_cache_hits",
    "resolve_cache_misses",
    "readiness_invalidations",
    "readiness_rebuilds",
    "fused_chains",
    "fused_stages",
    "kernels_offloaded",
    "kernels_consumed",
    "kernels_fallback",
    "columnar_chains",
    "columnar_stages",
    "columnar_fallbacks",
)


def _run_scenario(factory, checkpointing, failures, failure_at):
    """One measured run; returns (simulated_runtime, FlintContext)."""
    ctx = build_engine_context(num_workers=CLUSTER_SIZE)
    manager = None
    if checkpointing:
        manager = FaultToleranceManager(ctx, lambda: CLUSTER_MTTF, min_tau=30.0)
        manager.start()
    workload = factory(ctx)
    workload.load()
    if failures:

        def inject(event):
            victims = ctx.cluster.live_workers()[:failures]
            ctx.cluster.force_revoke(victims)
            ctx.cluster.launch(MARKET, 0.175, count=len(victims), delay=120.0)

        ctx.env.schedule_in(failure_at, "inject-failures", callback=inject)
    t0 = ctx.now
    workload.run()
    runtime = ctx.now - t0
    if manager is not None:
        manager.stop()
    return runtime, ctx


def _accumulate(agg, ctx):
    stats = ctx.scheduler.stats
    for field in _COUNTER_FIELDS:
        agg[field] = agg.get(field, 0) + getattr(stats, field)
    agg["tasks_completed"] = agg.get("tasks_completed", 0) + stats.tasks_completed
    agg["ready_queue_peak"] = max(agg.get("ready_queue_peak", 0), stats.ready_queue_peak)
    # Sizing-memo counters live on the context, not SchedulerStats.
    agg["record_size_memo_hits"] = (
        agg.get("record_size_memo_hits", 0) + ctx.record_size_memo_hits
    )
    agg["record_size_memo_misses"] = (
        agg.get("record_size_memo_misses", 0) + ctx.record_size_memo_misses
    )


def _counters_payload(agg):
    resolves = agg["resolve_cache_hits"] + agg["resolve_cache_misses"]
    rounds = agg["scheduling_rounds"]
    memo_hits = agg.get("record_size_memo_hits", 0)
    memo_misses = agg.get("record_size_memo_misses", 0)
    memo_total = memo_hits + memo_misses
    return {
        "scheduling_rounds": rounds,
        "resolve_cache_hits": agg["resolve_cache_hits"],
        "resolve_cache_misses": agg["resolve_cache_misses"],
        # O(1) evidence: nearly every readiness consult is served from the
        # cache instead of a fresh lineage walk + worker probes.
        "resolve_cache_hit_rate": (
            round(agg["resolve_cache_hits"] / resolves, 4) if resolves else None
        ),
        "readiness_invalidations": agg["readiness_invalidations"],
        "readiness_rebuilds": agg["readiness_rebuilds"],
        # O(Δ) evidence: the ready list is rebuilt on a small fraction of
        # rounds; the legacy scheduler rebuilt it on every round.
        "rebuild_fraction": (
            round(agg["readiness_rebuilds"] / rounds, 4) if rounds else None
        ),
        "ready_queue_peak": agg["ready_queue_peak"],
        # Fused data plane: narrow chains collapsed into single streamed
        # passes (both zero under FLINT_FUSION=off, and for workloads whose
        # narrow stages are all single-operator).
        "fused_chains": agg.get("fused_chains", 0),
        "fused_stages": agg.get("fused_stages", 0),
        # Executor plane: kernels staged on the backend pool vs actually
        # consumed by dispatched tasks (all zero under the inline plane;
        # fallbacks mean the chain shape drifted between staging and
        # dispatch, and the task recomputed inline).
        "kernels_offloaded": agg.get("kernels_offloaded", 0),
        "kernels_consumed": agg.get("kernels_consumed", 0),
        "kernels_fallback": agg.get("kernels_fallback", 0),
        # Columnar plane: fused chains lowered to vectorised batch kernels
        # (all zero under FLINT_COLUMNAR=off or FLINT_FUSION=off; fallbacks
        # count chains whose records or kernels refused lowering and which
        # re-ran on the row plane).
        "columnar_chains": agg.get("columnar_chains", 0),
        "columnar_stages": agg.get("columnar_stages", 0),
        "columnar_fallbacks": agg.get("columnar_fallbacks", 0),
        "record_size_memo_hits": memo_hits,
        "record_size_memo_misses": memo_misses,
        # Memoised per-RDD sizing: repeat record-size consults are dict
        # reads, not lineage walks.
        "record_size_memo_hit_rate": (
            round(memo_hits / memo_total, 4) if memo_total else None
        ),
    }


def _smoke_one_workload(factory):
    entry = {}
    agg: dict = {}

    # Figure 7 shape: baseline and one revocation, no checkpointing.
    wall_start = time.perf_counter()
    baseline, ctx = _run_scenario(factory, False, 0, None)
    _accumulate(agg, ctx)
    revoked, ctx = _run_scenario(factory, False, 1, baseline * 0.5)
    _accumulate(agg, ctx)
    entry["fig7"] = {
        "wall_seconds": round(time.perf_counter() - wall_start, 3),
        "baseline_runtime": baseline,
        "revoked_runtime": revoked,
        "increase": round(revoked / baseline - 1.0, 4),
    }

    # Figure 8 shape: checkpointed sweep over concurrent revocation counts.
    wall_start = time.perf_counter()
    runtimes = {}
    base_runtime, ctx = _run_scenario(factory, True, 0, None)
    runtimes["0"] = base_runtime
    _accumulate(agg, ctx)
    for k in FIG8_FAILURES[1:]:
        runtime, ctx = _run_scenario(factory, True, k, base_runtime * 0.5)
        runtimes[str(k)] = runtime
        _accumulate(agg, ctx)
    entry["fig8"] = {
        "wall_seconds": round(time.perf_counter() - wall_start, 3),
        "simulated_runtime_seconds": runtimes,
    }

    wall = entry["fig7"]["wall_seconds"] + entry["fig8"]["wall_seconds"]
    entry["wall_seconds"] = round(wall, 3)
    entry["tasks_completed"] = agg["tasks_completed"]
    entry["tasks_per_second"] = round(agg["tasks_completed"] / wall, 1) if wall else None
    entry["scheduler_counters"] = _counters_payload(agg)
    return entry, agg


def _smoke_multitenant():
    """Scaled-down multi-tenant serving scenario under both policies.

    Wall time and simulated interactive/batch latencies go through the same
    gates as the batch workloads, so server-layer regressions (or behaviour
    drift in the multiplexing scheduler) fail CI like engine ones do.
    """
    from repro.server.scenario import run_multitenant

    entry = {}
    agg: dict = {}
    sims = {}
    wall_start = time.perf_counter()
    for policy in ("fifo", "fair"):
        report = run_multitenant(
            policy=policy, num_workers=4, seed=1234, queries=4,
        )
        pool = report["pools"]["interactive"]
        sims[f"{policy}_interactive_p50"] = pool["p50_response"]
        sims[f"{policy}_interactive_p95"] = pool["p95_response"]
        sims[f"{policy}_batch_response"] = report["pools"]["batch"]["p50_response"]
        stats = report["scheduler_stats"]
        for field in _COUNTER_FIELDS:
            agg[field] = agg.get(field, 0) + stats[field]
        agg["tasks_completed"] = (
            agg.get("tasks_completed", 0) + stats["tasks_completed"]
        )
        agg["ready_queue_peak"] = max(
            agg.get("ready_queue_peak", 0), stats["ready_queue_peak"]
        )
        for field, value in report["sizing"].items():
            agg[field] = agg.get(field, 0) + value
    wall = round(time.perf_counter() - wall_start, 3)
    entry["wall_seconds"] = wall
    entry["multitenant"] = {"simulated_seconds": sims}
    entry["tasks_completed"] = agg["tasks_completed"]
    entry["tasks_per_second"] = round(agg["tasks_completed"] / wall, 1) if wall else None
    entry["scheduler_counters"] = _counters_payload(agg)
    return entry, agg


def _smoke_saturation():
    """Open-loop saturation sweep: 1000 seeded clients vs a capped pool.

    Drives the job server's front door at four offered rates spanning the
    knee (capacity is ~11 q/s at 4 workers / pool cap 8): well under, near,
    2x over, and 4x over.  The throughput-vs-p95 curve is the published
    artifact; per-rate p95 and goodput are deterministic simulated outputs
    and ride the determinism gate, so an admission-path or drain-loop
    regression that shifts the knee fails CI.
    """
    from repro.server.loadgen import saturation_curve

    OFFERED = (6.0, 12.0, 24.0, 48.0)
    entry = {}
    agg: dict = {}
    sims = {}
    wall_start = time.perf_counter()
    points = saturation_curve(
        OFFERED, num_clients=1000, queries_per_client=2,
        num_workers=4, seed=7, pool_cap=8, max_queue=512,
    )
    for point in points:
        tag = f"rate{point.offered_rps:g}"
        sims[f"{tag}_p95"] = point.p95_response
        sims[f"{tag}_throughput"] = point.throughput_rps
        stats = point.scheduler_stats
        for field in _COUNTER_FIELDS:
            agg[field] = agg.get(field, 0) + stats[field]
        agg["tasks_completed"] = (
            agg.get("tasks_completed", 0) + stats["tasks_completed"]
        )
        agg["ready_queue_peak"] = max(
            agg.get("ready_queue_peak", 0), stats["ready_queue_peak"]
        )
        for field, value in point.sizing.items():
            agg[field] = agg.get(field, 0) + value
    wall = round(time.perf_counter() - wall_start, 3)
    entry["wall_seconds"] = wall
    entry["saturation"] = {
        "simulated_seconds": sims,
        "clients": points[0].clients,
        "curve": [point.as_dict() for point in points],
    }
    entry["tasks_completed"] = agg["tasks_completed"]
    entry["tasks_per_second"] = round(agg["tasks_completed"] / wall, 1) if wall else None
    entry["scheduler_counters"] = _counters_payload(agg)
    return entry, agg


def _smoke_streaming():
    """The micro-batch plane: throughput, state, windows, and recovery.

    Runs the streaming workload trio (identity pass-through, τ-checkpointed
    stateful wordcount, sliding-window aggregation) plus the revocation
    recovery benchmark.  Wall-based ``records_per_second`` is the streaming
    throughput floor the perf gate holds; the simulated per-batch latencies,
    sustained ingest rates, and recovery metrics are deterministic outputs
    of the engine and go through the determinism gate like fig7/fig8 times.
    """
    import statistics

    from repro.streaming import (
        StreamingIdentityWorkload,
        StreamingWindowWorkload,
        StreamingWordCountWorkload,
        run_recovery_benchmark,
    )

    entry = {}
    agg: dict = {}
    sims = {}
    total_records = 0
    wall_start = time.perf_counter()

    workload_factories = {
        "identity": lambda ctx: StreamingIdentityWorkload(
            ctx, records_per_batch=4_000, partitions=8, num_batches=8,
        ),
        "wordcount": lambda ctx: StreamingWordCountWorkload(
            ctx, lines_per_batch=1_600, partitions=8, num_batches=8, seed=23,
            checkpointing=True, initial_delta=20.0, max_tau=60.0,
        ),
        "window": lambda ctx: StreamingWindowWorkload(
            ctx, records_per_batch=2_000, partitions=8, num_batches=9,
            window=3, slide=2, num_keys=40, seed=31,
        ),
    }
    for name, factory in workload_factories.items():
        ctx = build_engine_context(num_workers=CLUSTER_SIZE)
        workload = factory(ctx)
        workload.load()
        workload.run()
        ssc = workload.ssc
        sims[f"{name}_median_batch_latency"] = statistics.median(ssc.latencies())
        sims[f"{name}_records_per_second"] = ssc.sustained_records_per_second()
        total_records += ssc.total_records()
        _accumulate(agg, ctx)
    trio_wall = time.perf_counter() - wall_start

    # Revoke the whole pool late in the stream; τ-periodic state
    # checkpointing must keep the recovery batch bounded.
    recovery = run_recovery_benchmark(checkpointing=True)
    for key, value in recovery.items():
        sims[f"recovery_{key}"] = value

    wall = round(time.perf_counter() - wall_start, 3)
    entry["wall_seconds"] = wall
    entry["streaming"] = {"simulated_seconds": sims}
    entry["tasks_completed"] = agg["tasks_completed"]
    entry["tasks_per_second"] = round(agg["tasks_completed"] / wall, 1) if wall else None
    entry["records_processed"] = total_records
    # The gate's streaming floor: ingest records pushed through the engine
    # per wall-clock second across the trio (the recovery run's wall is
    # excluded — it deliberately pays a revocation recomputation).
    entry["records_per_second"] = (
        round(total_records / trio_wall, 1) if trio_wall else None
    )
    entry["scheduler_counters"] = _counters_payload(agg)
    return entry, agg


def _smoke_longhorizon():
    """The analytic market plane at scale: a 1000-node, two-week portfolio
    sweep through the canonical-job simulator.

    The sweep exercises the O(breakpoints) machinery end to end — portfolio
    ranking over MTTF estimates (vectorised exceedance queries), per-segment
    billing via closed-form ``mean_price``, and revocation stamping — and
    reports ``simulated_seconds_per_wall_second``, the interactivity metric
    the perf gate floors: month-long 10k-node what-ifs only stay interactive
    while a wall second buys tens of millions of simulated seconds.  Job
    outcomes (cost, revocations) are deterministic simulated outputs and
    ride the determinism gate.
    """
    from repro.analysis.longrun import LongHorizonConfig, run_long_horizon
    from repro.factory import standard_provider

    config = LongHorizonConfig(num_nodes=1000, weeks=2.0, portfolio_size=4)
    wall_start = time.perf_counter()
    report = run_long_horizon(standard_provider(seed=5), config)
    wall = round(time.perf_counter() - wall_start, 3)

    entry = {}
    agg: dict = {field: 0 for field in _COUNTER_FIELDS}
    # One simulated canonical job is the unit of work here; the engine's
    # scheduler counters stay zero (this plane never builds a task graph).
    agg["tasks_completed"] = report.jobs
    agg["ready_queue_peak"] = 0
    entry["wall_seconds"] = wall
    entry["longhorizon"] = {
        "num_nodes": config.num_nodes,
        "weeks": config.weeks,
        "portfolio_size": config.portfolio_size,
        "portfolio": report.portfolio,
        "jobs": report.jobs,
        "simulated_seconds": {
            "total_cost": report.total_cost,
            "total_revocations": report.total_revocations,
            "total_checkpoints": report.total_checkpoints,
            "span": report.simulated_seconds,
        },
        "sweep_wall_seconds": round(report.wall_seconds, 3),
    }
    entry["simulated_seconds_per_wall_second"] = (
        round(report.simulated_seconds_per_wall_second, 1)
    )
    entry["tasks_completed"] = agg["tasks_completed"]
    entry["tasks_per_second"] = round(agg["tasks_completed"] / wall, 1) if wall else None
    entry["scheduler_counters"] = _counters_payload(agg)
    return entry, agg


def run_smoke(
    out_path: str,
    mode: str = "incremental",
    fusion: str = "on",
    executor: str = "inline",
    workers: "int | None" = None,
    columnar: str = "on",
) -> dict:
    os.environ["FLINT_SCHEDULER"] = mode
    os.environ["FLINT_FUSION"] = fusion
    os.environ["FLINT_COLUMNAR"] = columnar
    # Executor plane under test.  The env var is the channel that reaches
    # every context the scenarios build; resolving here also validates the
    # name and pins the effective pool size into the report, so the gate can
    # compare like-with-like (inline baselines never gate a process run).
    os.environ["FLINT_EXECUTOR"] = executor
    if workers is not None:
        os.environ["FLINT_WORKERS"] = str(workers)
    else:
        os.environ.pop("FLINT_WORKERS", None)
    backend = resolve_backend(executor, workers)
    # Measured runs must never pay (or hide behind) tracing overhead: pin the
    # observability layer off and fail loudly if the env says otherwise, so
    # the committed gate always compares untraced engines.
    os.environ["FLINT_TRACE"] = "0"
    from repro.obs import tracing_enabled_by_env

    assert not tracing_enabled_by_env(), "perf smoke must run with tracing disabled"
    report = {
        "benchmark": "engine_perf_smoke",
        "scheduler_mode": mode,
        "fusion": fusion,
        "columnar": columnar,
        "executor": backend.name,
        "worker_count": backend.worker_count,
        # Wall timings only mean anything relative to the host's core count:
        # on a single-core machine the parallel backends pay serialisation
        # and pool overhead with no concurrent compute to win back.
        "host_cpus": os.cpu_count(),
        "tracing": "disabled",
        "cluster_size": CLUSTER_SIZE,
        "cluster_mttf_seconds": CLUSTER_MTTF,
        "fig8_failure_counts": FIG8_FAILURES,
        "workloads": {},
    }
    total_wall = 0.0
    total_tasks = 0
    totals: dict = {}
    smokes = [(name, lambda f=factory: _smoke_one_workload(f))
              for name, factory in BATCH_WORKLOADS.items()]
    smokes.append(("MultiTenant", _smoke_multitenant))
    smokes.append(("MultiTenantSaturation", _smoke_saturation))
    smokes.append(("Streaming", _smoke_streaming))
    smokes.append(("LongHorizon", _smoke_longhorizon))
    for name, smoke in smokes:
        entry, agg = smoke()
        report["workloads"][name] = entry
        total_wall += entry["wall_seconds"]
        total_tasks += entry["tasks_completed"]
        for field in _COUNTER_FIELDS:
            totals[field] = totals.get(field, 0) + agg[field]
        totals["tasks_completed"] = total_tasks
        totals["ready_queue_peak"] = max(
            totals.get("ready_queue_peak", 0), agg["ready_queue_peak"]
        )
    report["totals"] = {
        "wall_seconds": round(total_wall, 3),
        "tasks_completed": total_tasks,
        "tasks_per_second": round(total_tasks / total_wall, 1) if total_wall else None,
        "scheduler_counters": _counters_payload(totals),
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


def fusion_comparison(report: dict, unfused_out: str) -> dict:
    """Re-run the smoke with ``FLINT_FUSION=off`` and compare wall/throughput.

    The fused report must already exist; the unfused run lands beside it.
    Simulated runtimes are identical by construction (fusion only changes
    how narrow chains are executed, never what they compute or charge), so
    the interesting deltas are wall seconds and tasks/second.
    """
    unfused = run_smoke(
        unfused_out,
        mode=report["scheduler_mode"],
        fusion="off",
        executor=report.get("executor", "inline"),
        workers=report.get("worker_count"),
        columnar=report.get("columnar", "on"),
    )
    comparison = {}
    pairs = list(report["workloads"].items()) + [("totals", report["totals"])]
    for name, fused_entry in pairs:
        unfused_entry = (
            unfused["totals"] if name == "totals" else unfused["workloads"][name]
        )
        fused_wall = fused_entry["wall_seconds"]
        comparison[name] = {
            "fused_wall_seconds": fused_wall,
            "unfused_wall_seconds": unfused_entry["wall_seconds"],
            "fused_tasks_per_second": fused_entry["tasks_per_second"],
            "unfused_tasks_per_second": unfused_entry["tasks_per_second"],
            "wall_speedup": (
                round(unfused_entry["wall_seconds"] / fused_wall, 3)
                if fused_wall else None
            ),
        }
    return comparison


def executor_comparison(report: dict, out_for, workers: "int | None" = None) -> dict:
    """Re-run the smoke under every other executor backend.

    Simulated runtimes are backend-invariant by contract (the golden
    equivalence suite pins them bit-for-bit), so the deltas that matter are
    wall seconds and task throughput per backend.  Interpret them against
    ``host_cpus``: with a single core the process/async planes pay pickling
    and pool overhead with no parallel compute to win back; the Figure 8
    speedups need a multi-core host.  ``out_for(name)`` maps a backend name
    to the path its full report is written to.
    """
    comparison = {}
    for name in EXECUTOR_BACKENDS:
        if name == report.get("executor", "inline"):
            entry = report
        else:
            entry = run_smoke(
                out_for(name),
                mode=report["scheduler_mode"],
                fusion=report["fusion"],
                executor=name,
                workers=workers,
                columnar=report.get("columnar", "on"),
            )
        comparison[name] = {
            "worker_count": entry["worker_count"],
            "wall_seconds": entry["totals"]["wall_seconds"],
            "tasks_per_second": entry["totals"]["tasks_per_second"],
            "workload_wall_seconds": {
                wname: wentry["wall_seconds"]
                for wname, wentry in entry["workloads"].items()
            },
        }
    return comparison


def columnar_comparison(passes: int = 6) -> dict:
    """Data-plane microbench: row closures vs columnar batch kernels.

    The full smoke's wall clock is scheduler-dominated, so it understates
    what the columnar plane does to the *data plane*.  This bench isolates
    it: the same partitions are pushed through the row-plane closures and
    through ``from_records -> batch kernel -> to_records`` (conversion cost
    included — that is what a fused chain actually pays), asserting the
    outputs are identical.  One task = one partition-pass, mirroring how the
    engine charges fused chains.
    """
    from repro.engine.columnar import from_records
    from repro.engine.scheduler import _combine_sort_key
    from repro.engine.transformations import _ABSENT, _record_hash_key
    from repro.workloads.datagen import generate_clustered_points, initial_centroids
    from repro.workloads.kmeans import _assign_batch, _closest
    from repro.workloads.pagerank import (
        _accumulate_batch,
        _contributions_batch,
        _rank_update_batch,
    )

    comparison = {}

    def bench(name, partitions, row_fn, col_fn):
        row_fn(partitions[0])  # warm both paths outside the timed region
        col_fn(partitions[0])

        def best_pass(fn):
            # Best-of-N passes, one full sweep over the partitions per
            # pass: the minimum excludes GC pauses and allocator noise
            # (the same convention pyperf uses), which would otherwise
            # swamp a millisecond-scale per-task comparison.
            best = None
            out = None
            for _ in range(passes):
                gc.collect()
                t0 = time.perf_counter()
                out = [fn(part) for part in partitions]
                wall = time.perf_counter() - t0
                if best is None or wall < best:
                    best = wall
            return best, out

        row_wall, row_out = best_pass(row_fn)
        col_wall, col_out = best_pass(col_fn)
        assert row_out == col_out, f"{name}: columnar output diverged from row plane"
        tasks = len(partitions)
        comparison[name] = {
            "tasks_per_pass": tasks,
            "passes": passes,
            "records_per_task": len(partitions[0]),
            "row_wall_seconds": round(row_wall, 4),
            "columnar_wall_seconds": round(col_wall, 4),
            "row_tasks_per_second": round(tasks / row_wall, 1) if row_wall else None,
            "columnar_tasks_per_second": (
                round(tasks / col_wall, 1) if col_wall else None
            ),
            "speedup": round(row_wall / col_wall, 2) if col_wall else None,
        }

    # KMeans assignment: the per-record _closest map vs its batch twin.
    k, dim = 12, 8
    centroids = initial_centroids(23, k, dim)
    km_parts = [
        generate_clustered_points(23, p, 2_500, k, dim) for p in range(8)
    ]
    km_assign = lambda p, cs=centroids: (_closest(p, cs), (p, 1))  # noqa: E731
    bench(
        "KMeans",
        km_parts,
        # MappedRDD.compute_fused's literal loop: one closure call per record.
        lambda part: [km_assign(pt) for pt in part],
        lambda part, cs=centroids: _assign_batch(from_records(part), cs).to_records(),
    )

    # PageRank iteration data plane: contribution fan-out, per-destination
    # rank accumulation, and the damping update, over cogroup-shaped
    # records (src, ([dsts-list], [rank])).  The row side is the closure /
    # combiner work the engine streams per record; the columnar side runs
    # the three batch kernels with one conversion in and one out.
    def pr_partition(p, vertices=2_500, fanout=32, universe=5_000):
        return [
            (
                p * vertices + v,
                (
                    [[(v * 31 + j * 7 + p) % universe for j in range(fanout)]],
                    [1.0 + (v % 17) / 16.0],
                ),
            )
            for v in range(vertices)
        ]

    def pr_contributions(kv):
        # Same body as PageRankWorkload.run's per-record closure.
        _src, (link_groups, rank_values) = kv
        if not link_groups or not rank_values:
            return []
        dsts = link_groups[0]
        rank = rank_values[0]
        share = rank / len(dsts)
        return [(d, share) for d in dsts]

    pr_create = lambda v: v  # noqa: E731 - reduce_by_key's create_combiner
    pr_combine = lambda a, b: a + b  # noqa: E731 - the reduce_by_key lambda
    pr_damp = lambda total: 0.15 + 0.85 * total  # noqa: E731
    # map_values wraps the value fn in a per-record pair lambda; the row
    # plane pays both calls per record, so the bench must too.
    pr_damp_record = lambda kv: (kv[0], pr_damp(kv[1]))  # noqa: E731
    pr_buckets = 8  # the workload's reduce partition count

    def pr_row(part):
        # The row plane's per-iteration sequence, verbatim from the engine:
        # flat_map (FlatMappedRDD.compute_fused's extend loop), map-side
        # combine (_execute_map's sentinel-get + create/merge per record),
        # bucket distribution + per-bucket hash sort (the shuffle write),
        # the reduce-side combiner merge, hash-ordered output, and the
        # damping map.  The columnar side produces the identical output
        # with batch kernels, so the aggregate machinery collapses into
        # two bincounts.
        contribs = []
        extend = contribs.extend
        for kv in part:
            extend(pr_contributions(kv))
        combined = {}
        get = combined.get
        for key, value in contribs:
            prev = get(key, _ABSENT)
            combined[key] = (
                pr_create(value) if prev is _ABSENT else pr_combine(prev, value)
            )
        tables = [[] for _ in range(pr_buckets)]
        for item in combined.items():
            tables[(item[0] & 0x7FFFFFFF) % pr_buckets].append(item)
        buckets = [
            sorted(t, key=_combine_sort_key) if len(t) > 1 else t for t in tables
        ]
        merged = {}
        get = merged.get
        for bucket in buckets:
            for key, value in bucket:
                prev = get(key, _ABSENT)
                merged[key] = (
                    value if prev is _ABSENT else pr_combine(prev, value)
                )
        reduced = sorted(merged.items(), key=_record_hash_key)
        return [pr_damp_record(kv) for kv in reduced]

    def pr_col(part):
        batch = _contributions_batch(from_records(part))
        return _rank_update_batch(_accumulate_batch(batch)).to_records()

    pr_parts = [pr_partition(p) for p in range(8)]
    bench("PageRank", pr_parts, pr_row, pr_col)
    return comparison


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=os.path.join(_ROOT, "BENCH_engine.json"))
    parser.add_argument(
        "--mode", default="incremental", choices=["incremental", "legacy"]
    )
    parser.add_argument("--fusion", default="on", choices=["on", "off"])
    parser.add_argument(
        "--columnar", default="on", choices=["on", "off"],
        help="columnar batch-kernel plane for fused chains (FLINT_COLUMNAR)",
    )
    parser.add_argument(
        "--executor", default="inline", choices=list(EXECUTOR_BACKENDS),
        help="executor backend the measured runs use (FLINT_EXECUTOR)",
    )
    parser.add_argument(
        "--executor-workers", type=int, default=None,
        help="backend pool size (FLINT_WORKERS); default: host cores capped at 4",
    )
    parser.add_argument(
        "--compare-fusion", action="store_true",
        help="also run with FLINT_FUSION=off and report wall/throughput deltas",
    )
    parser.add_argument(
        "--compare-executors", action="store_true",
        help="also run under every other executor backend and record "
        "per-backend wall seconds in the report",
    )
    parser.add_argument(
        "--compare-columnar", action="store_true",
        help="also run the data-plane microbench (row closures vs columnar "
        "batch kernels) and record per-workload speedups in the report",
    )
    args = parser.parse_args()
    if args.compare_fusion and args.fusion != "on":
        parser.error("--compare-fusion requires --fusion on (the fused side)")
    report = run_smoke(
        args.out, args.mode, fusion=args.fusion,
        executor=args.executor, workers=args.executor_workers,
        columnar=args.columnar,
    )
    stem, ext = os.path.splitext(args.out)
    if args.compare_fusion:
        comparison = fusion_comparison(report, stem + ".unfused" + ext)
        report["fusion_comparison"] = comparison
    if args.compare_executors:
        report["executor_comparison"] = executor_comparison(
            report, lambda name: f"{stem}.{name}{ext}",
            workers=args.executor_workers,
        )
    if args.compare_columnar:
        report["columnar_comparison"] = columnar_comparison()
    if args.compare_fusion or args.compare_executors or args.compare_columnar:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    for name, entry in report["workloads"].items():
        counters = entry["scheduler_counters"]
        if "fig7" in entry:
            breakdown = (
                f"(fig7 {entry['fig7']['wall_seconds']}s, "
                f"fig8 {entry['fig8']['wall_seconds']}s), "
            )
        elif "multitenant" in entry:
            sims = entry["multitenant"]["simulated_seconds"]
            breakdown = (
                f"(interactive p95 fifo {sims['fifo_interactive_p95']:.2f}s "
                f"vs fair {sims['fair_interactive_p95']:.2f}s), "
            )
        elif "saturation" in entry:
            curve = entry["saturation"]["curve"]
            knee = " ".join(
                f"{p['offered_rps']:g}->{p['throughput_rps']:.1f}q/s"
                f"@p95={p['p95_response']:.2f}s"
                for p in curve
            )
            breakdown = (
                f"({entry['saturation']['clients']} clients, {knee}), "
            )
        elif "longhorizon" in entry:
            horizon = entry["longhorizon"]
            sims = horizon["simulated_seconds"]
            breakdown = (
                f"({horizon['num_nodes']} nodes x {horizon['weeks']:g} weeks, "
                f"{horizon['jobs']} jobs, "
                f"{entry['simulated_seconds_per_wall_second']:.3g} sim s/wall s, "
                f"cost {sims['total_cost']:.2f}), "
            )
        else:
            sims = entry["streaming"]["simulated_seconds"]
            breakdown = (
                f"(ingest {entry['records_per_second']} records/s wall, "
                f"recovery batch {sims['recovery_recovery_batch_latency']:.2f}s "
                f"sim), "
            )
        print(
            f"{name}: {entry['wall_seconds']}s wall "
            + breakdown
            + f"{entry['tasks_completed']} tasks ({entry['tasks_per_second']}/s), "
            f"resolve hit rate {counters['resolve_cache_hit_rate']}, "
            f"rebuild fraction {counters['rebuild_fraction']}, "
            f"fused chains {counters['fused_chains']}, "
            f"sizing memo hit rate {counters['record_size_memo_hit_rate']}"
        )
    totals = report["totals"]
    print(
        f"total: {totals['wall_seconds']}s wall, "
        f"{totals['tasks_completed']} tasks ({totals['tasks_per_second']}/s)"
    )
    for name, cmp in report.get("fusion_comparison", {}).items():
        print(
            f"fusion {name}: wall {cmp['fused_wall_seconds']}s fused vs "
            f"{cmp['unfused_wall_seconds']}s unfused "
            f"({cmp['wall_speedup']}x), throughput "
            f"{cmp['fused_tasks_per_second']}/s vs "
            f"{cmp['unfused_tasks_per_second']}/s"
        )
    for name, cmp in report.get("executor_comparison", {}).items():
        print(
            f"executor {name} (workers={cmp['worker_count']}, "
            f"host_cpus={report['host_cpus']}): "
            f"{cmp['wall_seconds']}s wall, {cmp['tasks_per_second']} tasks/s"
        )
    for name, cmp in report.get("columnar_comparison", {}).items():
        print(
            f"columnar {name}: {cmp['row_tasks_per_second']} tasks/s row vs "
            f"{cmp['columnar_tasks_per_second']} tasks/s columnar "
            f"({cmp['speedup']}x, {cmp['records_per_task']} records/task)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
