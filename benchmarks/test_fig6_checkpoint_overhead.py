"""Figure 6: the cost of checkpointing itself (no failures injected).

Paper results reproduced here:
  6a — Flint's RDD checkpointing tax is 2-10% at MTTF 50h, highest for ALS;
  6b — system-level (whole-memory) checkpointing costs ~50% vs Flint ~10%;
  6c — the ALS tax grows as markets get more volatile (MTTF 50h -> 1h);
  §5.2 ablation — spanning availability zones barely hurts, because
       checkpoint writes are bandwidth- not latency-bound.
"""


from benchmarks.conftest import BATCH_WORKLOADS, als_factory, kmeans_factory
from repro.analysis.experiments import checkpointing_tax
from repro.analysis.tables import format_table
from repro.simulation.clock import HOUR
from repro.storage.dfs import DFSConfig


def _fig6a():
    taxes = {}
    rows = []
    for name, factory in BATCH_WORKLOADS.items():
        result = checkpointing_tax(factory, cluster_mttf=50 * HOUR)
        taxes[name] = result["tax"]
        rows.append(
            [name, result["baseline_runtime"], result["checkpointed_runtime"],
             result["tax"] * 100, result["checkpoint_gb"]]
        )
    return rows, taxes


def test_fig6a_rdd_checkpointing_tax(benchmark):
    rows, taxes = benchmark.pedantic(_fig6a, rounds=1, iterations=1)
    print(
        format_table(
            ["workload", "baseline (s)", "with ckpt (s)", "tax (%)", "ckpt GB"],
            rows,
            title="Figure 6a: Flint checkpointing tax @ MTTF 50h (paper: 2-10%)",
        )
    )
    for name, tax in taxes.items():
        assert -0.01 <= tax < 0.25, f"{name} tax {tax:.1%} outside plausible band"
    # ALS moves the most data; it pays the highest tax (paper's ordering).
    assert taxes["ALS"] >= taxes["KMeans"] - 0.02
    benchmark.extra_info["tax_pct"] = {k: v * 100 for k, v in taxes.items()}


def _fig6b():
    # The paper compares both approaches at the *same* checkpoint frequency;
    # Flint's effective ALS cadence is the shuffle interval (~2 minutes).
    flint = checkpointing_tax(als_factory, cluster_mttf=50 * HOUR, mode="flint")
    system = checkpointing_tax(
        als_factory, cluster_mttf=50 * HOUR, mode="system", system_interval=120.0
    )
    return flint, system


def test_fig6b_system_vs_rdd_checkpointing(benchmark):
    flint, system = benchmark.pedantic(_fig6b, rounds=1, iterations=1)
    print(
        format_table(
            ["approach", "tax (%)", "ckpt GB"],
            [
                ["Flint-RDD", flint["tax"] * 100, flint["checkpoint_gb"]],
                ["System-level", system["tax"] * 100, system["checkpoint_gb"]],
            ],
            title="Figure 6b: system-level vs Flint-RDD checkpointing (ALS)",
        )
    )
    # The paper's headline: system-level costs several times Flint's tax.
    assert system["tax"] > 2 * max(flint["tax"], 0.01)
    assert system["checkpoint_gb"] > flint["checkpoint_gb"]
    benchmark.extra_info["flint_tax_pct"] = flint["tax"] * 100
    benchmark.extra_info["system_tax_pct"] = system["tax"] * 100


MTTFS_6C = [50.0, 20.0, 5.0, 1.0]


def _fig6c():
    taxes = {}
    for mttf_h in MTTFS_6C:
        result = checkpointing_tax(als_factory, cluster_mttf=mttf_h * HOUR)
        taxes[mttf_h] = result["tax"]
    return taxes


def test_fig6c_tax_vs_volatility(benchmark):
    taxes = benchmark.pedantic(_fig6c, rounds=1, iterations=1)
    rows = [[f"{m:.0f}h", taxes[m] * 100] for m in MTTFS_6C]
    print(
        format_table(
            ["cluster MTTF", "tax (%)"],
            rows,
            title="Figure 6c: ALS checkpointing tax vs market volatility",
        )
    )
    # Tax grows (roughly monotonically) with volatility, paper: 10% -> ~50%.
    assert taxes[1.0] > taxes[50.0]
    assert taxes[1.0] < 1.0  # bounded by recomputation cost (paper: <=50%)
    benchmark.extra_info["tax_pct"] = {str(k): v * 100 for k, v in taxes.items()}


def _multi_az():
    same_az = checkpointing_tax(kmeans_factory, cluster_mttf=20 * HOUR)
    multi_az = checkpointing_tax(
        kmeans_factory, cluster_mttf=20 * HOUR,
        dfs_config=DFSConfig(inter_az_latency=0.05),
    )
    return same_az, multi_az


def test_sec52_multi_az_ablation(benchmark):
    same_az, multi_az = benchmark.pedantic(_multi_az, rounds=1, iterations=1)
    print(
        format_table(
            ["deployment", "runtime with ckpt (s)"],
            [
                ["single AZ", same_az["checkpointed_runtime"]],
                ["multi AZ (+50ms/op)", multi_az["checkpointed_runtime"]],
            ],
            title="§5.2: multi-AZ deployment barely affects runtime",
        )
    )
    penalty = (
        multi_az["checkpointed_runtime"] - same_az["checkpointed_runtime"]
    ) / same_az["checkpointed_runtime"]
    # Paper: 0% for KMeans, 7% for ALS — bandwidth-bound writes.
    assert penalty < 0.10
    benchmark.extra_info["penalty_pct"] = penalty * 100
