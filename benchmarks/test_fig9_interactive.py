"""Figure 9: TPC-H response times around revocations.

Paper scenario: an interactive Spark SQL session with tables cached in
memory.  Either all ten servers are revoked at once (recomputation /
Flint-batch configurations) or a single server is revoked (Flint-interactive
configuration).  Without checkpointing the post-revocation query must
re-fetch, re-partition, and de-serialise the source data (400-500s);
Flint-batch restores from HDFS checkpoints (~4x better); Flint-interactive
loses only one server's slice (another ~3x, i.e. 10-20x overall).
"""


from benchmarks.conftest import SEED, tpch_factory
from repro.analysis.experiments import build_engine_context
from repro.analysis.tables import format_table
from repro.core.ftmanager import FaultToleranceManager
from repro.simulation.clock import HOUR

REPLACEMENT_DELAY = 120.0


def _scenario(mode, query_name):
    """One fresh universe per (configuration, query): the first query after
    a revocation pays the whole recovery bill, so measuring a second query
    in the same universe would see a re-warmed cache."""
    ctx = build_engine_context(num_workers=10, seed=SEED)
    manager = None
    if mode != "recompute":
        manager = FaultToleranceManager(ctx, lambda: 20 * HOUR)
        manager.start()
    session = tpch_factory(ctx)
    session.load()
    query = session.q3 if query_name == "short" else session.q1
    # A long-lived session: idle past two checkpoint intervals so the cached
    # tables become durable (no-op for the recompute configuration).
    ctx.env.run_until(ctx.now + 4.5 * HOUR)

    _r, lat_ok = session.timed(query)

    if mode == "flint-interactive":
        victims = ctx.cluster.live_workers()[:1]
    else:
        victims = ctx.cluster.live_workers()
    ctx.cluster.force_revoke(victims)
    ctx.cluster.launch("od/r3.large", 0.175, count=len(victims), delay=REPLACEMENT_DELAY)

    _rf, lat_fail = session.timed(query)
    if manager is not None:
        manager.stop()
    return lat_ok, lat_fail


def _run_all():
    results = {}
    for mode in ("recompute", "flint-batch", "flint-interactive"):
        entry = {}
        for query_name in ("short", "medium"):
            ok, fail = _scenario(mode, query_name)
            entry[f"{query_name}_ok"] = ok
            entry[f"{query_name}_fail"] = fail
        results[mode] = entry
    return results


def test_fig9_interactive_response_times(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for query, label in (("short", "Figure 9a: short query (Q3)"),
                         ("medium", "Figure 9b: medium query (Q1)")):
        rows = [
            [mode, results[mode][f"{query}_ok"], results[mode][f"{query}_fail"]]
            for mode in results
        ]
        print(format_table(["configuration", "no-failure (s)", "failure (s)"],
                           rows, title=label))
    for query in ("short", "medium"):
        recompute = results["recompute"][f"{query}_fail"]
        batch = results["flint-batch"][f"{query}_fail"]
        interactive = results["flint-interactive"][f"{query}_fail"]
        # The paper's ordering and rough factors.
        assert recompute > 2.2 * batch, f"{query}: batch ckpt must beat recompute"
        assert batch > interactive, f"{query}: interactive must beat batch"
        assert recompute > 8 * interactive, (
            f"{query}: interactive should be ~10x better than recompute"
        )
        # No-failure latencies are low across all configurations.
        for mode in results:
            assert results[mode][f"{query}_ok"] < 0.4 * recompute
    benchmark.extra_info["latencies"] = {
        m: {k: v for k, v in r.items() if k != "answers"} for m, r in results.items()
    }
