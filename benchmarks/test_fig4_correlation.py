"""Figure 4: pairwise price correlation across spot markets.

Paper: publicly available traces show prices (and hence revocations) are
pairwise uncorrelated for most market pairs — both across availability
zones (us-east-1a) and across zones for one instance type (m2.2xlarge) —
which is what makes the interactive policy's diversification effective.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.simulation.clock import DAY, HOUR
from repro.simulation.rng import SeededRNG
from repro.traces.generators import correlated_peaky_traces
from repro.traces.stats import pairwise_price_correlation


def _run_correlation():
    rng = SeededRNG(77, "fig4")
    # A mostly-independent universe with a minority of correlated pairs,
    # mirroring the real traces' structure.
    independent = correlated_peaky_traces(
        rng.child("indep"), [0.175] * 12, correlation=0.0,
        spike_rate_per_hour=1 / 30.0, horizon=45 * DAY,
    )
    coupled = correlated_peaky_traces(
        rng.child("coupled"), [0.175] * 4, correlation=0.8,
        spike_rate_per_hour=1 / 30.0, horizon=45 * DAY,
    )
    traces = independent + coupled
    corr = pairwise_price_correlation(traces, dt=HOUR)
    n = len(traces)
    off_diag = corr[~np.eye(n, dtype=bool)]
    frac_uncorrelated = float((np.abs(off_diag) < 0.3).mean())
    indep_block = corr[:12, :12][~np.eye(12, dtype=bool)]
    coupled_block = corr[12:, 12:][~np.eye(4, dtype=bool)]
    return corr, frac_uncorrelated, float(np.abs(indep_block).mean()), float(coupled_block.mean())


def test_fig4_market_price_correlation(benchmark):
    corr, frac_uncorrelated, indep_mean, coupled_mean = benchmark.pedantic(
        _run_correlation, rounds=1, iterations=1
    )
    rows = [
        ["fraction of pairs |rho| < 0.3", frac_uncorrelated],
        ["mean |rho|, independent block", indep_mean],
        ["mean rho, common-shock block", coupled_mean],
    ]
    print(format_table(["statistic", "value"], rows,
                       title="Figure 4: pairwise spot price correlation"))
    # Most pairs uncorrelated (the paper's darker squares dominate) ...
    assert frac_uncorrelated > 0.6
    assert indep_mean < 0.2
    # ... while genuinely coupled markets are detectable and avoidable.
    assert coupled_mean > 0.3
    benchmark.extra_info["frac_uncorrelated"] = frac_uncorrelated
