"""Model-vs-simulation validation (methodology check, beyond the figures).

Flint's selection acts on the Eq. 1/2 expectations; this benchmark measures
how well those closed forms track trace-driven execution across volatility
regimes, and that they *rank* markets the same way the simulator does —
the property selection actually needs.
"""

from repro.analysis.longrun import CanonicalConfig
from repro.analysis.model_validation import validate_catalog
from repro.analysis.tables import format_table
from repro.factory import standard_provider
from repro.simulation.clock import HOUR
from repro.traces.ec2 import MarketSpec, R3_LARGE

CATALOG = [
    MarketSpec("stable/r3.large", R3_LARGE, 200.0, steady_fraction=0.22),
    MarketSpec("typical/r3.large", R3_LARGE, 50.0, steady_fraction=0.25),
    MarketSpec("volatile/r3.large", R3_LARGE, 8.0, steady_fraction=0.28,
               spike_duration_hours=0.1),
]


def _run():
    provider = standard_provider(seed=77, catalog=CATALOG)
    return validate_catalog(
        provider,
        [s.market_id for s in CATALOG],
        config=CanonicalConfig(job_length=4 * HOUR),
        num_runs=60,
    )


def test_model_validation(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [p.market_id, p.mttf / HOUR, p.model_runtime, p.simulated_runtime,
         p.runtime_error * 100, p.model_cost, p.simulated_cost]
        for p in points
    ]
    print(format_table(
        ["market", "MTTF (h)", "E[T] model (s)", "E[T] sim (s)",
         "runtime err (%)", "E[C] model ($)", "E[C] sim ($)"],
        rows, title="Eq. 1/2 expectations vs trace simulation",
    ))
    for p in points:
        assert p.runtime_error < 0.30
        # Cost is conservative (never wildly optimistic).
        assert p.model_cost >= 0.7 * p.simulated_cost
    # The ranking selection relies on is preserved.
    by_model = [p.market_id for p in sorted(points, key=lambda p: p.model_cost)]
    by_sim = [p.market_id for p in sorted(points, key=lambda p: p.simulated_cost)]
    assert by_model == by_sim
    benchmark.extra_info["runtime_errors_pct"] = {
        p.market_id: p.runtime_error * 100 for p in points
    }
