"""Shared workload factories and scales for the figure benchmarks.

Scales are chosen so each experiment's *simulated* time matches the paper's
regime (hundreds to thousands of seconds) while its wall-clock time stays in
seconds.  Virtual record sizes carry the paper's data volumes (PageRank 2GB,
ALS 10GB, KMeans 16GB, TPC-H 10GB).
"""

from __future__ import annotations

import pytest

from repro.workloads import ALSWorkload, KMeansWorkload, PageRankWorkload, TPCHSession

CLUSTER_SIZE = 10
PARTITIONS = 20  # 10 r3.large x 2 VCPUs
SEED = 1234


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is tier-2: slow, figure-producing runs.

    Tier-1 (``pytest`` with the default testpaths) never collects these;
    ``pytest -m tier2 benchmarks/`` is the explicit slow path.
    """
    for item in items:
        item.add_marker(pytest.mark.tier2)


def pagerank_factory(ctx):
    return PageRankWorkload(
        ctx, data_gb=2.0, num_edges=12_000, num_vertices=2_400,
        partitions=PARTITIONS, iterations=8, seed=SEED,
    )


def kmeans_factory(ctx):
    # 12 iterations put the runtime in the paper's 1400-2800s band, which
    # also means the checkpoint interval τ fits inside the job.
    return KMeansWorkload(
        ctx, data_gb=16.0, num_points=12_000, k=10, dim=8,
        partitions=PARTITIONS, iterations=12, distance_cost=6.0, seed=SEED,
    )


def als_factory(ctx):
    return ALSWorkload(
        ctx, data_gb=10.0, num_ratings=12_000, num_users=800, num_items=300,
        partitions=PARTITIONS, iterations=6, solve_cost=4.0, seed=SEED,
    )


def tpch_factory(ctx):
    return TPCHSession(
        ctx, data_gb=10.0, lineitem_rows=12_000, orders_rows=3_000,
        customer_rows=800, partitions=PARTITIONS, seed=SEED,
    )


BATCH_WORKLOADS = {
    "PageRank": pagerank_factory,
    "KMeans": kmeans_factory,
    "ALS": als_factory,
}
