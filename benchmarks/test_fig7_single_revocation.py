"""Figure 7: one revocation without checkpointing.

Paper: a single revocation out of ten servers inflates running time 50-90%
(PageRank worst), almost entirely from lineage recomputation; acquiring the
replacement server contributes only ~5 points for PageRank and a negligible
share for the longer workloads.
"""

from benchmarks.conftest import BATCH_WORKLOADS
from repro.analysis.experiments import revocation_impact
from repro.analysis.tables import format_table


def _fig7():
    rows = []
    increases = {}
    for name, factory in BATCH_WORKLOADS.items():
        result = revocation_impact(factory, failures=1, checkpointing="none")
        increases[name] = result["increase"]
        rows.append(
            [name, result["baseline_runtime"], result["runtime"],
             result["increase"] * 100, result["tasks_lost"]]
        )
    return rows, increases


def test_fig7_single_revocation_recompute_cost(benchmark):
    rows, increases = benchmark.pedantic(_fig7, rounds=1, iterations=1)
    print(
        format_table(
            ["workload", "baseline (s)", "1 revocation (s)", "increase (%)",
             "tasks lost"],
            rows,
            title="Figure 7: runtime increase from one revocation (no checkpointing)",
        )
    )
    for name, inc in increases.items():
        assert inc > 0.05, f"{name}: a revocation must cost real recomputation"
        assert inc < 2.0, f"{name}: increase implausibly large"
    benchmark.extra_info["increase_pct"] = {k: v * 100 for k, v in increases.items()}
