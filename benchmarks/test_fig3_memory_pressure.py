"""Figure 3: simultaneous revocations under memory pressure.

Paper: with PageRank inputs of 2/4/6GB, concurrent revocations increase
running time moderately — until the surviving workers' memory can no longer
hold the working set, at which point Spark thrashes (the paper's "Out of
Memory" bar at 6GB shows a several-hundred-percent increase).

We run PageRank on a small (4-node) cluster and revoke half of it mid-run:
the survivors' RDD store (2 x 6GB) comfortably fits the 2GB working set,
strains at 4GB, and thrashes at 6GB.
"""

from repro.analysis.experiments import run_batch_workload
from repro.analysis.tables import format_table
from repro.workloads import PageRankWorkload

SIZES_GB = [2.0, 4.0, 6.0]


def _factory(data_gb):
    def make(ctx):
        return PageRankWorkload(
            ctx, data_gb=data_gb, num_edges=8_000, num_vertices=1_600,
            partitions=8, iterations=6, memory_inflation=2.5, seed=99,
        )

    return make


def _run_memory_pressure():
    # No replacements: the paper's effect is the *survivors* running out of
    # memory for the working set (MEMORY_ONLY cache: evictions drop blocks
    # and every access recomputes).
    rows = []
    increases = {}
    for size in SIZES_GB:
        base = run_batch_workload(_factory(size), num_workers=4, seed=7)
        failed = run_batch_workload(
            _factory(size), num_workers=4, seed=7,
            concurrent_failures=2, failure_at=base.runtime * 0.5,
            replace_failures=False,
        )
        increase = (failed.runtime - base.runtime) / base.runtime
        increases[size] = increase
        rows.append([f"{size:.0f}GB", base.runtime, failed.runtime, increase * 100])
    return rows, increases


def test_fig3_memory_pressure(benchmark):
    rows, increases = benchmark.pedantic(_run_memory_pressure, rounds=1, iterations=1)
    print(
        format_table(
            ["input size", "no-failure (s)", "2-of-4 revoked (s)", "increase (%)"],
            rows,
            title="Figure 3: runtime increase under memory pressure",
        )
    )
    # Monotone in working-set size, with a clear jump once the survivors'
    # memory no longer holds the working set (the paper's OOM regime; our
    # recompute-on-drop path is cheaper than a thrashing JVM, so the jump
    # is milder than the paper's several-hundred percent).
    assert increases[2.0] <= increases[4.0] <= increases[6.0]
    assert increases[6.0] > increases[2.0] + 0.30
    benchmark.extra_info["increase_pct"] = {str(k): v * 100 for k, v in increases.items()}
