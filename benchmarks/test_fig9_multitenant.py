"""Figure 9 variant: multi-tenant serving under FIFO vs fair scheduling.

The paper's interactive configuration keeps a long-lived session whose
cached tables many queries share (§5, Fig 9).  This variant puts that
session behind the job server and adds a second tenant: a closed-loop
analyst issues short TPC-H Q3 queries into an ``interactive`` pool while a
PageRank batch program streams oversubscribed iteration jobs through a
``batch`` pool on the same ten workers.

Measured grid: {fifo, fair} x {no revocation, one mid-stream revocation}.
Under FIFO an arriving query waits behind the in-flight batch stage; fair
sharing gives the interactive pool's tasks every freed slot, so its p95
simulated response collapses — the assertion pins it at >= 3x better.
"""

from benchmarks.conftest import SEED
from repro.analysis.tables import format_table
from repro.server.scenario import run_multitenant

NUM_WORKERS = 10
QUERIES = 16


def _run_grid():
    results = {}
    for policy in ("fifo", "fair"):
        for revoke in (False, True):
            report = run_multitenant(
                policy=policy, num_workers=NUM_WORKERS, seed=SEED,
                queries=QUERIES, revoke=revoke,
            )
            results[(policy, revoke)] = report
    return results


def test_fig9_multitenant_fair_vs_fifo(benchmark):
    results = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    rows = []
    for (policy, revoke), report in results.items():
        pool = report["pools"]["interactive"]
        rows.append([
            policy,
            "1 worker" if revoke else "none",
            pool["p50_response"],
            pool["p95_response"],
            report["pools"]["batch"]["p50_response"],
        ])
    print(format_table(
        ["policy", "revocation", "interactive p50 (s)", "interactive p95 (s)",
         "batch response (s)"],
        rows, title="Figure 9 variant: multi-tenant TPC-H Q3 + PageRank",
    ))

    for (policy, revoke), report in results.items():
        assert report["failed"] == 0, (policy, revoke)
        assert report["rejected"] == 0, (policy, revoke)
        # The analyst's queries all completed alongside the batch job.
        assert report["pools"]["interactive"]["completed"] == QUERIES
        assert report["pools"]["batch"]["completed"] == 1
        assert report["revocations"] == (1 if revoke else 0)

    # The headline claim: fair sharing keeps interactive latency low while a
    # batch job streams through; FIFO makes queries wait out batch stages.
    fifo_p95 = results[("fifo", False)]["pools"]["interactive"]["p95_response"]
    fair_p95 = results[("fair", False)]["pools"]["interactive"]["p95_response"]
    assert fifo_p95 >= 3.0 * fair_p95, (
        f"fair p95 {fair_p95:.2f}s should be >=3x below fifo p95 {fifo_p95:.2f}s"
    )
    # Batch throughput is not sacrificed for it: within 10% either way.
    fifo_batch = results[("fifo", False)]["pools"]["batch"]["p50_response"]
    fair_batch = results[("fair", False)]["pools"]["batch"]["p50_response"]
    assert abs(fair_batch - fifo_batch) <= 0.10 * fifo_batch

    # Revocation slows everyone down but never breaks the ordering.
    assert (results[("fair", True)]["pools"]["interactive"]["p95_response"]
            <= results[("fifo", True)]["pools"]["interactive"]["p95_response"])

    benchmark.extra_info["p95"] = {
        f"{policy}{'_revoke' if revoke else ''}":
            report["pools"]["interactive"]["p95_response"]
        for (policy, revoke), report in results.items()
    }
