"""Figure 11: cost savings and bidding.

11a — unit cost of running the canonical BIDI job: Flint lands near 10% of
      on-demand, roughly half of SpotFleet and a third of EMR-on-spot.
11b — expected cost as a function of the bid: flat from ~0.5x to ~2x the
      on-demand price (peaky markets), so bidding the on-demand price is
      optimal and bidding finesse buys nothing.
§4  — EBS checkpoint volumes cost ~2% of on-demand instance spend.
"""

import dataclasses

import numpy as np

from repro.analysis.longrun import (
    CanonicalConfig,
    CanonicalSimulator,
    fixed_market_selector,
    flint_batch_selector,
    on_demand_selector,
    spot_fleet_selector,
)
from repro.analysis.tables import format_table
from repro.baselines.emr import emr_total_cost
from repro.core.selection import InteractiveSelectionPolicy, market_correlation_fn, snapshot_markets
from repro.factory import standard_provider
from repro.simulation.clock import HOUR
from repro.storage.ebs import EBSCostModel

RUNS = 30
SPACING = 8 * HOUR
JOB = CanonicalConfig(job_length=2 * HOUR)


def _interactive_markets(provider):
    # A data-parallel cluster wants homogeneous capacity: diversify across
    # r3.large pools only, capped at five markets.
    policy = InteractiveSelectionPolicy(T_estimate=2 * HOUR, max_markets=5)
    snaps = [
        s for s in snapshot_markets(provider, 0.0) if "r3.large" in s.market_id
    ]
    corr = market_correlation_fn(provider, 0.0)
    return policy.select(snaps, corr).market_ids


def _fig11a():
    provider = standard_provider(seed=5)
    results = {}
    # Flint batch: expected-cost selection + checkpointing.
    sim = CanonicalSimulator(provider, JOB, flint_batch_selector())
    results["Flint-Batch"] = [o.cost for o in sim.sweep(RUNS, SPACING)]
    # Flint interactive: diversified markets + checkpointing.
    markets = _interactive_markets(provider)
    sim = CanonicalSimulator(provider, JOB, flint_batch_selector())
    results["Flint-Interactive"] = [
        o.cost for o in sim.sweep(RUNS, SPACING, interactive_markets=markets)
    ]
    # SpotFleet: cheapest-current-price selection, unmodified Spark.
    fleet_cfg = dataclasses.replace(JOB, checkpointing=False)
    sim = CanonicalSimulator(provider, fleet_cfg, spot_fleet_selector())
    fleet = sim.sweep(RUNS, SPACING)
    results["Spot-Fleet"] = [o.cost for o in fleet]
    # EMR on spot: SpotFleet behaviour + 25% of on-demand management fee.
    results["EMR-Spot"] = [
        emr_total_cost(o.cost, 0.175, JOB.num_workers, o.runtime) for o in fleet
    ]
    # On-demand reference.
    sim = CanonicalSimulator(provider, dataclasses.replace(JOB, checkpointing=False),
                             on_demand_selector())
    results["On-demand"] = [o.cost for o in sim.sweep(RUNS, SPACING)]
    return {k: float(np.mean(v)) for k, v in results.items()}


def test_fig11a_unit_cost(benchmark):
    costs = benchmark.pedantic(_fig11a, rounds=1, iterations=1)
    od = costs["On-demand"]
    rows = [[name, cost, cost / od] for name, cost in costs.items()]
    print(format_table(["system", "mean cost ($)", "unit cost (x on-demand)"],
                       rows, title="Figure 11a: cost of the canonical BIDI job"))
    # Paper's ordering: Flint ~0.1x on-demand, < SpotFleet < EMR < on-demand.
    assert costs["Flint-Batch"] < 0.2 * od
    assert costs["Flint-Interactive"] < 0.35 * od
    assert costs["Flint-Batch"] < 0.7 * costs["Spot-Fleet"]
    assert costs["Spot-Fleet"] < costs["EMR-Spot"] < od
    benchmark.extra_info["unit_costs"] = {k: v / od for k, v in costs.items()}


BID_MULTIPLIERS = [0.25, 0.5, 1.0, 2.0, 4.0]
FIG11B_MARKETS = [
    "us-east-1a/m1.xlarge",
    "us-east-1a/m3.2xlarge",
    "us-east-1a/m2.2xlarge",
]


def _fig11b():
    provider = standard_provider(seed=5)
    table = {}
    for market_id in FIG11B_MARKETS:
        per_bid = {}
        for mult in BID_MULTIPLIERS:
            cfg = dataclasses.replace(JOB, bid_multiplier=mult)
            sim = CanonicalSimulator(provider, cfg, fixed_market_selector(market_id))
            outs = sim.sweep(15, SPACING)
            per_bid[mult] = float(np.mean([o.cost for o in outs]))
        floor = min(per_bid.values())
        table[market_id] = {m: c / floor for m, c in per_bid.items()}
    return table


def test_fig11b_cost_vs_bid(benchmark):
    table = benchmark.pedantic(_fig11b, rounds=1, iterations=1)
    rows = [
        [market] + [table[market][m] for m in BID_MULTIPLIERS]
        for market in FIG11B_MARKETS
    ]
    print(format_table(["market"] + [f"bid {m}x" for m in BID_MULTIPLIERS], rows,
                       title="Figure 11b: normalised cost vs bid (1.0 = cheapest)"))
    for market, norm in table.items():
        # The wide flat region: 0.5x-2x the on-demand price are equivalent.
        assert norm[0.5] < 1.25
        assert norm[1.0] < 1.15
        assert norm[2.0] < 1.25
    benchmark.extra_info["normalised_cost"] = {
        market: {str(m): c for m, c in norm.items()} for market, norm in table.items()
    }


def _storage_cost():
    ebs = EBSCostModel()
    cluster_memory_gb = 10 * 15.0
    hourly_ebs = ebs.hourly_cost(ebs.provisioned_gb(cluster_memory_gb))
    hourly_od = 10 * 0.175
    # Average realised spot price for the catalog's cheapest honest market.
    provider = standard_provider(seed=5)
    market = provider.market("us-east-1d/r3.large")
    hourly_spot = market.mean_recent_price(0.0) * 10
    return hourly_ebs, hourly_od, hourly_spot


def test_sec4_ebs_storage_cost_share(benchmark):
    hourly_ebs, hourly_od, hourly_spot = benchmark.pedantic(
        _storage_cost, rounds=1, iterations=1
    )
    rows = [
        ["EBS checkpoint volumes", hourly_ebs],
        ["on-demand cluster", hourly_od],
        ["spot cluster (mean)", hourly_spot],
        ["EBS / on-demand", hourly_ebs / hourly_od],
        ["EBS / spot", hourly_ebs / hourly_spot],
    ]
    print(format_table(["item", "$/hour or ratio"], rows,
                       title="§4: checkpoint storage cost share"))
    # Paper: ~2% of on-demand, 10-20% of spot cost.
    assert 0.01 < hourly_ebs / hourly_od < 0.05
    assert 0.05 < hourly_ebs / hourly_spot < 0.40
