"""Ablations of Flint's design choices (beyond the paper's figures).

1. The shuffle refinement (checkpoint shuffle outputs every τ/m): disabling
   it must make concurrent-revocation recovery slower for shuffle-heavy
   PageRank — the design rationale of §3.1.1.
2. Diversification degree: spreading an interactive cluster over more
   uncorrelated markets must reduce runtime variance (Policy 2), with
   diminishing returns — the model behind §3.2.2's greedy stop rule.
3. Bidding: in peaky markets, stratified bids fail together (§3.2.2's
   argument against bid finesse).
"""

import numpy as np

from benchmarks.conftest import SEED, pagerank_factory
from repro.analysis.tables import format_table
from repro.core.bidding import StratifiedBidding, simultaneous_revocation_fraction
from repro.core.runtime_model import runtime_variance
from repro.factory import standard_provider
from repro.simulation.clock import DAY, HOUR


def test_ablation_shuffle_rule(benchmark):
    def run(enabled):
        from repro.analysis.experiments import build_engine_context
        from repro.core.ftmanager import FaultToleranceManager

        ctx = build_engine_context(num_workers=10, seed=SEED)
        manager = FaultToleranceManager(
            ctx, lambda: 1 * HOUR, shuffle_rule_enabled=enabled
        )
        manager.start()
        workload = pagerank_factory(ctx)
        workload.load()
        base_t = ctx.now
        workload.run()
        baseline = ctx.now - base_t

        # Fresh universe with a mid-run mass revocation.
        ctx2 = build_engine_context(num_workers=10, seed=SEED)
        manager2 = FaultToleranceManager(
            ctx2, lambda: 1 * HOUR, shuffle_rule_enabled=enabled
        )
        manager2.start()
        workload2 = pagerank_factory(ctx2)
        workload2.load()

        def inject(event):
            victims = ctx2.cluster.live_workers()[:5]
            ctx2.cluster.force_revoke(victims)
            ctx2.cluster.launch("od/r3.large", 0.175, count=5, delay=120.0)

        ctx2.env.schedule_in(baseline * 0.6, "chaos", callback=inject)
        t0 = ctx2.now
        workload2.run()
        return ctx2.now - t0

    def run_both():
        return {"with": run(True), "without": run(False)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(format_table(
        ["configuration", "runtime with 5 revocations (s)"],
        [["shuffle rule on", results["with"]], ["shuffle rule off", results["without"]]],
        title="Ablation: the tau/m shuffle checkpoint refinement (PageRank)",
    ))
    assert results["with"] <= results["without"] * 1.05
    benchmark.extra_info["runtimes"] = results


def test_ablation_diversification_degree(benchmark):
    def sweep():
        T, delta, mttf = 2 * HOUR, 60.0, 20 * HOUR
        return {
            m: runtime_variance(T, delta, [mttf] * m, tau=600.0) for m in (1, 2, 4, 8, 16)
        }

    variances = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[m, v, np.sqrt(v)] for m, v in variances.items()]
    print(format_table(
        ["markets", "runtime variance (s^2)", "std (s)"],
        rows, title="Ablation: variance vs diversification degree",
    ))
    ms = sorted(variances)
    values = [variances[m] for m in ms]
    assert values == sorted(values, reverse=True)
    # Diminishing returns: the 8->16 step saves less than the 1->2 step.
    assert (variances[8] - variances[16]) < (variances[1] - variances[2])
    benchmark.extra_info["variances"] = {str(k): v for k, v in variances.items()}


def test_ablation_stratified_bidding(benchmark):
    def measure():
        provider = standard_provider(seed=31)
        fractions = []
        for market in provider.spot_markets()[:6]:
            bids = StratifiedBidding([0.8, 1.0, 1.25, 1.5]).bids_for_fleet(market, 8)
            fractions.append(
                simultaneous_revocation_fraction(market, bids, 0.0, 60 * DAY)
            )
        return fractions

    fractions = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(format_table(
        ["market #", "fleet fraction revoked at first event"],
        [[i, f] for i, f in enumerate(fractions)],
        title="Ablation: stratified bids under peaky spikes",
    ))
    # The paper's claim: price spikes are large, so the whole stratum dies
    # together in (nearly) every market.
    assert np.mean(fractions) > 0.9
    benchmark.extra_info["fractions"] = fractions
