"""Cluster membership and revocation event plumbing.

The cluster turns market-level facts ("this instance dies at t=5021s") into
simulator events and listener callbacks.  Replacement *policy* — which market
to rebuy from — is injected by the node manager in :mod:`repro.core`; the
cluster only provides launch/revoke mechanics and keeps the books.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.cluster.environment import Environment
from repro.cluster.worker import Worker
from repro.market.provider import REVOCATION_WARNING
from repro.obs import SpanEvent
from repro.simulation.events import Event
from repro.traces.ec2 import INSTANCE_TYPES, InstanceType

#: Membership hooks mirrored onto the event bus, and whether each marks the
#: *end* of a worker's lifetime (rendered as a span from launch to death)
#: or a point-in-time membership change (rendered as an instant).
_WORKER_EVENT_STATUS = {
    "on_worker_joined": ("joined", False),
    "on_revocation_warning": ("warned", False),
    "on_worker_revoked": ("revoked", True),
    "on_worker_terminated": ("terminated", True),
}


class ClusterListener:
    """Callbacks a component can register for membership changes.

    Subclass and override the hooks you care about; all default to no-ops.
    """

    def on_worker_joined(self, worker: Worker, t: float) -> None:  # pragma: no cover
        """A worker became usable at time ``t``."""

    def on_revocation_warning(self, worker: Worker, t: float) -> None:  # pragma: no cover
        """The provider announced ``worker`` will die shortly (EC2: 120s)."""

    def on_worker_revoked(self, worker: Worker, t: float) -> None:  # pragma: no cover
        """``worker`` was killed; its volatile state is already gone."""

    def on_worker_terminated(self, worker: Worker, t: float) -> None:  # pragma: no cover
        """``worker`` was shut down deliberately (teardown, scale-down)."""


class Cluster:
    """A dynamic set of workers backed by transient instances."""

    def __init__(self, env: Environment, warning_period: float = REVOCATION_WARNING):
        self.env = env
        self.warning_period = float(warning_period)
        self.workers: Dict[str, Worker] = {}
        self.listeners: List[ClusterListener] = []
        self._counter = itertools.count()
        self._pending_events: Dict[str, List[Event]] = {}
        self.revocation_log: List[tuple] = []  # (time, worker_id, market_id)
        #: Observability hook (attribute-wired by the engine context);
        #: None keeps membership notification free of tracing branches.
        self.obs = None

    # -- membership queries -------------------------------------------------
    def live_workers(self) -> List[Worker]:
        """Workers currently alive, in a stable (join) order."""
        return [w for w in self.workers.values() if w.alive]

    @property
    def size(self) -> int:
        return len(self.live_workers())

    def total_storage_memory(self) -> int:
        """Aggregate RDD-cache capacity across live workers (bytes)."""
        return sum(w.storage_memory_bytes for w in self.live_workers())

    def markets_in_use(self) -> Dict[str, int]:
        """Live worker count per market id."""
        counts: Dict[str, int] = {}
        for w in self.live_workers():
            counts[w.instance.market_id] = counts.get(w.instance.market_id, 0) + 1
        return counts

    def add_listener(self, listener: ClusterListener) -> None:
        self.listeners.append(listener)

    def remove_listener(self, listener: ClusterListener) -> None:
        self.listeners.remove(listener)

    # -- launch / revoke ------------------------------------------------------
    def launch(
        self,
        market_id: str,
        bid: float,
        count: int = 1,
        delay: float = 0.0,
        instance_type: Optional[InstanceType] = None,
    ) -> List[Worker]:
        """Acquire ``count`` instances and join them as workers.

        Workers join after ``delay`` seconds (0 for the initial fleet, the
        provider's replacement delay for rebuys).  Revocation warning and
        kill events are scheduled immediately from the instance's
        predetermined revocation time.
        """
        t = self.env.now
        itype = instance_type or INSTANCE_TYPES["r3.large"]
        instances = self.env.provider.acquire(
            market_id, bid, t, count=count, instance_type_name=itype.name
        )
        workers = []
        for instance in instances:
            worker = Worker(f"w-{next(self._counter):04d}", instance, itype)
            self.workers[worker.worker_id] = worker
            workers.append(worker)
            if delay > 0:
                worker.alive = False  # not usable until it boots
                self.env.schedule_in(
                    delay, "worker_boot", worker, callback=lambda ev, w=worker: self._boot(w, ev.time)
                )
            else:
                self._notify("on_worker_joined", worker, t)
            self._schedule_revocation(worker)
        return workers

    def _boot(self, worker: Worker, t: float) -> None:
        # A replacement can be revoked before it even boots (its market
        # spiked during the boot window); don't resurrect it in that case.
        if worker.instance.is_running:
            worker.alive = True
            self._notify("on_worker_joined", worker, t)

    def _schedule_revocation(self, worker: Worker) -> None:
        revocation_time = worker.instance.revocation_time
        if revocation_time is None:
            return
        events = []
        warn_at = worker.instance.warning_time(self.warning_period)
        if warn_at is not None and warn_at < revocation_time:
            events.append(
                self.env.schedule_at(
                    warn_at,
                    "revocation_warning",
                    worker,
                    priority=-1,
                    callback=lambda ev, w=worker: self._warn(w, ev.time),
                )
            )
        events.append(
            self.env.schedule_at(
                revocation_time,
                "revocation",
                worker,
                priority=-1,
                callback=lambda ev, w=worker: self._revoke(w, ev.time),
            )
        )
        self._pending_events[worker.worker_id] = events

    def _warn(self, worker: Worker, t: float) -> None:
        if worker.instance.is_running:
            self._notify("on_revocation_warning", worker, t)

    def _revoke(self, worker: Worker, t: float) -> None:
        if not worker.instance.is_running:
            return
        self.env.provider.revoke(worker.instance, t)
        worker.kill()
        self.revocation_log.append((t, worker.worker_id, worker.instance.market_id))
        self._notify("on_worker_revoked", worker, t)

    def terminate_worker(self, worker: Worker, t: Optional[float] = None) -> None:
        """User-initiated shutdown (e.g. cluster teardown)."""
        end = self.env.now if t is None else t
        if worker.instance.is_running:
            self.env.provider.terminate(worker.instance, end)
        worker.kill()
        for event in self._pending_events.pop(worker.worker_id, []):
            self.env.events.cancel(event)
        self._notify("on_worker_terminated", worker, end)

    def terminate_all(self) -> None:
        """Tear the cluster down and stop all billing."""
        for worker in list(self.workers.values()):
            if worker.instance.is_running:
                self.terminate_worker(worker)

    def force_revoke(self, workers: List[Worker], t: Optional[float] = None) -> None:
        """Revoke specific workers immediately (failure-injection hook)."""
        end = self.env.now if t is None else t
        for worker in workers:
            for event in self._pending_events.pop(worker.worker_id, []):
                self.env.events.cancel(event)
            self._revoke(worker, end)

    def announce_warning(self, worker: Worker, t: Optional[float] = None) -> None:
        """Deliver a revocation warning outside the market machinery.

        The fault-injection harness uses this to model delayed, early, or
        false-alarm warnings: the warning and the (possible) kill are
        scheduled independently, instead of both deriving from a market
        trace's predetermined revocation instant.
        """
        when = self.env.now if t is None else t
        if worker.instance.is_running:
            self._notify("on_revocation_warning", worker, when)

    def _notify(self, hook: str, worker: Worker, t: float) -> None:
        obs = self.obs
        if obs is not None and obs.enabled:
            status, is_lifetime_end = _WORKER_EVENT_STATUS[hook]
            obs.bus.emit(SpanEvent(
                kind="worker",
                name=worker.worker_id,
                start=worker.instance.launch_time if is_lifetime_end else t,
                end=t if is_lifetime_end else None,
                worker=worker.worker_id,
                status="instant" if not is_lifetime_end else status,
                attrs={"market": worker.instance.market_id, "change": status},
            ))
        for listener in list(self.listeners):
            getattr(listener, hook)(worker, t)
