"""The shared simulation environment.

Bundles the clock, event queue, RNG, cloud provider, and durable file system
that every subsystem of a single experiment shares.  One ``Environment`` is
one deterministic universe: two environments built with the same seed and the
same market traces replay identically.
"""

from __future__ import annotations

from typing import Optional

from repro.market.provider import CloudProvider
from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.rng import SeededRNG
from repro.storage.dfs import DistributedFileSystem, DFSConfig


class Environment:
    """Shared simulation state for one experiment."""

    def __init__(
        self,
        provider: CloudProvider,
        seed: int = 0,
        dfs: Optional[DistributedFileSystem] = None,
        dfs_config: Optional[DFSConfig] = None,
        start_time: float = 0.0,
    ):
        self.provider = provider
        self.clock = SimClock(start_time)
        self.events = EventQueue()
        self.rng = SeededRNG(seed, "environment")
        self.dfs = dfs or DistributedFileSystem(dfs_config)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def schedule_at(self, t: float, kind: str, payload=None, priority: int = 0, callback=None) -> Event:
        """Schedule an event at absolute time ``t``."""
        return self.events.schedule(max(t, self.now), kind, payload, priority, callback)

    def schedule_in(self, dt: float, kind: str, payload=None, priority: int = 0, callback=None) -> Event:
        """Schedule an event ``dt`` seconds from now."""
        return self.schedule_at(self.now + dt, kind, payload, priority, callback)

    def step(self) -> Optional[Event]:
        """Pop the next event, advance the clock to it, run its callback.

        Returns the event handled, or None when the queue is empty.
        """
        if not self.events:
            return None
        event = self.events.pop()
        self.clock.advance_to(event.time)
        if event.callback is not None:
            event.callback(event)
        return event

    def run_until(self, t: float) -> int:
        """Process all events up to time ``t``; returns how many fired."""
        count = 0
        while True:
            nxt = self.events.peek()
            if nxt is None or nxt.time > t:
                break
            self.step()
            count += 1
        self.clock.advance_to(t)
        return count
