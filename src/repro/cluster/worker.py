"""Worker nodes.

A worker is the compute view of a rented instance: CPU slots for tasks, a
memory budget for the RDD cache, and a local SSD for shuffle output and cache
spill.  Spark reserves most of the JVM heap for execution; following the
paper's §5.5 accounting we give the RDD store 40% of instance memory by
default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.market.instance import Instance
from repro.storage.local_disk import LocalDisk
from repro.traces.ec2 import INSTANCE_TYPES, InstanceType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.block_manager import BlockManager

#: Fraction of instance memory Spark devotes to RDD storage (§5.5: "Spark
#: only uses 40% of RAM for storing the RDD data").
DEFAULT_STORAGE_FRACTION = 0.4

GB = 10**9


class Worker:
    """One live (or formerly live) server in the cluster."""

    def __init__(
        self,
        worker_id: str,
        instance: Instance,
        instance_type: Optional[InstanceType] = None,
        storage_fraction: float = DEFAULT_STORAGE_FRACTION,
    ):
        self.worker_id = worker_id
        self.instance = instance
        self.instance_type = instance_type or INSTANCE_TYPES[instance.instance_type_name]
        if not 0 < storage_fraction <= 1:
            raise ValueError("storage_fraction must be in (0, 1]")
        self.storage_fraction = storage_fraction
        self.alive = True
        self.local_disk = LocalDisk(capacity_bytes=int(self.instance_type.local_disk_gb * GB))
        # The execution engine attaches a BlockManager when the worker joins.
        self.block_manager: Optional["BlockManager"] = None
        #: Observability hook (attribute-wired by the scheduler on worker
        #: registration); None keeps the kill path free of tracing branches.
        self.obs = None
        #: Called (with this worker) after :meth:`kill` drops local state, so
        #: driver-side trackers stay truthful on *any* death path — cluster
        #: revocation, deliberate termination, or a direct kill in tests.
        self._death_listeners: List[Callable[["Worker"], None]] = []

    def add_death_listener(self, listener: Callable[["Worker"], None]) -> None:
        self._death_listeners.append(listener)

    @property
    def slots(self) -> int:
        """Concurrent task slots (one per VCPU)."""
        return self.instance_type.vcpus

    @property
    def memory_bytes(self) -> int:
        """Total instance memory in bytes."""
        return int(self.instance_type.memory_gb * GB)

    @property
    def storage_memory_bytes(self) -> int:
        """Memory budget for the RDD block cache."""
        return int(self.memory_bytes * self.storage_fraction)

    def kill(self) -> None:
        """Revocation: drop all volatile state (memory cache + local disk)."""
        self.alive = False
        self.local_disk.clear()
        if self.block_manager is not None:
            self.block_manager.clear()
        obs = self.obs
        if obs is not None and obs.enabled:
            from repro.obs import SpanEvent

            obs.bus.emit(SpanEvent(
                kind="worker",
                name=self.worker_id,
                start=obs.now(),
                worker=self.worker_id,
                status="killed",
                attrs={"market": self.instance.market_id},
            ))
        for listener in list(self._death_listeners):
            listener(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.alive else "dead"
        return f"Worker({self.worker_id}, {self.instance_type.name}, {status})"
