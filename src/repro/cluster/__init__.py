"""Simulated cluster of transient servers.

A :class:`~repro.cluster.cluster.Cluster` owns a set of
:class:`~repro.cluster.worker.Worker` nodes, each backed by a market
:class:`~repro.market.instance.Instance`.  When an instance is acquired the
cluster schedules its (deterministic) revocation warning and kill events on
the shared event queue; listeners — the execution engine and Flint's node
manager — react to them.  The cluster provides *mechanism* only: which market
to buy replacements from is a policy question answered in :mod:`repro.core`.
"""

from repro.cluster.environment import Environment
from repro.cluster.worker import Worker
from repro.cluster.cluster import Cluster, ClusterListener

__all__ = ["Environment", "Worker", "Cluster", "ClusterListener"]
