"""A Spark-Streaming-style micro-batch workload (related-work extension).

The paper notes (§6) that Spark Streaming's periodic RDD checkpointing does
not account for recomputation overhead or cluster volatility, and that its
workloads "may also benefit" from Flint's policies.  This workload lets us
test that: a discretised stream of event batches folds into a running state
RDD via ``updateStateByKey``-style cogroups.  The state's lineage grows with
every batch, so without checkpoint truncation a revocation late in the
stream forces recomputation across the entire history — the exact failure
mode Flint's τ-periodic frontier checkpoints bound.

Since the streaming subsystem landed this workload is a thin veneer over
``repro.streaming``: an :class:`~repro.streaming.sources.EventSource` feeds
a ``reduce_by_key`` → ``merge_state_by_key`` DStream chain under
``fixed-delay`` pacing.  The lowering is *bit-identical* to the hand-rolled
loop this file used to contain — same RDD graph, same op order, same
persist/unpersist points, same simulated time and billing — which the
golden-equivalence test in ``tests/streaming/test_legacy_port.py`` holds
against an embedded copy of the legacy loop.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.context import FlintContext
from repro.engine.rdd import RDD
from repro.simulation.rng import SeededRNG
from repro.streaming.context import StreamingContext
from repro.streaming.sources import EventSource

GB = 10**9


def _add(a, b):
    return a + b


class StreamingWorkload:
    """Micro-batch aggregation with growing lineage.

    Args:
        batch_records: real events per micro-batch.
        batch_gb: virtual volume per micro-batch.
        num_keys: cardinality of the aggregation key space.
        batch_interval: simulated arrival spacing between batches; the
            engine idles between batches like a real streaming job.
    """

    def __init__(
        self,
        ctx: FlintContext,
        batch_records: int = 2_000,
        batch_gb: float = 0.5,
        num_keys: int = 100,
        partitions: Optional[int] = None,
        batch_interval: float = 60.0,
        seed: int = 47,
    ):
        self.ctx = ctx
        self.partitions = partitions or max(8, ctx.default_parallelism)
        self.batch_records = batch_records
        self.num_keys = num_keys
        self.batch_interval = batch_interval
        self.seed = seed
        self.record_size = max(1, int(batch_gb * GB / batch_records))
        # The DStream lowering of the legacy loop: seeded events, a per-batch
        # shuffle aggregation, and an adopt-then-merge state fold.
        self.ssc = StreamingContext(ctx, batch_interval, pacing="fixed-delay")
        source = self.ssc.source(
            EventSource(
                batch_records,
                self.partitions,
                num_keys,
                seed,
                record_size=self.record_size,
                label="batch",
                name="batch",
            )
        )
        counts = source.reduce_by_key(_add, self.partitions)
        self._state_stream = counts.merge_state_by_key(
            _add,
            zero=0,
            num_partitions=self.partitions,
            record_size=max(1, self.record_size // 4),
            name="state",
        )
        self._state_stream.count_per_batch("total")

    @property
    def state(self) -> Optional[RDD]:
        """The current state generation (None before the first batch)."""
        return self._state_stream.latest_rdd

    @property
    def batches_processed(self) -> int:
        return len(self.ssc.batches)

    def process_batch(self) -> int:
        """Ingest one micro-batch and fold it into the running state."""
        info = self.ssc.run_batch()
        return info.results["total"]

    def run(self, num_batches: int = 10) -> Dict[int, int]:
        """Process a stream of batches with arrival gaps; returns final state."""
        self.ssc.run(num_batches)
        return dict(self.state.collect())

    def expected_state(self, num_batches: int) -> Dict[int, int]:
        """Reference result computed without the engine."""
        counts: Dict[int, int] = {}
        per_part = self.batch_records // self.partitions
        for b in range(num_batches):
            for p in range(self.partitions):
                rng = SeededRNG(self.seed, f"batch-{b}-{p}")
                for k in rng.integers(0, self.num_keys, size=per_part):
                    counts[int(k)] = counts.get(int(k), 0) + 1
        return counts
