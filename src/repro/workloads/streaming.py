"""A Spark-Streaming-style micro-batch workload (related-work extension).

The paper notes (§6) that Spark Streaming's periodic RDD checkpointing does
not account for recomputation overhead or cluster volatility, and that its
workloads "may also benefit" from Flint's policies.  This workload lets us
test that: a discretised stream of event batches folds into a running state
RDD via ``updateStateByKey``-style cogroups.  The state's lineage grows with
every batch, so without checkpoint truncation a revocation late in the
stream forces recomputation across the entire history — the exact failure
mode Flint's τ-periodic frontier checkpoints bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.context import FlintContext
from repro.engine.rdd import RDD
from repro.simulation.rng import SeededRNG

GB = 10**9


class StreamingWorkload:
    """Micro-batch aggregation with growing lineage.

    Args:
        batch_records: real events per micro-batch.
        batch_gb: virtual volume per micro-batch.
        num_keys: cardinality of the aggregation key space.
        batch_interval: simulated arrival spacing between batches; the
            engine idles between batches like a real streaming job.
    """

    def __init__(
        self,
        ctx: FlintContext,
        batch_records: int = 2_000,
        batch_gb: float = 0.5,
        num_keys: int = 100,
        partitions: Optional[int] = None,
        batch_interval: float = 60.0,
        seed: int = 47,
    ):
        self.ctx = ctx
        self.partitions = partitions or max(8, ctx.default_parallelism)
        self.batch_records = batch_records
        self.num_keys = num_keys
        self.batch_interval = batch_interval
        self.seed = seed
        self.record_size = max(1, int(batch_gb * GB / batch_records))
        self.state: Optional[RDD] = None
        self.batches_processed = 0

    def _batch_rdd(self, batch_index: int) -> RDD:
        per_part = self.batch_records // self.partitions
        seed = self.seed
        keys = self.num_keys

        def generate(p: int) -> List[Tuple[int, int]]:
            rng = SeededRNG(seed, f"batch-{batch_index}-{p}")
            return [
                (int(k), 1)
                for k in rng.integers(0, keys, size=per_part)
            ]

        return self.ctx.generate(
            generate, self.partitions, record_size=self.record_size,
            name=f"batch-{batch_index}",
        )

    def process_batch(self) -> int:
        """Ingest one micro-batch and fold it into the running state."""
        batch = self._batch_rdd(self.batches_processed)
        counts = batch.reduce_by_key(lambda a, b: a + b, self.partitions)
        if self.state is None:
            new_state = counts
        else:

            def merge(kv):
                _key, (olds, news) = kv
                total = (olds[0] if olds else 0) + (news[0] if news else 0)
                return total

            new_state = (
                self.state.cogroup(counts, self.partitions)
                .map(lambda kv: (kv[0], merge(kv)))
                .set_record_size(max(1, self.record_size // 4))
            )
        old_state = self.state
        self.state = new_state.persist().set_name(
            f"state-{self.batches_processed}"
        )
        total = self.state.count()
        if old_state is not None and old_state.persisted:
            old_state.unpersist()
        self.batches_processed += 1
        return total

    def run(self, num_batches: int = 10) -> Dict[int, int]:
        """Process a stream of batches with arrival gaps; returns final state."""
        for _ in range(num_batches):
            self.process_batch()
            self.ctx.env.run_until(self.ctx.now + self.batch_interval)
        return dict(self.state.collect())

    def expected_state(self, num_batches: int) -> Dict[int, int]:
        """Reference result computed without the engine."""
        counts: Dict[int, int] = {}
        per_part = self.batch_records // self.partitions
        for b in range(num_batches):
            for p in range(self.partitions):
                rng = SeededRNG(self.seed, f"batch-{b}-{p}")
                for k in rng.integers(0, self.num_keys, size=per_part):
                    counts[int(k)] = counts.get(int(k), 0) + 1
        return counts
