"""Alternating Least Squares (§5.1): the shuffle-intensive workload.

Spark mllib's MovieLensALS over a 10GB ratings dataset.  Each half-iteration
joins the ratings against the opposite side's factors and reduces the
per-rating contributions back by key — two joins and two wide reductions per
iteration, with heavier per-record math than KMeans.  ALS has the largest
collective RDD set of the batch workloads, hence the highest checkpointing
tax (Figure 6a) and the most network-sensitive behaviour (§5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.context import FlintContext
from repro.engine.rdd import RDD
from repro.workloads.datagen import generate_ratings_partition, initial_factors

GB = 10**9


def _solve_factor(
    contributions: List[Tuple[Tuple[float, ...], float]], rank: int, reg: float = 0.1
) -> Tuple[float, ...]:
    """A cheap regularised least-squares surrogate: rating-weighted average
    of the opposite factors.  (The real normal-equations solve does not
    change lineage shape, only constants, which the compute multiplier
    models.)"""
    if not contributions:
        return tuple(0.0 for _ in range(rank))
    acc = [0.0] * rank
    weight = 0.0
    for factor, rating in contributions:
        # zip-listcomp over indexed updates: same accumulation order,
        # markedly less index arithmetic on the factor-solve hot path.
        acc = [a + f * rating for a, f in zip(acc, factor)]
        weight += abs(rating) + reg
    return tuple(a / weight for a in acc)


class ALSWorkload:
    """Matrix factorisation by alternating least squares.

    Args:
        data_gb: virtual dataset size (paper: 10GB MovieLens-scale).
        num_ratings: real rating count.
        rank: latent factor dimensionality.
        solve_cost: compute multiplier for the factor-update stages (ALS's
            per-record work dominates KMeans's, per §5.1).
    """

    def __init__(
        self,
        ctx: FlintContext,
        data_gb: float = 10.0,
        num_ratings: int = 24_000,
        num_users: int = 1_500,
        num_items: int = 600,
        rank: int = 8,
        partitions: Optional[int] = None,
        iterations: int = 6,
        solve_cost: float = 4.0,
        source_cost: float = 5.0,
        seed: int = 31,
    ):
        self.ctx = ctx
        self.rank = rank
        self.iterations = iterations
        self.partitions = partitions or max(8, ctx.default_parallelism)
        self.num_ratings = num_ratings
        self.num_users = num_users
        self.num_items = num_items
        self.solve_cost = solve_cost
        self.source_cost = source_cost
        self.seed = seed
        self.rating_record_size = max(1, int(data_gb * GB / num_ratings))
        self.ratings: Optional[RDD] = None

    def load(self) -> RDD:
        """Build and cache the ratings RDD of ``(user, item, rating)``."""
        per_part = self.num_ratings // self.partitions
        self.ratings = self.ctx.generate(
            lambda p: generate_ratings_partition(
                self.seed, p, per_part, self.num_users, self.num_items
            ),
            self.partitions,
            record_size=self.rating_record_size,
            compute_multiplier=self.source_cost,
            name="ratings",
        ).persist()
        self.ratings.count()
        return self.ratings

    def run(self, iterations: Optional[int] = None) -> Dict[int, Tuple[float, ...]]:
        """Run ALS; returns the final user factors."""
        if self.ratings is None:
            self.load()
        ratings = self.ratings
        iters = iterations or self.iterations
        user_factors = self.ctx.parallelize(
            initial_factors(self.seed, "users", self.num_users, self.rank),
            self.partitions,
            record_size=self.rating_record_size // 4,
        ).set_name("user-factors-0")
        item_factors = self.ctx.parallelize(
            initial_factors(self.seed, "items", self.num_items, self.rank),
            self.partitions,
            record_size=self.rating_record_size // 4,
        ).set_name("item-factors-0")

        for i in range(iters):
            old_users, old_items = user_factors, item_factors
            user_factors = self._half_step(
                ratings.map(lambda r: (r[1], (r[0], r[2]))),  # keyed by item
                item_factors,
                f"user-factors-{i + 1}",
            )
            item_factors = self._half_step(
                ratings.map(lambda r: (r[0], (r[1], r[2]))),  # keyed by user
                user_factors,
                f"item-factors-{i + 1}",
            )
            # Superseded factor generations are dead weight in the cache.
            for stale in (old_users, old_items):
                if stale.persisted:
                    stale.unpersist()
        return dict(user_factors.collect())

    def _half_step(self, keyed_ratings: RDD, opposite_factors: RDD, name: str) -> RDD:
        """One ALS half-iteration: join ratings with the fixed side's factors,
        redistribute contributions to the side being solved, and solve."""
        rank = self.rank

        def contribs(kv):
            _key, (rating_pairs, factor_values) = kv
            if not factor_values:
                return []
            factor = factor_values[0]
            return [(target, (factor, rating)) for target, rating in rating_pairs]

        joined = keyed_ratings.cogroup(opposite_factors, self.partitions).flat_map(
            contribs, compute_multiplier=self.solve_cost
        )
        solved = (
            joined.group_by_key(self.partitions)
            .map_values(lambda cs: _solve_factor(cs, rank))
            .persist()
            .set_name(name)
        )
        solved.count()
        return solved
