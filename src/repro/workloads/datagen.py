"""Deterministic synthetic datasets for the workloads.

Each generator produces one *partition* of data as a pure function of
``(seed, partition)``, which is what lets a :class:`GeneratedRDD` stand in
for stable storage: recomputing a lost source partition regenerates exactly
the same records.

The graph generator approximates the LiveJournal social graph's skew
(power-law out-degrees); the point generator produces well-separated
Gaussian clusters for KMeans; the ratings generator produces a sparse
user-item matrix with popularity skew for ALS.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.simulation.rng import SeededRNG


def generate_graph_partition(
    seed: int,
    partition: int,
    edges_per_partition: int,
    num_vertices: int,
    skew: float = 1.1,
) -> List[Tuple[int, int]]:
    """Edges ``(src, dst)`` with Zipf-skewed endpoints (LiveJournal-like).

    Sources are uniform; destinations follow a bounded Zipf so a few hub
    vertices accumulate most in-links, giving PageRank its characteristic
    imbalanced shuffle.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = SeededRNG(seed, f"graph-{partition}")
    srcs = rng.integers(0, num_vertices, size=edges_per_partition)
    # Bounded Zipf via inverse-CDF on a truncated power law.
    u = rng.random(edges_per_partition)
    ranks = np.floor(num_vertices ** u) if skew <= 1.0 else None
    if ranks is None:
        # standard truncated zipf: P(k) ~ k^-skew for k in [1, V]
        cdf_max = (num_vertices ** (1.0 - skew) - 1.0) / (1.0 - skew)
        ranks = np.power(u * cdf_max * (1.0 - skew) + 1.0, 1.0 / (1.0 - skew))
    dsts = np.clip(ranks.astype(np.int64) - 1, 0, num_vertices - 1)
    edges = []
    for s, d in zip(srcs, dsts):
        if s == d:
            d = (d + 1) % num_vertices
        edges.append((int(s), int(d)))
    return edges


def generate_clustered_points(
    seed: int,
    partition: int,
    points_per_partition: int,
    num_clusters: int,
    dim: int = 8,
    spread: float = 0.5,
) -> List[Tuple[float, ...]]:
    """Points drawn from ``num_clusters`` well-separated Gaussians."""
    rng = SeededRNG(seed, f"points-{partition}")
    centers_rng = SeededRNG(seed, "cluster-centers")
    centers = centers_rng.uniform(-10.0, 10.0, size=(num_clusters, dim))
    assignments = rng.integers(0, num_clusters, size=points_per_partition)
    noise = rng.normal(0.0, spread, size=(points_per_partition, dim))
    points = centers[assignments] + noise
    return [tuple(float(x) for x in row) for row in points]


def generate_ratings_partition(
    seed: int,
    partition: int,
    ratings_per_partition: int,
    num_users: int,
    num_items: int,
) -> List[Tuple[int, int, float]]:
    """Sparse ``(user, item, rating)`` triples with item-popularity skew."""
    rng = SeededRNG(seed, f"ratings-{partition}")
    users = rng.integers(0, num_users, size=ratings_per_partition)
    # Popularity skew: square a uniform to concentrate mass on low item ids.
    items = (rng.random(ratings_per_partition) ** 2 * num_items).astype(np.int64)
    items = np.clip(items, 0, num_items - 1)
    ratings = np.clip(rng.normal(3.5, 1.0, size=ratings_per_partition), 0.5, 5.0)
    return [(int(u), int(i), float(r)) for u, i, r in zip(users, items, ratings)]


def initial_centroids(seed: int, num_clusters: int, dim: int = 8) -> List[Tuple[float, ...]]:
    """Deterministic starting centroids for KMeans (perturbed truth)."""
    rng = SeededRNG(seed, "initial-centroids")
    centers_rng = SeededRNG(seed, "cluster-centers")
    centers = centers_rng.uniform(-10.0, 10.0, size=(num_clusters, dim))
    jitter = rng.normal(0.0, 2.0, size=(num_clusters, dim))
    return [tuple(float(x) for x in row) for row in centers + jitter]


def initial_factors(seed: int, label: str, count: int, rank: int = 8) -> List[Tuple[int, Tuple[float, ...]]]:
    """Deterministic initial latent factors for ALS."""
    rng = SeededRNG(seed, f"factors-{label}")
    mat = rng.normal(0.0, 0.1, size=(count, rank))
    return [(i, tuple(float(x) for x in mat[i])) for i in range(count)]
