"""KMeans clustering (§5.1): the compute-intensive workload.

Spark mllib's DenseKMeans over a 16GB random dataset: a cached points RDD,
and per iteration a narrow distance-computation map followed by one small
shuffle (reduceByKey over k keys).  Because the expensive state is a single
cached *source-derived* RDD, KMeans has the flattest lineage of the three
batch workloads and the lowest checkpointing tax (Figure 6a).
"""

from __future__ import annotations

import operator
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.columnar import ColumnarBatch
from repro.engine.context import FlintContext
from repro.engine.rdd import RDD
from repro.workloads.datagen import generate_clustered_points, initial_centroids

GB = 10**9


def _closest(point: Tuple[float, ...], centroids: List[Tuple[float, ...]]) -> int:
    # Explicit accumulation instead of sum(<genexpr>): identical float
    # operation order (left-to-right from 0), a third of the interpreter
    # overhead in the benchmark's hottest data-plane loop.
    best, best_d = 0, float("inf")
    for i, c in enumerate(centroids):
        d = 0.0
        for p, q in zip(point, c):
            diff = p - q
            d += diff * diff
            if d >= best_d:
                # Early exit is exact: terms are non-negative and float
                # addition is monotone, so the full sum can only be >= the
                # partial one — this centroid can no longer win (ties keep
                # the earlier index either way).
                break
        if d < best_d:
            best, best_d = i, d
    return best


def _add_vectors(a: Tuple[float, ...], b: Tuple[float, ...]) -> Tuple[float, ...]:
    return tuple(map(operator.add, a, b))


def _assign_batch(batch: ColumnarBatch, centroids: List[Tuple[float, ...]]) -> ColumnarBatch:
    """Columnar twin of the per-record ``_closest`` assignment map.

    Per element the float-operation order matches ``_closest`` exactly:
    distances accumulate one dimension at a time (left-to-right from 0.0)
    and the running minimum uses the same strict ``<`` (ties keep the
    earlier centroid).  ``_closest``'s early exit never changes its answer
    (the full sum only grows), so computing full sums here is equivalent.
    """
    dim = len(centroids[0])
    point_schema = ("tuple", ("f8",) * dim)
    cols = batch.require(point_schema)
    n = len(batch)
    best = np.zeros(n, dtype=np.int64)
    best_d = np.full(n, np.inf)
    for i, c in enumerate(centroids):
        d = np.zeros(n)
        for j in range(dim):
            diff = cols[j] - c[j]
            d += diff * diff
        better = d < best_d
        best[better] = i
        best_d[better] = d[better]
    counts = np.ones(n, dtype=np.int64)
    return ColumnarBatch(
        ("tuple", ("i8", ("tuple", (point_schema, "i8")))),
        (best, (cols, counts)),
        n,
    )


class KMeansWorkload:
    """Lloyd's algorithm over cached points.

    Args:
        data_gb: virtual dataset size (paper: 16GB).
        num_points: real point count.
        k: cluster count.
        dim: point dimensionality.
        distance_cost: compute multiplier of the assignment map — models the
            k distance evaluations per point that make KMeans CPU-bound.
    """

    def __init__(
        self,
        ctx: FlintContext,
        data_gb: float = 16.0,
        num_points: int = 24_000,
        k: int = 10,
        dim: int = 8,
        partitions: Optional[int] = None,
        iterations: int = 8,
        distance_cost: float = 6.0,
        source_cost: float = 5.0,
        seed: int = 23,
    ):
        self.ctx = ctx
        self.k = k
        self.dim = dim
        self.iterations = iterations
        self.partitions = partitions or max(8, ctx.default_parallelism)
        self.num_points = num_points
        self.distance_cost = distance_cost
        # Re-materialising points means re-fetching and re-parsing the raw
        # dataset from object storage - much slower than streaming memory.
        self.source_cost = source_cost
        self.seed = seed
        self.point_record_size = max(1, int(data_gb * GB / num_points))
        self.points: Optional[RDD] = None

    def load(self) -> RDD:
        """Build and cache the points RDD."""
        per_part = self.num_points // self.partitions
        self.points = self.ctx.generate(
            lambda p: generate_clustered_points(self.seed, p, per_part, self.k, self.dim),
            self.partitions,
            record_size=self.point_record_size,
            compute_multiplier=self.source_cost,
            name="points",
        ).persist()
        self.points.count()
        return self.points

    def run(self, iterations: Optional[int] = None) -> List[Tuple[float, ...]]:
        """Run Lloyd iterations; returns the final centroids."""
        if self.points is None:
            self.load()
        points = self.points
        centroids = initial_centroids(self.seed, self.k, self.dim)
        iters = iterations or self.iterations
        for _ in range(iters):
            frozen = list(centroids)
            stats = (
                points.map(
                    lambda p, cs=frozen: (_closest(p, cs), (p, 1)),
                    compute_multiplier=self.distance_cost,
                    batch_fn=lambda batch, cs=frozen: _assign_batch(batch, cs),
                )
                .reduce_by_key(
                    lambda a, b: (_add_vectors(a[0], b[0]), a[1] + b[1]),
                    min(self.partitions, self.k),
                )
            )
            totals = stats.collect()
            new_centroids = list(centroids)
            for idx, (vec_sum, count) in totals:
                new_centroids[idx] = tuple(x / count for x in vec_sum)
            centroids = new_centroids
        return centroids

    def cost(self, centroids: List[Tuple[float, ...]]) -> float:
        """Within-cluster sum of squared distances (quality metric)."""
        if self.points is None:
            self.load()

        def partition_cost(records):
            total = 0.0
            for p in records:
                c = centroids[_closest(p, centroids)]
                total += sum((x - y) * (x - y) for x, y in zip(p, c))
            return total

        return float(sum(self.ctx.run_job(self.points, partition_cost)))
