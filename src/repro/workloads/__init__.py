"""The paper's evaluation workloads (§5.1), rebuilt on the RDD engine.

* :class:`~repro.workloads.pagerank.PageRankWorkload` — iterative graph
  processing with a join + shuffle per iteration (many RDDs, shuffle-heavy).
* :class:`~repro.workloads.kmeans.KMeansWorkload` — compute-intensive
  clustering: narrow map pipeline + one small shuffle per iteration.
* :class:`~repro.workloads.als.ALSWorkload` — shuffle-intensive alternating
  least squares with two joins per iteration.
* :class:`~repro.workloads.tpch.TPCHSession` — an interactive in-memory SQL
  session over TPC-H-style tables (queries 1, 3, and 6).

Input sizes are *virtual* (per-record byte hints) so each workload matches
the paper's data volumes — PageRank 2GB, ALS 10GB, KMeans 16GB, TPC-H 10GB —
while computing over modest real record counts.
"""

from repro.workloads.als import ALSWorkload
from repro.workloads.datagen import (
    generate_clustered_points,
    generate_graph_partition,
    generate_ratings_partition,
)
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.tpch import TPCHSession

__all__ = [
    "PageRankWorkload",
    "KMeansWorkload",
    "ALSWorkload",
    "TPCHSession",
    "generate_graph_partition",
    "generate_clustered_points",
    "generate_ratings_partition",
]
