"""PageRank (§5.1): iterative graph processing.

The paper uses graphx's optimised PageRank on the 2GB LiveJournal graph;
PageRank stresses the checkpointing policy because each iteration creates
new RDDs (lineage grows linearly) and performs a wide join + reduceByKey
shuffle — losing shuffle outputs forces deep recomputation, which is why
checkpointing helps PageRank most (Figure 8a).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.context import FlintContext
from repro.engine.rdd import RDD
from repro.workloads.datagen import generate_graph_partition

GB = 10**9


class PageRankWorkload:
    """Iterative PageRank over a synthetic power-law graph.

    Args:
        ctx: the engine context to build RDDs on.
        data_gb: virtual dataset size (paper: 2GB LiveJournal).
        num_edges: real edge count (kept modest; sizes are virtual).
        num_vertices: graph vertex count.
        partitions: RDD partitioning (defaults to the context parallelism).
        iterations: PageRank iterations per run.
        seed: dataset seed.
    """

    def __init__(
        self,
        ctx: FlintContext,
        data_gb: float = 2.0,
        num_edges: int = 24_000,
        num_vertices: int = 4_000,
        partitions: Optional[int] = None,
        iterations: int = 8,
        memory_inflation: float = 2.5,
        source_cost: float = 3.0,
        seed: int = 17,
    ):
        self.ctx = ctx
        self.iterations = iterations
        self.partitions = partitions or max(8, ctx.default_parallelism)
        self.num_edges = num_edges
        self.num_vertices = num_vertices
        self.source_cost = source_cost
        self.seed = seed
        self.edge_record_size = max(1, int(data_gb * GB / num_edges))
        # The cached adjacency-list representation is larger than the raw
        # edge input (graphx's in-memory graph carries indexes and object
        # overhead); rank vectors and per-edge contributions are far smaller.
        self.links_record_size = max(
            1, int(data_gb * memory_inflation * GB / num_vertices)
        )
        self.rank_record_size = max(1, self.links_record_size // 16)
        self.contrib_record_size = max(1, self.edge_record_size // 16)
        self.links: Optional[RDD] = None

    def load(self) -> RDD:
        """Build and cache the adjacency-list RDD (``(src, [dsts])``)."""
        per_part = self.num_edges // self.partitions
        edges = self.ctx.generate(
            lambda p: generate_graph_partition(self.seed, p, per_part, self.num_vertices),
            self.partitions,
            record_size=self.edge_record_size,
            compute_multiplier=self.source_cost,
            name="edges",
        )
        self.links = (
            edges.group_by_key(self.partitions)
            .set_record_size(self.links_record_size)
            .persist()
            .set_name("links")
        )
        # Force materialisation so the cached graph behaves like a loaded
        # dataset (the paper caches inputs before measuring).
        self.links.count()
        return self.links

    def run(self, iterations: Optional[int] = None) -> Dict[int, float]:
        """Run PageRank; returns the final rank of every vertex."""
        if self.links is None:
            self.load()
        links = self.links
        iters = iterations or self.iterations
        ranks = (
            links.map_values(lambda _dsts: 1.0)
            .set_record_size(self.rank_record_size)
            .set_name("ranks-0")
        )

        def contributions(kv):
            _src, (link_groups, rank_values) = kv
            if not link_groups or not rank_values:
                return []
            dsts = link_groups[0]
            rank = rank_values[0]
            share = rank / len(dsts)
            return [(d, share) for d in dsts]

        previous = None
        for i in range(iters):
            contribs = (
                links.cogroup(ranks, self.partitions)
                .flat_map(contributions)
                .set_record_size(self.contrib_record_size)
            )
            new_ranks = (
                contribs.reduce_by_key(lambda a, b: a + b, self.partitions)
                .map_values(lambda total: 0.15 + 0.85 * total)
                .set_record_size(self.rank_record_size)
                .persist()
                .set_name(f"ranks-{i + 1}")
            )
            # Materialise each iteration, as graphx does, then release the
            # grandparent generation (graphx unpersists superseded ranks).
            new_ranks.count()
            if previous is not None and previous.persisted:
                previous.unpersist()
            previous = ranks
            ranks = new_ranks
        return dict(ranks.collect())
