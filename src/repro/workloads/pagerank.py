"""PageRank (§5.1): iterative graph processing.

The paper uses graphx's optimised PageRank on the 2GB LiveJournal graph;
PageRank stresses the checkpointing policy because each iteration creates
new RDDs (lineage grows linearly) and performs a wide join + reduceByKey
shuffle — losing shuffle outputs forces deep recomputation, which is why
checkpointing helps PageRank most (Figure 8a).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engine.columnar import ColumnarBatch, ColumnarUnsupported
from repro.engine.context import FlintContext
from repro.engine.rdd import RDD
from repro.workloads.datagen import generate_graph_partition

GB = 10**9

#: Schema of a cached adjacency partition: ``(src, [dsts])``.
_LINKS_SCHEMA = ("tuple", ("i8", ("list", "i8")))
#: Schema of a rank partition: ``(vertex, rank)``.
_RANKS_SCHEMA = ("tuple", ("i8", "f8"))
#: Schema of a cogrouped ``(src, ([group, ...], [rank, ...]))`` partition —
#: the link side is doubly ragged (list of adjacency lists).
_COGROUP_SCHEMA = ("tuple", ("i8", ("tuple", (("list", ("list", "i8")), ("list", "f8")))))


def _init_ranks_batch(batch: ColumnarBatch) -> ColumnarBatch:
    """Columnar twin of ``map_values(lambda _dsts: 1.0)`` over links."""
    src, _dsts = batch.require(_LINKS_SCHEMA)
    n = len(batch)
    return ColumnarBatch(_RANKS_SCHEMA, (src, np.full(n, 1.0)), n)


def _rank_update_batch(batch: ColumnarBatch) -> ColumnarBatch:
    """Columnar twin of ``map_values(lambda total: 0.15 + 0.85 * total)``."""
    vertex, total = batch.require(_RANKS_SCHEMA)
    return ColumnarBatch(_RANKS_SCHEMA, (vertex, 0.15 + 0.85 * total), len(batch))


def _accumulate_batch(batch: ColumnarBatch) -> ColumnarBatch:
    """Vectorised twin of the reduce-side ``lambda a, b: a + b`` merge.

    Matches the shuffle merge loop in ``ShuffledRDD.compute`` exactly:
    per-key accumulation in stream order (``np.bincount`` adds
    sequentially, matching repeated ``a + b`` merges that start from the
    first value — ``0.0 + v`` is bit-identical to ``v`` for the positive
    shares PageRank produces, and ``-0.0`` contributions are refused
    because the implicit zero seed would flip their sign bit), and output
    in ``sorted(merged.items(), key=_record_hash_key)`` order.  For
    non-negative int keys below 2**31 the hash fast path ``k & 0x7FFFFFFF``
    is the identity, so that order is simply ascending key; anything else
    is refused.  The engine's shuffle merge itself stays on the row plane;
    this kernel is the columnar plane's aggregate shape, exercised by the
    perf-smoke columnar microbench.
    """
    vertex, contrib = batch.require(_RANKS_SCHEMA)
    n = len(batch)
    if n == 0:
        return batch
    if int(vertex.min()) < 0 or int(vertex.max()) >= 2**31:
        raise ColumnarUnsupported("keys outside the int hash fast path")
    if (np.signbit(contrib) & (contrib == 0.0)).any():
        raise ColumnarUnsupported("-0.0 contribution would lose its sign")
    occupancy = np.bincount(vertex)
    sums = np.bincount(vertex, weights=contrib)
    keys = np.flatnonzero(occupancy)
    return ColumnarBatch(_RANKS_SCHEMA, (keys, sums[keys]), len(keys))


def _contributions_batch(batch: ColumnarBatch) -> ColumnarBatch:
    """Columnar twin of the per-record ``contributions`` flat map.

    A ragged gather: each record with one link group and one rank value
    fans out to ``len(dsts)`` ``(dst, rank / len(dsts))`` pairs, preserving
    record order then in-list order — exactly the row plane's emission
    order.  All arithmetic (one f8/i8 division per record, broadcast to
    its fan-out) is IEEE-identical to the scalar ``rank / len(dsts)``.
    """
    _src, (link_col, rank_col) = batch.require(_COGROUP_SCHEMA)
    group_counts, (dst_counts, dst_vals) = link_col
    rank_counts, rank_vals = rank_col
    if (group_counts > 1).any() or (rank_counts > 1).any():
        # The row plane reads only element [0] of each side; refuse rather
        # than silently dropping the extras (cogroup of pre-grouped links
        # with unique ranks never produces them in practice).
        raise ColumnarUnsupported("multiple cogroup values for one key")
    valid = (group_counts > 0) & (rank_counts > 0)
    if valid.all():
        # Dense fast path: every record has exactly one group and one rank
        # (counts are all 1 after the >1 refusal), so the flat axes are
        # already in record order and the gather below is the identity.
        fanout = dst_counts
        if (fanout == 0).any():
            raise ColumnarUnsupported("empty adjacency list")
        share = rank_vals / fanout
        return ColumnarBatch(
            _RANKS_SCHEMA,
            (dst_vals, np.repeat(share, fanout)),
            int(fanout.sum()),
        )
    if not valid.any():
        return ColumnarBatch(
            _RANKS_SCHEMA, (np.empty(0, dtype=np.int64), np.empty(0)), 0
        )
    # Flat-axis index of each valid record's single adjacency list.
    group_offsets = np.concatenate(([0], np.cumsum(group_counts)))
    flat_group = group_offsets[:-1][valid]
    fanout = dst_counts[flat_group]
    if (fanout == 0).any():
        # ``rank / len(dsts)`` would raise ZeroDivisionError on the row
        # plane; fall back so the error surfaces there, not here.
        raise ColumnarUnsupported("empty adjacency list")
    rank_offsets = np.concatenate(([0], np.cumsum(rank_counts)))
    rank = rank_vals[rank_offsets[:-1][valid]]
    share = rank / fanout
    # Gather every valid record's dsts: start of its list in the flat dst
    # axis, plus a within-list ramp.
    dst_offsets = np.concatenate(([0], np.cumsum(dst_counts)))
    starts = dst_offsets[:-1][flat_group]
    total = int(fanout.sum())
    out_offsets = np.concatenate(([0], np.cumsum(fanout)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(out_offsets, fanout)
    out_dst = dst_vals[np.repeat(starts, fanout) + within]
    return ColumnarBatch(_RANKS_SCHEMA, (out_dst, np.repeat(share, fanout)), total)


class PageRankWorkload:
    """Iterative PageRank over a synthetic power-law graph.

    Args:
        ctx: the engine context to build RDDs on.
        data_gb: virtual dataset size (paper: 2GB LiveJournal).
        num_edges: real edge count (kept modest; sizes are virtual).
        num_vertices: graph vertex count.
        partitions: RDD partitioning (defaults to the context parallelism).
        iterations: PageRank iterations per run.
        seed: dataset seed.
    """

    def __init__(
        self,
        ctx: FlintContext,
        data_gb: float = 2.0,
        num_edges: int = 24_000,
        num_vertices: int = 4_000,
        partitions: Optional[int] = None,
        iterations: int = 8,
        memory_inflation: float = 2.5,
        source_cost: float = 3.0,
        seed: int = 17,
    ):
        self.ctx = ctx
        self.iterations = iterations
        self.partitions = partitions or max(8, ctx.default_parallelism)
        self.num_edges = num_edges
        self.num_vertices = num_vertices
        self.source_cost = source_cost
        self.seed = seed
        self.edge_record_size = max(1, int(data_gb * GB / num_edges))
        # The cached adjacency-list representation is larger than the raw
        # edge input (graphx's in-memory graph carries indexes and object
        # overhead); rank vectors and per-edge contributions are far smaller.
        self.links_record_size = max(
            1, int(data_gb * memory_inflation * GB / num_vertices)
        )
        self.rank_record_size = max(1, self.links_record_size // 16)
        self.contrib_record_size = max(1, self.edge_record_size // 16)
        self.links: Optional[RDD] = None

    def load(self) -> RDD:
        """Build and cache the adjacency-list RDD (``(src, [dsts])``)."""
        per_part = self.num_edges // self.partitions
        edges = self.ctx.generate(
            lambda p: generate_graph_partition(self.seed, p, per_part, self.num_vertices),
            self.partitions,
            record_size=self.edge_record_size,
            compute_multiplier=self.source_cost,
            name="edges",
        )
        self.links = (
            edges.group_by_key(self.partitions)
            .set_record_size(self.links_record_size)
            .persist()
            .set_name("links")
        )
        # Force materialisation so the cached graph behaves like a loaded
        # dataset (the paper caches inputs before measuring).
        self.links.count()
        return self.links

    def run(self, iterations: Optional[int] = None) -> Dict[int, float]:
        """Run PageRank; returns the final rank of every vertex."""
        if self.links is None:
            self.load()
        links = self.links
        iters = iterations or self.iterations
        ranks = (
            links.map_values(lambda _dsts: 1.0, batch_fn=_init_ranks_batch)
            .set_record_size(self.rank_record_size)
            .set_name("ranks-0")
        )

        def contributions(kv):
            _src, (link_groups, rank_values) = kv
            if not link_groups or not rank_values:
                return []
            dsts = link_groups[0]
            rank = rank_values[0]
            share = rank / len(dsts)
            return [(d, share) for d in dsts]

        previous = None
        for i in range(iters):
            contribs = (
                links.cogroup(ranks, self.partitions)
                .flat_map(contributions, batch_fn=_contributions_batch)
                .set_record_size(self.contrib_record_size)
            )
            new_ranks = (
                contribs.reduce_by_key(lambda a, b: a + b, self.partitions)
                .map_values(lambda total: 0.15 + 0.85 * total, batch_fn=_rank_update_batch)
                .set_record_size(self.rank_record_size)
                .persist()
                .set_name(f"ranks-{i + 1}")
            )
            # Materialise each iteration, as graphx does, then release the
            # grandparent generation (graphx unpersists superseded ranks).
            new_ranks.count()
            if previous is not None and previous.persisted:
                previous.unpersist()
            previous = ranks
            ranks = new_ranks
        return dict(ranks.collect())
