"""TPC-H-style interactive SQL session (§5.1).

The paper uses Spark as an in-memory database serving TPC-H queries over a
10GB dataset: raw files are de-serialised, re-partitioned, and *persisted in
memory*, and each arriving query runs against the cached tables.  Response
latency — not total runtime — is the metric.  Losing the cached tables to a
revocation forces an expensive reload from source (the 400-500s spikes of
Figure 9), which is precisely what Flint's checkpoints bound.

We implement schema-faithful subsets of Q1 (scan + aggregate), Q3 (3-way
join + aggregate + top-k), and Q6 (selective filter + sum) over synthetic
tables with TPC-H-like column distributions.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.engine.context import FlintContext
from repro.engine.rdd import RDD
from repro.simulation.rng import SeededRNG

GB = 10**9

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["O", "F"]

#: Synthetic calendar: dates are day offsets in [0, 2556) ~ 7 years.
DATE_RANGE = 2556


def _gen_lineitem(seed: int, partition: int, rows: int, num_orders: int) -> List[dict]:
    rng = SeededRNG(seed, f"lineitem-{partition}")
    out = []
    for _ in range(rows):
        qty = float(rng.integers(1, 51))
        price = float(rng.uniform(900.0, 105000.0))
        out.append(
            {
                "orderkey": int(rng.integers(0, num_orders)),
                "quantity": qty,
                "extendedprice": price,
                "discount": round(float(rng.uniform(0.0, 0.10)), 2),
                "tax": round(float(rng.uniform(0.0, 0.08)), 2),
                "returnflag": RETURN_FLAGS[int(rng.integers(0, len(RETURN_FLAGS)))],
                "linestatus": LINE_STATUSES[int(rng.integers(0, len(LINE_STATUSES)))],
                "shipdate": int(rng.integers(0, DATE_RANGE)),
            }
        )
    return out


def _gen_orders(seed: int, partition: int, rows: int, start: int, num_customers: int) -> List[dict]:
    rng = SeededRNG(seed, f"orders-{partition}")
    out = []
    for i in range(rows):
        out.append(
            {
                "orderkey": start + i,
                "custkey": int(rng.integers(0, num_customers)),
                "orderdate": int(rng.integers(0, DATE_RANGE)),
                "shippriority": int(rng.integers(0, 2)),
                "totalprice": float(rng.uniform(1000.0, 400000.0)),
            }
        )
    return out


def _gen_customer(seed: int, partition: int, rows: int, start: int) -> List[dict]:
    rng = SeededRNG(seed, f"customer-{partition}")
    return [
        {
            "custkey": start + i,
            "mktsegment": SEGMENTS[int(rng.integers(0, len(SEGMENTS)))],
            "acctbal": float(rng.uniform(-999.0, 9999.0)),
        }
        for i in range(rows)
    ]


class TPCHSession:
    """An interactive in-memory analytics session over TPC-H-style tables."""

    def __init__(
        self,
        ctx: FlintContext,
        data_gb: float = 10.0,
        lineitem_rows: int = 24_000,
        orders_rows: int = 6_000,
        customer_rows: int = 1_500,
        partitions: Optional[int] = None,
        seed: int = 41,
        source_cost: float = 25.0,
    ):
        self.ctx = ctx
        self.partitions = partitions or max(8, ctx.default_parallelism)
        self.seed = seed
        # Rebuilding tables means re-fetching raw files from S3, then
        # re-partitioning and de-serialising them (§5.4) — far slower than
        # streaming cached records.  ``source_cost`` is that multiplier.
        self.source_cost = source_cost
        self.lineitem_rows = lineitem_rows
        self.orders_rows = orders_rows
        self.customer_rows = customer_rows
        # lineitem carries ~80% of the data volume, as in TPC-H.
        self.lineitem_record_size = max(1, int(data_gb * 0.8 * GB / lineitem_rows))
        self.orders_record_size = max(1, int(data_gb * 0.15 * GB / orders_rows))
        self.customer_record_size = max(1, int(data_gb * 0.05 * GB / customer_rows))
        self.lineitem: Optional[RDD] = None
        self.orders: Optional[RDD] = None
        self.customer: Optional[RDD] = None

    # ------------------------------------------------------------------
    def load(self) -> None:
        """De-serialise, re-partition, and cache all three tables."""
        n = self.partitions
        li_per = self.lineitem_rows // n
        self.lineitem = self.ctx.generate(
            lambda p: _gen_lineitem(self.seed, p, li_per, self.orders_rows),
            n,
            record_size=self.lineitem_record_size,
            compute_multiplier=self.source_cost,
            name="lineitem",
        ).persist()
        ord_per = self.orders_rows // n
        self.orders = self.ctx.generate(
            lambda p: _gen_orders(self.seed, p, ord_per, p * ord_per, self.customer_rows),
            n,
            record_size=self.orders_record_size,
            compute_multiplier=self.source_cost,
            name="orders",
        ).persist()
        cust_per = self.customer_rows // n
        self.customer = self.ctx.generate(
            lambda p: _gen_customer(self.seed, p, cust_per, p * cust_per),
            n,
            record_size=self.customer_record_size,
            compute_multiplier=self.source_cost,
            name="customer",
        ).persist()
        for table in (self.lineitem, self.orders, self.customer):
            table.count()

    def _require_loaded(self) -> None:
        if self.lineitem is None:
            self.load()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def q1(self, ship_cutoff: int = DATE_RANGE - 90) -> List[Tuple[Tuple[str, str], dict]]:
        """Pricing summary report: scan + wide aggregate (medium-length query)."""
        self._require_loaded()

        def to_agg(row):
            disc_price = row["extendedprice"] * (1.0 - row["discount"])
            return (
                (row["returnflag"], row["linestatus"]),
                {
                    "sum_qty": row["quantity"],
                    "sum_base_price": row["extendedprice"],
                    "sum_disc_price": disc_price,
                    "sum_charge": disc_price * (1.0 + row["tax"]),
                    "count": 1,
                },
            )

        def merge(a, b):
            return {k: a[k] + b[k] for k in a}

        result = (
            self.lineitem.filter(lambda r: r["shipdate"] <= ship_cutoff)
            .map(to_agg)
            .reduce_by_key(merge, min(self.partitions, 4))
            .collect()
        )
        return sorted(result, key=lambda kv: kv[0])

    def q3_plan(self, segment: str = "BUILDING", date: int = DATE_RANGE // 2):
        """The Q3 revenue RDD, pre-collect — the plan the result cache keys on.

        Exposed separately from :meth:`q3` so callers can fingerprint the
        lineage (``repro.server.lineage_fingerprint``) before running it.
        """
        self._require_loaded()
        customers = self.customer.filter(lambda c: c["mktsegment"] == segment).map(
            lambda c: (c["custkey"], 1)
        )
        orders = self.orders.filter(lambda o: o["orderdate"] < date).map(
            lambda o: (o["custkey"], o["orderkey"])
        )
        order_keys = (
            customers.cogroup(orders, self.partitions)
            .flat_map(lambda kv: [(ok, 1) for ok in kv[1][1]] if kv[1][0] else [])
        )
        items = self.lineitem.filter(lambda r: r["shipdate"] > date).map(
            lambda r: (r["orderkey"], r["extendedprice"] * (1.0 - r["discount"]))
        )
        return (
            order_keys.cogroup(items, self.partitions)
            .flat_map(
                lambda kv: [(kv[0], sum(kv[1][1]))] if kv[1][0] and kv[1][1] else []
            )
            .reduce_by_key(lambda a, b: a + b, self.partitions)
        )

    def q3(self, segment: str = "BUILDING", date: int = DATE_RANGE // 2) -> List[Tuple[int, float]]:
        """Shipping priority: customer ⋈ orders ⋈ lineitem, top-10 revenue (short query)."""
        revenue = self.q3_plan(segment, date).collect()
        return sorted(revenue, key=lambda kv: -kv[1])[:10]

    def q6(
        self,
        year_start: int = DATE_RANGE // 3,
        discount_center: float = 0.06,
        max_quantity: float = 24.0,
    ) -> float:
        """Forecasting revenue change: selective filter + global sum."""
        self._require_loaded()
        year_end = year_start + 365

        def keep(r):
            return (
                year_start <= r["shipdate"] < year_end
                and discount_center - 0.011 <= r["discount"] <= discount_center + 0.011
                and r["quantity"] < max_quantity
            )

        return (
            self.lineitem.filter(keep)
            .map(lambda r: r["extendedprice"] * r["discount"])
            .sum()
        )

    # ------------------------------------------------------------------
    def timed(self, query: Callable[[], Any]) -> Tuple[Any, float]:
        """Run a query and return ``(result, response_latency_seconds)``."""
        t0 = self.ctx.now
        result = query()
        return result, self.ctx.now - t0
