"""The multi-tenant job server: admission control + SLO accounting.

``JobServer`` fronts one :class:`~repro.engine.context.FlintContext` for many
clients.  Each *query* is a callable that runs RDD actions (a TPC-H query, a
batch step); the server routes it into a scheduler pool, enforces admission
control — a per-pool concurrency cap backed by one bounded FIFO queue — and
records per-query SLO metrics (queue delay, response time) in simulated
seconds.

Execution model: this is a discrete-event simulation on one thread, so a
query "runs concurrently" by executing inside an event callback while other
jobs are mid-flight — the scheduler multiplexes their tasks.  ``submit_query``
therefore executes an admitted query *inline* (blocking in simulated time)
and returns its finished record; a capped-out query is queued and later runs
inside the completion frame that frees the slot.  ``run_query`` is the
blocking surface for top-level drivers: it additionally pumps the event loop
until a queued query finishes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.engine.pools import DEFAULT_POOL
from repro.engine.scheduler import EngineError
from repro.obs import SpanEvent
from repro.server.session import Session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext


@dataclass(frozen=True)
class PoolConfig:
    """Static configuration for one scheduler pool as seen by the server."""

    name: str
    policy: str = "fifo"
    weight: float = 1.0
    priority: str = "batch"
    #: Queries of this pool running at once; None = unlimited (the
    #: scheduler's fair sharing is then the only throttle).
    max_concurrent: Optional[int] = None


@dataclass(frozen=True)
class ServerConfig:
    """Server-wide configuration."""

    #: Root policy for sharing slots between concurrent jobs.
    scheduling_policy: str = "fair"
    #: Bound on queries waiting for a pool slot; arrivals beyond it are
    #: rejected (load shedding, never unbounded latency).
    max_queue: int = 16
    pools: Tuple[PoolConfig, ...] = ()


class JobRejected(RuntimeError):
    """Admission control turned a query away (queue full)."""

    def __init__(self, pool: str, reason: str):
        super().__init__(f"query rejected from pool {pool!r}: {reason}")
        self.pool = pool
        self.reason = reason


@dataclass
class QueryRecord:
    """Lifecycle and SLO record of one submitted query."""

    name: str
    pool: str
    arrived_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    ok: bool = False
    rejected: bool = False
    done: bool = False
    error: Optional[BaseException] = None
    result: Any = None
    on_complete: Optional[Callable[["QueryRecord"], None]] = None

    @property
    def queue_delay(self) -> Optional[float]:
        """Simulated seconds spent waiting for admission."""
        if self.started_at is None:
            return None
        return self.started_at - self.arrived_at

    @property
    def response(self) -> Optional[float]:
        """Simulated seconds from arrival to completion (the SLO metric)."""
        if self.finished_at is None or self.rejected:
            return None
        return self.finished_at - self.arrived_at


@dataclass
class ServerStats:
    """Aggregate admission/completion counters."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    queued_peak: int = 0
    rejected_by_pool: Dict[str, int] = field(default_factory=dict)


def percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return None
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    ordered = sorted(values)
    rank = max(1, -(-int(q * 1000) * len(ordered) // 1000))  # ceil(q*n) sans float error
    rank = min(rank, len(ordered))
    return ordered[rank - 1]


class JobServer:
    """Serves concurrent queries over one engine context."""

    def __init__(self, context: "FlintContext", config: Optional[ServerConfig] = None):
        self.context = context
        self.scheduler = context.scheduler
        self.config = config or ServerConfig()
        self.scheduler.set_scheduling_policy(self.config.scheduling_policy)
        self._caps: Dict[str, Optional[int]] = {}
        self._active: Dict[str, int] = {}
        self._queue: Deque[Tuple[QueryRecord, Callable[[], Any]]] = deque()
        self._draining = False
        self.records: List[QueryRecord] = []
        self.stats = ServerStats()
        self.sessions: Dict[str, Session] = {}
        for pool_config in self.config.pools:
            self.add_pool(pool_config)

    # ------------------------------------------------------------------
    # Pools and sessions
    # ------------------------------------------------------------------
    def add_pool(self, pool_config: PoolConfig) -> None:
        self.scheduler.add_pool(
            pool_config.name,
            policy=pool_config.policy,
            weight=pool_config.weight,
            priority=pool_config.priority,
        )
        self._caps[pool_config.name] = pool_config.max_concurrent

    def create_session(self, name: str) -> Session:
        """A named session of shared cached RDDs (one per name)."""
        session = self.sessions.get(name)
        if session is None or session.closed:
            session = Session(name, self.context)
            self.sessions[name] = session
        return session

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def submit_query(
        self,
        fn: Callable[[], Any],
        pool: str = DEFAULT_POOL,
        name: Optional[str] = None,
        on_complete: Optional[Callable[[QueryRecord], None]] = None,
    ) -> QueryRecord:
        """Admit and run (or queue, or reject) one query.

        Admitted queries execute inline — the record returned is finished.
        Queued records finish later, inside the frame that frees their pool
        slot; rejected records return immediately with ``rejected`` set.
        ``on_complete`` fires exactly once in every case.
        """
        self.scheduler.get_pool(pool)
        record = QueryRecord(
            name=name or f"query-{len(self.records)}",
            pool=pool,
            arrived_at=self.context.now,
            on_complete=on_complete,
        )
        self.records.append(record)
        self.stats.submitted += 1
        cap = self._caps.get(pool)
        if cap is not None and self._active.get(pool, 0) >= cap:
            if len(self._queue) >= self.config.max_queue:
                record.rejected = True
                record.done = True
                record.finished_at = self.context.now
                self.stats.rejected += 1
                self.stats.rejected_by_pool[pool] = (
                    self.stats.rejected_by_pool.get(pool, 0) + 1
                )
                obs = self.context.obs
                if obs.enabled:
                    obs.metrics.inc("server.queries_rejected")
                    obs.bus.emit(SpanEvent(
                        kind="query", name=record.name, start=record.arrived_at,
                        pool=pool, status="rejected",
                    ))
                self._fire_on_complete(record)
                return record
            self._queue.append((record, fn))
            if len(self._queue) > self.stats.queued_peak:
                self.stats.queued_peak = len(self._queue)
            return record
        self._execute(record, fn)
        return record

    def run_query(
        self,
        fn: Callable[[], Any],
        pool: str = DEFAULT_POOL,
        name: Optional[str] = None,
    ) -> Any:
        """Blocking surface for top-level drivers: submit, pump, return.

        Raises:
            JobRejected: when admission control sheds the query.
            EngineError: when a queued query can never run (no events left),
                or the query itself failed.
        """
        record = self.submit_query(fn, pool=pool, name=name)
        if record.rejected:
            raise JobRejected(pool, "admission queue full")
        env = self.context.env
        while not record.done:
            if not env.events:
                raise EngineError(
                    "job server stalled: query queued but no pending events"
                )
            env.step()
            self.scheduler._schedule_round()
        if record.error is not None:
            raise record.error
        return record.result

    def _execute(self, record: QueryRecord, fn: Callable[[], Any]) -> None:
        pool = record.pool
        self._active[pool] = self._active.get(pool, 0) + 1
        record.started_at = self.context.now
        try:
            with self.context.job_pool(pool):
                try:
                    record.result = fn()
                    record.ok = True
                    self.stats.completed += 1
                except EngineError as exc:
                    record.error = exc
                    self.stats.failed += 1
        finally:
            record.finished_at = self.context.now
            record.done = True
            self._active[pool] -= 1
            obs = self.context.obs
            if obs.enabled:
                obs.metrics.inc(
                    "server.queries_completed" if record.ok else "server.queries_failed"
                )
                if record.queue_delay is not None:
                    obs.metrics.observe(f"server.queue_delay.{pool}", record.queue_delay)
                obs.bus.emit(SpanEvent(
                    kind="query",
                    name=record.name,
                    start=record.arrived_at,
                    end=record.finished_at,
                    pool=pool,
                    status="complete" if record.ok else "failed",
                    attrs={"queue_delay": record.queue_delay},
                ))
            self._fire_on_complete(record)
            self._drain()

    def _fire_on_complete(self, record: QueryRecord) -> None:
        callback = record.on_complete
        if callback is not None:
            record.on_complete = None
            callback(record)

    def _drain(self) -> None:
        """Run queued queries whose pools regained capacity (FIFO per pool).

        Reentrancy-guarded: a drained query's own ``_execute`` ends in
        ``_drain`` too; the outer loop keeps scanning instead of recursing.
        """
        if self._draining:
            return
        self._draining = True
        try:
            progressed = True
            while progressed:
                progressed = False
                for i, (record, fn) in enumerate(self._queue):
                    cap = self._caps.get(record.pool)
                    if cap is None or self._active.get(record.pool, 0) < cap:
                        del self._queue[i]
                        self._draining = False
                        try:
                            self._execute(record, fn)
                        finally:
                            self._draining = True
                        progressed = True
                        break
        finally:
            self._draining = False

    # ------------------------------------------------------------------
    # Driving and reporting
    # ------------------------------------------------------------------
    def drive_until(self, t: float) -> int:
        """Advance simulated time (client arrivals fire as they come due)."""
        return self.context.env.run_until(t)

    def queued(self) -> int:
        return len(self._queue)

    def active(self, pool: Optional[str] = None) -> int:
        if pool is not None:
            return self._active.get(pool, 0)
        return sum(self._active.values())

    def slo_report(self) -> Dict[str, Any]:
        """Per-pool and overall SLO summary in simulated seconds."""
        report: Dict[str, Any] = {
            "scheduling_policy": self.scheduler.scheduling_policy,
            "submitted": self.stats.submitted,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "rejected": self.stats.rejected,
            "queued_peak": self.stats.queued_peak,
            "pools": {},
        }
        by_pool: Dict[str, List[QueryRecord]] = {}
        for record in self.records:
            by_pool.setdefault(record.pool, []).append(record)
        for pool, records in sorted(by_pool.items()):
            responses = [r.response for r in records if r.response is not None and r.ok]
            delays = [r.queue_delay for r in records if r.queue_delay is not None]
            report["pools"][pool] = {
                "queries": len(records),
                "completed": sum(1 for r in records if r.ok),
                "failed": sum(1 for r in records if r.error is not None),
                "rejected": sum(1 for r in records if r.rejected),
                "p50_response": percentile(responses, 0.50),
                "p95_response": percentile(responses, 0.95),
                "p99_response": percentile(responses, 0.99),
                "max_response": max(responses) if responses else None,
                "mean_queue_delay": (
                    sum(delays) / len(delays) if delays else None
                ),
            }
        return report
