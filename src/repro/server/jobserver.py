"""The multi-tenant job server: admission control + SLO accounting.

``JobServer`` fronts one :class:`~repro.engine.context.FlintContext` for many
clients.  Each *query* is a callable that runs RDD actions (a TPC-H query, a
batch step); the server routes it into a scheduler pool, enforces admission
control, and records per-query SLO metrics (queue delay, response time) in
simulated seconds.

The admission path, in order, for every submitted query:

1. **Circuit breaker** — a tenant whose queries keep failing is shed
   outright (closed → open → half-open on the simulated clock).
2. **Quota** — per-tenant bound on queued+running queries.
3. **Rate limit** — per-tenant token bucket; arrivals beyond the refill
   rate are throttled.
4. **Result cache** — a query carrying a lineage-fingerprint cache key
   returns the shared result instantly on a hit (no pool slot, no tasks).
5. **Pool cap + bounded queue** — the per-pool concurrency cap backed by
   one bounded FIFO queue; arrivals beyond the bound are shed.

Tenancy (1–3) is per-tenant state configured by
:class:`~repro.server.tenancy.TenancyConfig`; the tenant defaults to the
pool name so untagged workloads degrade to per-pool isolation.  Every
lifecycle transition can be journalled (:class:`~repro.server.journal
.JobJournal`) so a restarted server resumes admitted-but-unfinished work
via :meth:`JobServer.resume`.

Execution model: this is a discrete-event simulation on one thread, so a
query "runs concurrently" by executing inside an event callback while other
jobs are mid-flight — the scheduler multiplexes their tasks.  ``submit_query``
therefore executes an admitted query *inline* (blocking in simulated time)
and returns its finished record; a capped-out query is queued and later runs
inside the completion frame that frees the slot.  ``run_query`` is the
blocking surface for top-level drivers: it additionally pumps the event loop
until a queued query finishes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.engine.pools import DEFAULT_POOL
from repro.engine.scheduler import EngineError
from repro.obs import SpanEvent
from repro.server.journal import JobJournal
from repro.server.result_cache import ResultCache
from repro.server.session import Session
from repro.server.tenancy import TenancyConfig, TenantState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext


@dataclass(frozen=True)
class PoolConfig:
    """Static configuration for one scheduler pool as seen by the server."""

    name: str
    policy: str = "fifo"
    weight: float = 1.0
    priority: str = "batch"
    #: Queries of this pool running at once; None = unlimited (the
    #: scheduler's fair sharing is then the only throttle).
    max_concurrent: Optional[int] = None


@dataclass(frozen=True)
class ServerConfig:
    """Server-wide configuration."""

    #: Root policy for sharing slots between concurrent jobs.
    scheduling_policy: str = "fair"
    #: Bound on queries waiting for a pool slot; arrivals beyond it are
    #: rejected (load shedding, never unbounded latency).
    max_queue: int = 16
    pools: Tuple[PoolConfig, ...] = ()
    #: Per-tenant quotas / rate limits / circuit breakers; None disables
    #: the tenancy layer entirely (the admission path is then pool-only).
    tenancy: Optional[TenancyConfig] = None
    #: JSONL job-state journal path; None disables journalling.
    journal_path: Optional[str] = None
    #: Shared lineage-fingerprint result cache; None disables it.  Queries
    #: opt in per submission via ``cache_key``.
    result_cache: Optional[ResultCache] = None


class JobRejected(RuntimeError):
    """Admission control turned a query away (queue full, quota, breaker)."""

    def __init__(self, pool: str, reason: str):
        super().__init__(f"query rejected from pool {pool!r}: {reason}")
        self.pool = pool
        self.reason = reason


@dataclass
class QueryRecord:
    """Lifecycle and SLO record of one submitted query."""

    name: str
    pool: str
    arrived_at: float
    tenant: Optional[str] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    ok: bool = False
    rejected: bool = False
    #: Set when rejection happened: "queue-full", "quota", "throttled",
    #: or "circuit-open".
    reject_reason: Optional[str] = None
    #: True when the result came from the shared result cache.
    cached: bool = False
    cache_key: Optional[str] = None
    done: bool = False
    error: Optional[BaseException] = None
    result: Any = None
    on_complete: Optional[Callable[["QueryRecord"], None]] = None

    @property
    def queue_delay(self) -> Optional[float]:
        """Simulated seconds spent waiting for admission."""
        if self.started_at is None:
            return None
        return self.started_at - self.arrived_at

    @property
    def response(self) -> Optional[float]:
        """Simulated seconds from arrival to completion (the SLO metric)."""
        if self.finished_at is None or self.rejected:
            return None
        return self.finished_at - self.arrived_at


@dataclass
class ServerStats:
    """Aggregate admission/completion counters."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    throttled: int = 0
    cache_hits: int = 0
    queued_peak: int = 0
    rejected_by_pool: Dict[str, int] = field(default_factory=dict)
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)


def percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (deterministic, no interpolation).

    The rank is ``ceil(q * n)`` computed *exactly*: ``q`` is snapped to the
    nearest rational with denominator <= 1000 (so the binary float closest
    to 0.29 means 29/100, not 0.29000000000000003...), and the ceiling is
    taken in rational arithmetic.  Naive ``int(q * 1000)`` truncation picks
    a rank one too low for exactly those q values whose float repr rounds
    down — e.g. q=0.29, n=1000 gave rank 289 instead of 290.
    """
    if not values:
        return None
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    ordered = sorted(values)
    n = len(ordered)
    rank = int(math.ceil(Fraction(q).limit_denominator(1000) * n))
    rank = max(1, min(rank, n))
    return ordered[rank - 1]


class JobServer:
    """Serves concurrent queries over one engine context."""

    def __init__(self, context: "FlintContext", config: Optional[ServerConfig] = None):
        self.context = context
        self.scheduler = context.scheduler
        self.config = config or ServerConfig()
        self.scheduler.set_scheduling_policy(self.config.scheduling_policy)
        self._caps: Dict[str, Optional[int]] = {}
        self._active: Dict[str, int] = {}
        self._queue: Deque[Tuple[QueryRecord, Callable[[], Any]]] = deque()
        self._draining = False
        self.records: List[QueryRecord] = []
        self.stats = ServerStats()
        self.sessions: Dict[str, Session] = {}
        self.tenants: Dict[str, TenantState] = {}
        self.result_cache = self.config.result_cache
        self.journal: Optional[JobJournal] = (
            JobJournal(self.config.journal_path)
            if self.config.journal_path is not None
            else None
        )
        for pool_config in self.config.pools:
            self.add_pool(pool_config)

    # ------------------------------------------------------------------
    # Pools, sessions, tenants
    # ------------------------------------------------------------------
    def add_pool(self, pool_config: PoolConfig) -> None:
        self.scheduler.add_pool(
            pool_config.name,
            policy=pool_config.policy,
            weight=pool_config.weight,
            priority=pool_config.priority,
        )
        self._caps[pool_config.name] = pool_config.max_concurrent

    def create_session(self, name: str) -> Session:
        """A named session of shared cached RDDs (one per name)."""
        session = self.sessions.get(name)
        if session is None or session.closed:
            session = Session(name, self.context)
            self.sessions[name] = session
        return session

    def tenant_state(self, tenant: str) -> Optional[TenantState]:
        """The live tenancy record for ``tenant`` (None with tenancy off)."""
        if self.config.tenancy is None:
            return None
        state = self.tenants.get(tenant)
        if state is None:
            state = TenantState(
                tenant, self.config.tenancy.policy_for(tenant), self.context.now
            )
            self.tenants[tenant] = state
        return state

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def submit_query(
        self,
        fn: Callable[[], Any],
        pool: str = DEFAULT_POOL,
        name: Optional[str] = None,
        tenant: Optional[str] = None,
        on_complete: Optional[Callable[[QueryRecord], None]] = None,
        cache_key: Optional[str] = None,
    ) -> QueryRecord:
        """Admit and run (or queue, or reject) one query.

        Admitted queries execute inline — the record returned is finished.
        Queued records finish later, inside the frame that frees their pool
        slot; rejected records return immediately with ``rejected`` set and
        ``reject_reason`` naming the admission stage that shed them.
        ``on_complete`` fires exactly once in every case.  ``tenant``
        defaults to the pool name, so untagged traffic falls back to
        per-pool isolation.
        """
        self.scheduler.get_pool(pool)
        record = QueryRecord(
            name=name or f"query-{len(self.records)}",
            pool=pool,
            tenant=tenant or pool,
            arrived_at=self.context.now,
            cache_key=cache_key,
            on_complete=on_complete,
        )
        self.records.append(record)
        self.stats.submitted += 1
        state = self.tenant_state(record.tenant)
        if state is not None:
            state.submitted += 1
            now = self.context.now
            if state.breaker is not None and not state.breaker.allow(now):
                return self._reject(record, "circuit-open", state)
            policy = state.policy
            if (
                policy.max_in_flight is not None
                and state.in_flight >= policy.max_in_flight
            ):
                return self._reject(record, "quota", state)
            if state.bucket is not None and not state.bucket.try_take(now):
                self.stats.throttled += 1
                return self._reject(record, "throttled", state)
        if cache_key is not None and self.result_cache is not None:
            hit, value = self.result_cache.lookup(cache_key)
            if hit:
                return self._complete_from_cache(record, fn, value, state)
        if state is not None:
            state.admitted += 1
            state.in_flight += 1
        cap = self._caps.get(pool)
        if cap is not None and self._active.get(pool, 0) >= cap:
            if len(self._queue) >= self.config.max_queue:
                if state is not None:
                    # Undo the admission accounting; the query never ran.
                    state.admitted -= 1
                    state.in_flight -= 1
                return self._reject(record, "queue-full", state)
            self._queue.append((record, fn))
            if len(self._queue) > self.stats.queued_peak:
                self.stats.queued_peak = len(self._queue)
            self._journal("submitted", record, queued=True)
            return record
        self._journal("submitted", record)
        self._execute(record, fn)
        return record

    def run_query(
        self,
        fn: Callable[[], Any],
        pool: str = DEFAULT_POOL,
        name: Optional[str] = None,
        tenant: Optional[str] = None,
        cache_key: Optional[str] = None,
    ) -> Any:
        """Blocking surface for top-level drivers: submit, pump, return.

        Raises:
            JobRejected: when admission control sheds the query.
            EngineError: when a queued query can never run (no events left),
                or the query itself failed.
        """
        record = self.submit_query(
            fn, pool=pool, name=name, tenant=tenant, cache_key=cache_key
        )
        if record.rejected:
            raise JobRejected(pool, record.reject_reason or "admission rejected")
        env = self.context.env
        while not record.done:
            if not env.events:
                raise EngineError(
                    "job server stalled: query queued but no pending events"
                )
            env.step()
            self.scheduler.pump()
        if record.error is not None:
            raise record.error
        return record.result

    # ------------------------------------------------------------------
    # Admission outcomes
    # ------------------------------------------------------------------
    def _reject(
        self, record: QueryRecord, reason: str, state: Optional[TenantState]
    ) -> QueryRecord:
        record.rejected = True
        record.reject_reason = reason
        record.done = True
        record.finished_at = self.context.now
        self.stats.rejected += 1
        self.stats.rejected_by_pool[record.pool] = (
            self.stats.rejected_by_pool.get(record.pool, 0) + 1
        )
        self.stats.rejected_by_reason[reason] = (
            self.stats.rejected_by_reason.get(reason, 0) + 1
        )
        if state is not None:
            state.note_rejection(reason)
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.inc("server.queries_rejected")
            obs.metrics.inc(f"server.rejected.{reason}")
            obs.bus.emit(SpanEvent(
                kind="query", name=record.name, start=record.arrived_at,
                pool=record.pool, status="rejected",
                attrs={"reason": reason, "tenant": record.tenant},
            ))
        self._journal("rejected", record, reason=reason)
        self._fire_on_complete(record)
        return record

    def _complete_from_cache(
        self,
        record: QueryRecord,
        fn: Callable[[], Any],
        value: Any,
        state: Optional[TenantState],
    ) -> QueryRecord:
        """Finish a query instantly from the shared result cache.

        A hit consumes no pool slot and no simulated time — unless the
        cache runs in ``validate`` mode, where the query recomputes anyway
        (spending its normal latency) and the hit is invariant-checked
        against the fresh result.
        """
        assert self.result_cache is not None
        record.started_at = record.arrived_at
        if self.result_cache.validate:
            self.result_cache.check(record.cache_key, value, fn())
        record.result = value
        record.cached = True
        record.ok = True
        record.done = True
        record.finished_at = self.context.now
        self.stats.completed += 1
        self.stats.cache_hits += 1
        if state is not None:
            state.admitted += 1
            state.completed += 1
            state.cache_hits += 1
            if state.breaker is not None:
                state.breaker.record_success(self.context.now)
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.inc("server.queries_completed")
            obs.metrics.inc("server.cache_hits")
            obs.bus.emit(SpanEvent(
                kind="query", name=record.name, start=record.arrived_at,
                end=record.finished_at, pool=record.pool, status="cached",
                attrs={"tenant": record.tenant},
            ))
        self._journal("submitted", record)
        self._journal("finished", record, ok=True, cached=True,
                      result=repr(record.result))
        self._fire_on_complete(record)
        return record

    # ------------------------------------------------------------------
    # Execution core
    # ------------------------------------------------------------------
    def _execute(self, record: QueryRecord, fn: Callable[[], Any]) -> None:
        pool = record.pool
        self._active[pool] = self._active.get(pool, 0) + 1
        record.started_at = self.context.now
        self._journal("started", record)
        try:
            with self.context.job_pool(pool):
                try:
                    record.result = fn()
                    record.ok = True
                    self.stats.completed += 1
                except Exception as exc:
                    # Catch *everything* a query can raise, not just
                    # EngineError: an escaping KeyError used to leave the
                    # record done=True with error=None and the failure
                    # uncounted, so slo_report disagreed with reality.
                    # BaseException (KeyboardInterrupt, SystemExit) still
                    # propagates — those tear the whole simulation down.
                    record.error = exc
                    self.stats.failed += 1
        finally:
            record.finished_at = self.context.now
            record.done = True
            self._active[pool] -= 1
            state = self.tenant_state(record.tenant) if record.tenant else None
            if state is not None:
                state.in_flight -= 1
                if record.ok:
                    state.completed += 1
                    if state.breaker is not None:
                        state.breaker.record_success(self.context.now)
                else:
                    state.failed += 1
                    if state.breaker is not None:
                        state.breaker.record_failure(self.context.now)
            if (
                record.ok
                and record.cache_key is not None
                and self.result_cache is not None
            ):
                self.result_cache.put(record.cache_key, record.result)
            obs = self.context.obs
            if obs.enabled:
                obs.metrics.inc(
                    "server.queries_completed" if record.ok else "server.queries_failed"
                )
                if record.queue_delay is not None:
                    obs.metrics.observe(f"server.queue_delay.{pool}", record.queue_delay)
                obs.bus.emit(SpanEvent(
                    kind="query",
                    name=record.name,
                    start=record.arrived_at,
                    end=record.finished_at,
                    pool=pool,
                    status="complete" if record.ok else "failed",
                    attrs={"queue_delay": record.queue_delay,
                           "tenant": record.tenant},
                ))
            self._journal(
                "finished", record, ok=record.ok,
                error=(f"{type(record.error).__name__}: {record.error}"
                       if record.error is not None else None),
                result=repr(record.result) if record.ok else None,
            )
            self._fire_on_complete(record)
            self._drain()

    def _fire_on_complete(self, record: QueryRecord) -> None:
        callback = record.on_complete
        if callback is not None:
            record.on_complete = None
            callback(record)

    def _drain(self) -> None:
        """Run queued queries whose pools regained capacity (FIFO per pool).

        One non-recursive work loop: the guard stays on for the *entire*
        drain, including around each nested ``_execute`` — so when a
        drained query's own epilogue calls ``_drain`` again, that inner
        call returns immediately and the outer loop rescans the queue.
        (The old implementation switched the guard off around ``_execute``,
        which made every drained completion re-enter ``_drain`` recursively:
        a deep queue burned one Python stack frame per queued query.)
        """
        if self._draining:
            return
        self._draining = True
        try:
            progressed = True
            while progressed:
                progressed = False
                for i, (record, fn) in enumerate(self._queue):
                    cap = self._caps.get(record.pool)
                    if cap is None or self._active.get(record.pool, 0) < cap:
                        del self._queue[i]
                        self._execute(record, fn)
                        progressed = True
                        break
        finally:
            self._draining = False

    # ------------------------------------------------------------------
    # Restart / recovery
    # ------------------------------------------------------------------
    def resume(
        self, registry: Mapping[str, Callable[[], Any]]
    ) -> List[QueryRecord]:
        """Re-submit every journalled query that never finished.

        Reads this server's own journal (``config.journal_path``), finds
        queries that were admitted but have no ``finished``/``rejected``
        event — the in-flight and queued work a crashed server dropped —
        and resubmits them in original submission order through the full
        admission path.  ``registry`` maps query names to callables (query
        bodies cannot be serialised; the restarting process re-registers
        them, like prepared statements).  Names missing from the registry
        are skipped and reported by returning no record for them.
        """
        from repro.server.journal import pending_queries

        if self.config.journal_path is None:
            raise RuntimeError("resume() requires a configured journal_path")
        resumed: List[QueryRecord] = []
        for entry in pending_queries(self.config.journal_path):
            fn = registry.get(entry.name)
            if fn is None:
                continue
            resumed.append(self.submit_query(
                fn,
                pool=entry.pool,
                name=entry.name,
                tenant=entry.tenant,
                cache_key=entry.cache_key,
            ))
        return resumed

    def _journal(self, event: str, record: QueryRecord, **fields: Any) -> None:
        if self.journal is None:
            return
        self.journal.record(
            event,
            name=record.name,
            pool=record.pool,
            tenant=record.tenant,
            cache_key=record.cache_key,
            t=self.context.now,
            **fields,
        )

    def close(self) -> None:
        """Flush and close the journal (idempotent)."""
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # Driving and reporting
    # ------------------------------------------------------------------
    def drive_until(self, t: float) -> int:
        """Advance simulated time (client arrivals fire as they come due)."""
        return self.context.env.run_until(t)

    def queued(self) -> int:
        return len(self._queue)

    def active(self, pool: Optional[str] = None) -> int:
        if pool is not None:
            return self._active.get(pool, 0)
        return sum(self._active.values())

    def tenant_report(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant admission/rejection/breaker summary (tenancy on)."""
        return {
            name: state.describe() for name, state in sorted(self.tenants.items())
        }

    def slo_report(self) -> Dict[str, Any]:
        """Per-pool and overall SLO summary in simulated seconds."""
        report: Dict[str, Any] = {
            "scheduling_policy": self.scheduler.scheduling_policy,
            "submitted": self.stats.submitted,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "rejected": self.stats.rejected,
            "queued_peak": self.stats.queued_peak,
            "pools": {},
        }
        if self.stats.rejected_by_reason:
            report["rejected_by_reason"] = dict(
                sorted(self.stats.rejected_by_reason.items())
            )
        if self.config.tenancy is not None:
            report["tenants"] = self.tenant_report()
        if self.result_cache is not None:
            report["result_cache"] = self.result_cache.describe()
        by_pool: Dict[str, List[QueryRecord]] = {}
        for record in self.records:
            by_pool.setdefault(record.pool, []).append(record)
        for pool, records in sorted(by_pool.items()):
            responses = [r.response for r in records if r.response is not None and r.ok]
            delays = [r.queue_delay for r in records if r.queue_delay is not None]
            report["pools"][pool] = {
                "queries": len(records),
                "completed": sum(1 for r in records if r.ok),
                "failed": sum(1 for r in records if r.error is not None),
                "rejected": sum(1 for r in records if r.rejected),
                "cached": sum(1 for r in records if r.cached),
                "p50_response": percentile(responses, 0.50),
                "p95_response": percentile(responses, 0.95),
                "p99_response": percentile(responses, 0.99),
                "max_response": max(responses) if responses else None,
                "mean_queue_delay": (
                    sum(delays) / len(delays) if delays else None
                ),
            }
        return report
