"""Multi-tenant job server over the Flint engine.

The engine's scheduler multiplexes concurrent jobs and shares slots across
pools; this package is the serving layer on top of it: admission control
(bounded queue, per-pool concurrency caps, rejection stats), named sessions
holding shared cached RDDs, per-query SLO metrics in simulated seconds, and
seeded open/closed-loop client generators for driving it.
"""

from repro.server.clients import ClosedLoopClient, OpenLoopClient
from repro.server.jobserver import (
    JobRejected,
    JobServer,
    PoolConfig,
    QueryRecord,
    ServerConfig,
    ServerStats,
)
from repro.server.session import Session

__all__ = [
    "ClosedLoopClient",
    "JobRejected",
    "JobServer",
    "OpenLoopClient",
    "PoolConfig",
    "QueryRecord",
    "ServerConfig",
    "ServerStats",
    "Session",
]
