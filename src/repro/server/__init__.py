"""Multi-tenant job server over the Flint engine.

The engine's scheduler multiplexes concurrent jobs and shares slots across
pools; this package is the serving layer on top of it: admission control
(bounded queue, per-pool concurrency caps, rejection stats), per-tenant
isolation (quotas, token-bucket rate limits, circuit breakers), a durable
job-state journal for restart recovery, a shared result cache keyed by
lineage fingerprint, named sessions holding shared cached RDDs, per-query
SLO metrics in simulated seconds, seeded open/closed-loop client
generators, and an open-loop saturation load generator.
"""

from repro.server.clients import ClosedLoopClient, OpenLoopClient
from repro.server.jobserver import (
    JobRejected,
    JobServer,
    PoolConfig,
    QueryRecord,
    ServerConfig,
    ServerStats,
)
from repro.server.journal import JobJournal, pending_queries, replay
from repro.server.loadgen import LoadPoint, run_load_point, saturation_curve
from repro.server.result_cache import (
    CacheInvariantError,
    ResultCache,
    lineage_fingerprint,
)
from repro.server.session import Session
from repro.server.tenancy import (
    CircuitBreaker,
    RetryPolicy,
    TenancyConfig,
    TenantPolicy,
    TenantState,
    TokenBucket,
)

__all__ = [
    "CacheInvariantError",
    "CircuitBreaker",
    "ClosedLoopClient",
    "JobJournal",
    "JobRejected",
    "JobServer",
    "LoadPoint",
    "OpenLoopClient",
    "PoolConfig",
    "QueryRecord",
    "ResultCache",
    "RetryPolicy",
    "ServerConfig",
    "ServerStats",
    "Session",
    "TenancyConfig",
    "TenantPolicy",
    "TenantState",
    "TokenBucket",
    "lineage_fingerprint",
    "pending_queries",
    "replay",
    "run_load_point",
    "saturation_curve",
]
