"""Named sessions: registries of shared cached RDDs.

The paper's interactive configuration is a long-lived Spark application with
tables cached in memory, queried by many arriving clients (§5, Fig 9).  A
``Session`` is that shared state made explicit: datasets are registered once
under stable names, every client query resolves them by name (counting hits
and misses), and closing the session unpersists everything it owns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext
    from repro.engine.rdd import RDD


class Session:
    """One named registry of cached RDDs shared across queries."""

    def __init__(self, name: str, context: "FlintContext"):
        self.name = name
        self.context = context
        self.created_at = context.now
        self.closed = False
        self._registry: Dict[str, "RDD"] = {}
        self.hits = 0
        self.misses = 0

    def _require_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"session {self.name!r} is closed")

    def put(self, name: str, rdd: "RDD", persist: bool = True) -> "RDD":
        """Register a dataset under ``name``; persists it unless told not to."""
        self._require_open()
        if persist and not rdd.persisted:
            rdd.persist()
        self._registry[name] = rdd
        return rdd

    def get(self, name: str) -> Optional["RDD"]:
        """The registered dataset, or None (counted as a miss)."""
        self._require_open()
        rdd = self._registry.get(name)
        if rdd is None:
            self.misses += 1
        else:
            self.hits += 1
        return rdd

    def names(self) -> List[str]:
        return sorted(self._registry)

    def drop(self, name: str) -> bool:
        """Unregister and unpersist one dataset; True if it existed."""
        self._require_open()
        rdd = self._registry.pop(name, None)
        if rdd is None:
            return False
        if rdd.persisted:
            rdd.unpersist()
        return True

    def close(self) -> None:
        """Drop every registered dataset and refuse further use."""
        if self.closed:
            return
        for name in self.names():
            self.drop(name)
        self.closed = True

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "created_at": self.created_at,
            "datasets": self.names(),
            "hits": self.hits,
            "misses": self.misses,
            "closed": self.closed,
        }
