"""Shared query-result cache keyed by lineage fingerprint.

Interactive multi-tenancy is repetitive: dashboards and analysts issue the
*same* query against the *same* cached tables over and over, across
sessions.  The result cache short-circuits those at the server's front door:
a query that declares its lineage fingerprint returns the shared result
instantly on a hit — no scheduler round, no tasks, zero simulated latency —
while misses run normally and fill the cache.

The key is a *structural* fingerprint of the query's RDD plan:
:func:`lineage_fingerprint` walks the lineage DAG in deterministic BFS
order and hashes, per node, the operator type, partitioning, cost hints,
edge structure, and a best-effort description of every closure (bytecode,
constants, defaults, captured cells) and source dataset.  Two plans built
independently — by different sessions, in different submission orders — that
describe the same computation hash identically; plans differing in any
operator, parameter, or input diverge.

Fingerprinting closures is inherently best-effort (Python gives no
canonical form for a lambda), so the cache is *invariant-checkable*: with
``validate=True`` every hit recomputes the query anyway and raises
:class:`CacheInvariantError` on any mismatch.  The chaos harness and the
equivalence tests run in this mode; production-shaped runs trust the
fingerprint and take the latency win.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Tuple

from repro.engine.lineage import ancestors

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rdd import RDD


class CacheInvariantError(AssertionError):
    """A validated cache hit disagreed with recomputation."""


#: Infrastructure attributes that never affect a plan's results.
_SKIP_ATTRS = {
    "context",
    "dependencies",
    "rdd_id",
    "dependents",
    "persisted",
    "disk_persist",
    "manual_checkpoint",
    "_record_size_memo",
}

_MAX_DEPTH = 6


def _feed(hasher: "hashlib._Hash", token: str) -> None:
    hasher.update(token.encode("utf-8", "backslashreplace"))
    hasher.update(b"\x00")


def _describe_value(hasher: "hashlib._Hash", value: Any, depth: int = 0) -> None:
    """Feed a deterministic description of ``value`` into the hasher.

    Memory addresses never leak into the digest: callables are described by
    module/qualname/bytecode/constants, containers element-wise, and opaque
    objects by type name only (their ``repr`` may embed ``0x...`` ids).
    """
    if depth > _MAX_DEPTH:
        _feed(hasher, "depth-capped")
        return
    if value is None or isinstance(value, (bool, int, float, str)):
        _feed(hasher, f"{type(value).__name__}:{value!r}")
    elif isinstance(value, bytes):
        _feed(hasher, f"bytes:{hashlib.sha256(value).hexdigest()}")
    elif isinstance(value, (list, tuple)):
        _feed(hasher, f"{type(value).__name__}[{len(value)}]")
        for item in value:
            _describe_value(hasher, item, depth + 1)
    elif isinstance(value, dict):
        _feed(hasher, f"dict[{len(value)}]")
        for key in sorted(value, key=repr):
            _describe_value(hasher, key, depth + 1)
            _describe_value(hasher, value[key], depth + 1)
    elif isinstance(value, (set, frozenset)):
        _feed(hasher, f"set[{len(value)}]")
        for item in sorted(value, key=repr):
            _describe_value(hasher, item, depth + 1)
    elif callable(value):
        _describe_callable(hasher, value, depth)
    else:
        # Opaque object: type identity only (repr may carry addresses).
        _feed(hasher, f"obj:{type(value).__module__}.{type(value).__qualname__}")
        simple = getattr(value, "__dict__", None)
        if isinstance(simple, dict) and depth < _MAX_DEPTH:
            for key in sorted(simple):
                if key.startswith("_"):
                    continue
                inner = simple[key]
                if isinstance(inner, (bool, int, float, str, type(None))):
                    _feed(hasher, f"attr:{key}")
                    _describe_value(hasher, inner, depth + 1)


def _describe_callable(hasher: "hashlib._Hash", fn: Any, depth: int) -> None:
    code = getattr(fn, "__code__", None)
    if code is None:
        # Builtin / bound method / functools.partial.
        func = getattr(fn, "func", None)
        if func is not None:  # partial
            _feed(hasher, "partial")
            _describe_callable(hasher, func, depth + 1)
            _describe_value(hasher, getattr(fn, "args", ()), depth + 1)
            _describe_value(hasher, getattr(fn, "keywords", {}) or {}, depth + 1)
            return
        inner = getattr(fn, "__func__", None)
        if inner is not None:  # bound method: descend to the function
            _feed(hasher, "bound")
            _describe_callable(hasher, inner, depth + 1)
            owner = getattr(fn, "__self__", None)
            _describe_value(hasher, owner, depth + 1)
            return
        _feed(
            hasher,
            f"callable:{getattr(fn, '__module__', '?')}."
            f"{getattr(fn, '__qualname__', type(fn).__name__)}",
        )
        return
    _feed(hasher, f"fn:{fn.__module__}.{fn.__qualname__}")
    _feed(hasher, code.co_code.hex())
    _describe_value(hasher, code.co_consts, depth + 1)
    _describe_value(hasher, getattr(fn, "__defaults__", None), depth + 1)
    cells = getattr(fn, "__closure__", None)
    if cells:
        _feed(hasher, f"cells[{len(cells)}]")
        for cell in cells:
            try:
                _describe_value(hasher, cell.cell_contents, depth + 1)
            except ValueError:  # empty cell
                _feed(hasher, "cell:empty")


def lineage_fingerprint(
    rdd: "RDD", action: str = "collect", params: Iterable[Any] = ()
) -> str:
    """Structural sha256 of ``rdd``'s lineage plus the action applied to it.

    The walk order is ``[rdd] + ancestors(rdd)`` (deterministic BFS), and
    dependency edges hash as positions in that walk — so the digest is
    independent of ``rdd_id`` allocation order and stable across sessions
    and processes for structurally identical plans.
    """
    hasher = hashlib.sha256()
    _feed(hasher, f"action:{action}")
    for param in params:
        _describe_value(hasher, param)
    walk = [rdd] + ancestors(rdd)
    position = {node.rdd_id: i for i, node in enumerate(walk)}
    for node in walk:
        _feed(hasher, f"node:{type(node).__name__}")
        _feed(hasher, f"parts:{node.num_partitions}")
        _feed(hasher, f"cost:{node.compute_multiplier!r}")
        _feed(hasher, f"size:{node._record_size!r}")
        for dep in node.dependencies:
            _feed(hasher, f"edge:{type(dep).__name__}:{position[dep.rdd.rdd_id]}")
        for key in sorted(vars(node)):
            if key in _SKIP_ATTRS or key == "name":
                continue
            _feed(hasher, f"attr:{key}")
            _describe_value(hasher, vars(node)[key])
    return hasher.hexdigest()


class ResultCache:
    """Bounded LRU of finished query results, shared across sessions.

    Entries are keyed by :func:`lineage_fingerprint` digests; eviction is
    least-recently-used at ``capacity``.  ``validate=True`` makes every hit
    recompute and compare (see module docstring) — the invariant-checked
    mode used by chaos runs and equivalence tests.
    """

    def __init__(self, capacity: int = 256, validate: bool = False):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.validate = validate
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.validated = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Tuple[bool, Optional[Any]]:
        """(hit?, value); counts the access and refreshes LRU order."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def check(self, key: str, cached: Any, recomputed: Any) -> None:
        """Assert a validated hit equals its recomputation."""
        self.validated += 1
        if cached != recomputed:
            raise CacheInvariantError(
                f"result cache entry {key[:12]}... diverged from "
                f"recomputation: cached={cached!r} recomputed={recomputed!r}"
            )

    def describe(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "validated": self.validated,
        }
