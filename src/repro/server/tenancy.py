"""Per-tenant isolation policies: quotas, rate limits, breakers, retries.

A *tenant* is the unit of isolation at the job server's front door — a
session, a named pool, or any caller-chosen identity string.  Massive
multi-tenancy means one misbehaving tenant (a retry storm, a query-of-death
loop, a runaway dashboard) must degrade *its own* service, never the
cluster's.  Four policy objects provide that, all on the simulated clock and
all deterministic under seeds:

- :class:`TokenBucket` — per-tenant admission rate limit (``rate`` tokens
  per simulated second, ``burst`` capacity).  Arrivals beyond the refill
  rate are *throttled*: shed immediately with a distinct reason so clients
  can back off rather than queue-jam everyone.
- A per-tenant **quota** (``max_in_flight``) bounds queued+running queries,
  so no tenant can monopolise the shared admission queue.
- :class:`CircuitBreaker` — closed → open → half-open.  A tenant whose
  queries fail repeatedly (poisoned query, broken dataset) is shed at
  admission for ``reset_timeout`` simulated seconds, then probed with a
  bounded number of half-open queries before fully closing again.
- :class:`RetryPolicy` — seeded exponential backoff with jitter, used by
  clients to retry shed queries without synchronised thundering herds.

:class:`TenancyConfig` maps tenant names to policies (a default plus
overrides); :class:`TenantState` is the live bookkeeping the
:class:`~repro.server.jobserver.JobServer` keeps per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.simulation.rng import SeededRNG


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff for retrying shed queries.

    ``backoff(attempt, rng)`` is deterministic given the rng stream: the
    base delay doubles (``multiplier``) per attempt up to ``max_delay``,
    plus a uniform jitter fraction so a fleet of clients sharing a policy
    (but not an rng stream) never retries in lockstep.
    """

    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    max_attempts: int = 5
    #: Fraction of the backoff added as a uniform random jitter in
    #: ``[0, jitter * backoff)``; 0 disables jitter entirely.
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("retry multiplier must be >= 1")
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def backoff(self, attempt: int, rng: SeededRNG) -> float:
        """Delay before retry number ``attempt`` (1-based), in simulated s."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            raw += raw * self.jitter * float(rng.uniform())
        return raw


class TokenBucket:
    """A token bucket on the simulated clock: ``rate`` tokens/s, ``burst`` cap.

    The bucket starts full, refills continuously (fractional tokens), and
    never buffers beyond ``burst`` — a tenant idle for an hour gets a burst,
    not an hour of stored credit.
    """

    def __init__(self, rate: float, burst: float = 1.0, start: float = 0.0):
        if rate <= 0:
            raise ValueError("token rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_refill = float(start)

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._last_refill = max(self._last_refill, now)

    def try_take(self, now: float) -> bool:
        """Consume one token if available; False means *throttle now*."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


#: Circuit-breaker states (string-valued for cheap reporting).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-tenant breaker: closed → open → half-open on the simulated clock.

    ``failure_threshold`` *consecutive* failures open the circuit; while
    open, every admission attempt is shed without touching the engine.
    After ``reset_timeout`` simulated seconds the breaker admits up to
    ``half_open_max`` probe queries: one success closes it (the failure
    count resets), one failure re-opens it for another full timeout.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 60.0,
        half_open_max: int = 1,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = float(reset_timeout)
        self.half_open_max = half_open_max
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._half_open_inflight = 0
        # Lifetime transition counters (reporting only).
        self.times_opened = 0
        self.shed = 0

    def allow(self, now: float) -> bool:
        """True if a query may be admitted at simulated time ``now``."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if self.opened_at is not None and now >= self.opened_at + self.reset_timeout:
                self.state = BREAKER_HALF_OPEN
                self._half_open_inflight = 0
            else:
                self.shed += 1
                return False
        # Half-open: admit a bounded number of probes.
        if self._half_open_inflight < self.half_open_max:
            self._half_open_inflight += 1
            return True
        self.shed += 1
        return False

    def record_success(self, now: float) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            self.opened_at = None
            self._half_open_inflight = 0
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN or (
            self.state == BREAKER_CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BREAKER_OPEN
            self.opened_at = now
            self.times_opened += 1
            self._half_open_inflight = 0


@dataclass(frozen=True)
class TenantPolicy:
    """Isolation limits for one tenant; ``None`` disables that dimension."""

    #: Quota: queued + running queries at once (None = unlimited).
    max_in_flight: Optional[int] = None
    #: Token-bucket refill rate, queries per simulated second (None = off).
    rate: Optional[float] = None
    #: Token-bucket capacity (only meaningful with ``rate``).
    burst: float = 4.0
    #: Consecutive failures that open the circuit (None = breaker off).
    breaker_threshold: Optional[int] = None
    #: Simulated seconds the circuit stays open before half-open probes.
    breaker_reset: float = 60.0
    #: Probe queries admitted while half-open.
    breaker_half_open_max: int = 1


@dataclass(frozen=True)
class TenancyConfig:
    """A default :class:`TenantPolicy` plus named per-tenant overrides."""

    default: TenantPolicy = TenantPolicy()
    overrides: Mapping[str, TenantPolicy] = field(default_factory=dict)

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.overrides.get(tenant, self.default)


class TenantState:
    """Live admission bookkeeping for one tenant inside the job server."""

    def __init__(self, name: str, policy: TenantPolicy, now: float):
        self.name = name
        self.policy = policy
        self.in_flight = 0
        self.bucket: Optional[TokenBucket] = (
            TokenBucket(policy.rate, policy.burst, start=now)
            if policy.rate is not None
            else None
        )
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(
                policy.breaker_threshold,
                policy.breaker_reset,
                policy.breaker_half_open_max,
            )
            if policy.breaker_threshold is not None
            else None
        )
        self.submitted = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.cache_hits = 0
        #: Shed counts by reason ("quota", "throttled", "circuit-open",
        #: "queue-full").
        self.rejections: Dict[str, int] = {}

    def note_rejection(self, reason: str) -> None:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1

    def describe(self) -> Dict[str, object]:
        return {
            "tenant": self.name,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "in_flight": self.in_flight,
            "cache_hits": self.cache_hits,
            "rejections": dict(sorted(self.rejections.items())),
            "breaker_state": self.breaker.state if self.breaker else None,
            "breaker_times_opened": (
                self.breaker.times_opened if self.breaker else 0
            ),
            "tokens": round(self.bucket.tokens, 6) if self.bucket else None,
        }
