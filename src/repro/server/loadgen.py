"""Open-loop saturation load generator: thousands of seeded clients.

The ROADMAP's "millions of users" question for the job server is not "does
one analyst get low latency next to a batch job" (Fig 9 answers that) but
"where does the front door *saturate*, and how does it fail past that
point".  The classic methodology (open-loop load, as in the Flink/Spark
cloud benchmarking literature) drives Poisson arrivals at a fixed offered
rate — blind to completions, so queues grow without bound when the system
falls behind — and reads the knee off the throughput-vs-p95 curve.

:func:`run_load_point` builds a fresh deterministic universe, spawns
``num_clients`` seeded :class:`~repro.server.clients.OpenLoopClient`\\ s
against one interactive pool, and drives the event loop to completion.  The
pool's concurrency cap is what makes thousands of clients *simulable*: an
admitted query executes inline inside its arrival frame, so uncapped
overload would nest Python frames one per concurrent query — capped, excess
arrivals queue and run in the server's non-recursive drain loop instead
(bounded stack at any load).  :func:`saturation_curve` sweeps offered rates
and returns one :class:`LoadPoint` per rate; everything is bit-deterministic
under ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.server.clients import OpenLoopClient
from repro.server.jobserver import JobServer, PoolConfig, ServerConfig, percentile
from repro.server.tenancy import TenancyConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext


@dataclass
class LoadPoint:
    """One point on the saturation curve, all in simulated units."""

    offered_rps: float
    clients: int
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    throttled: int = 0
    #: Achieved goodput: completions per simulated second of makespan.
    throughput_rps: float = 0.0
    p50_response: Optional[float] = None
    p95_response: Optional[float] = None
    p99_response: Optional[float] = None
    max_response: Optional[float] = None
    queued_peak: int = 0
    sim_makespan: float = 0.0
    scheduler_stats: Dict[str, object] = field(default_factory=dict)
    sizing: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "offered_rps": self.offered_rps,
            "clients": self.clients,
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "throttled": self.throttled,
            "throughput_rps": self.throughput_rps,
            "p50_response": self.p50_response,
            "p95_response": self.p95_response,
            "p99_response": self.p99_response,
            "max_response": self.max_response,
            "queued_peak": self.queued_peak,
            "sim_makespan": self.sim_makespan,
        }


def _default_query(ctx: "FlintContext"):
    """A small shared interactive query: count over one cached partition."""
    rdd = ctx.parallelize(list(range(64)), 1, record_size=100_000)
    rdd.persist()
    rdd.count()  # materialise once so every query reads the shared cache
    return lambda: rdd.count()


def run_load_point(
    offered_rps: float,
    num_clients: int = 1000,
    queries_per_client: int = 1,
    num_workers: int = 4,
    seed: int = 7,
    pool_cap: int = 8,
    max_queue: int = 512,
    tenancy: Optional[TenancyConfig] = None,
    query_factory=None,
) -> LoadPoint:
    """Drive one offered rate to completion; returns its :class:`LoadPoint`.

    ``offered_rps`` is the *aggregate* arrival rate: each client draws
    Poisson arrivals at ``offered_rps / num_clients``.  The run ends when
    every client has issued its queries and every record is done (the
    open-loop tail drains through the capped pool's queue).
    """
    from repro.analysis.experiments import build_engine_context

    if offered_rps <= 0:
        raise ValueError("offered_rps must be positive")
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    ctx = build_engine_context(num_workers=num_workers, seed=seed)
    server = JobServer(ctx, ServerConfig(
        scheduling_policy="fair",
        max_queue=max_queue,
        pools=(
            PoolConfig("interactive", policy="fifo", weight=1.0,
                       priority="interactive", max_concurrent=pool_cap),
        ),
        tenancy=tenancy,
    ))
    query = (query_factory or _default_query)(ctx)
    per_client_rate = offered_rps / num_clients
    clients = [
        OpenLoopClient(
            server, query, rate=per_client_rate, pool="interactive",
            name=f"lg-{i}", max_queries=queries_per_client, master_seed=seed,
        )
        for i in range(num_clients)
    ]
    for client in clients:
        client.start()
    expected = num_clients * queries_per_client
    env = ctx.env

    def settled() -> bool:
        stats = server.stats
        finished = stats.completed + stats.failed + stats.rejected
        return stats.submitted >= expected and finished >= stats.submitted

    while not settled():
        if not env.events:
            raise RuntimeError(
                "load generator stalled: arrivals pending but no events"
            )
        env.step()
        ctx.scheduler.pump()

    responses = [r.response for r in server.records
                 if r.response is not None and r.ok]
    finished_times = [r.finished_at for r in server.records
                      if r.finished_at is not None]
    makespan = max(finished_times) if finished_times else 0.0
    stats = server.stats
    import dataclasses

    return LoadPoint(
        offered_rps=offered_rps,
        clients=num_clients,
        submitted=stats.submitted,
        completed=stats.completed,
        rejected=stats.rejected,
        throttled=stats.throttled,
        throughput_rps=(
            round(stats.completed / makespan, 6) if makespan else 0.0
        ),
        p50_response=percentile(responses, 0.50),
        p95_response=percentile(responses, 0.95),
        p99_response=percentile(responses, 0.99),
        max_response=max(responses) if responses else None,
        queued_peak=stats.queued_peak,
        sim_makespan=round(makespan, 6),
        scheduler_stats=dataclasses.asdict(ctx.scheduler.stats),
        sizing={
            "record_size_memo_hits": ctx.record_size_memo_hits,
            "record_size_memo_misses": ctx.record_size_memo_misses,
        },
    )


def saturation_curve(
    offered_rates: Sequence[float],
    num_clients: int = 1000,
    queries_per_client: int = 1,
    num_workers: int = 4,
    seed: int = 7,
    pool_cap: int = 8,
    max_queue: int = 512,
    tenancy: Optional[TenancyConfig] = None,
) -> List[LoadPoint]:
    """One :class:`LoadPoint` per offered rate (fresh universe per point)."""
    if len(offered_rates) < 1:
        raise ValueError("at least one offered rate is required")
    return [
        run_load_point(
            rate,
            num_clients=num_clients,
            queries_per_client=queries_per_client,
            num_workers=num_workers,
            seed=seed,
            pool_cap=pool_cap,
            max_queue=max_queue,
            tenancy=tenancy,
        )
        for rate in offered_rates
    ]
