"""Seeded client generators that drive a :class:`~repro.server.jobserver.JobServer`.

Two canonical load models from the queueing literature:

- **Closed loop** — one outstanding query per client; the next arrival is
  scheduled *after* the previous completion plus an exponential think time.
  Latency feedback throttles the client, like an analyst at a console.
- **Open loop** — Poisson arrivals at a fixed rate, blind to completions.
  Queries pile up when the system falls behind, like a public endpoint.

Both are deterministic given ``master_seed``: interarrival draws come from a
:class:`~repro.simulation.rng.SeededRNG` child stream keyed by the client
name, and arrivals ride the simulation's event queue via ``schedule_in``.
Clients never pump the event loop themselves — they submit with a completion
callback, so any number of them can interleave with batch jobs in flight.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.simulation.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.jobserver import JobServer, QueryRecord


class ClosedLoopClient:
    """Issues the next query only after the previous one completes."""

    def __init__(
        self,
        server: "JobServer",
        query_fn: Callable[[], Any],
        pool: str = "interactive",
        name: str = "client",
        think_time: float = 5.0,
        max_queries: int = 10,
        master_seed: int = 0,
    ):
        self.server = server
        self.query_fn = query_fn
        self.pool = pool
        self.name = name
        self.think_time = think_time
        self.max_queries = max_queries
        self.rng = SeededRNG(master_seed, f"client/{name}")
        self.issued = 0
        self.finished = False
        self.records: List["QueryRecord"] = []

    def start(self, delay: float = 0.0) -> None:
        """Schedule the first arrival ``delay`` simulated seconds from now."""
        self.server.context.env.schedule_in(
            delay, f"{self.name}-arrival", callback=lambda _ev: self._arrive()
        )

    def _arrive(self) -> None:
        self.issued += 1
        self.server.submit_query(
            self.query_fn,
            pool=self.pool,
            name=f"{self.name}-{self.issued}",
            on_complete=self._completed,
        )

    def _completed(self, record: "QueryRecord") -> None:
        self.records.append(record)
        if self.issued >= self.max_queries:
            self.finished = True
            return
        think = float(self.rng.exponential(self.think_time))
        self.server.context.env.schedule_in(
            think, f"{self.name}-arrival", callback=lambda _ev: self._arrive()
        )


class OpenLoopClient:
    """Poisson arrivals at ``rate`` per simulated second, blind to completions."""

    def __init__(
        self,
        server: "JobServer",
        query_fn: Callable[[], Any],
        rate: float = 0.1,
        pool: str = "interactive",
        name: str = "open-client",
        max_queries: int = 10,
        master_seed: int = 0,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.server = server
        self.query_fn = query_fn
        self.rate = rate
        self.pool = pool
        self.name = name
        self.max_queries = max_queries
        self.rng = SeededRNG(master_seed, f"client/{name}")
        self.issued = 0
        self.finished = False
        self.records: List["QueryRecord"] = []

    def start(self, delay: Optional[float] = None) -> None:
        """Schedule the first arrival (a fresh interarrival draw by default)."""
        if delay is None:
            delay = float(self.rng.exponential(1.0 / self.rate))
        self.server.context.env.schedule_in(
            delay, f"{self.name}-arrival", callback=lambda _ev: self._arrive()
        )

    def _arrive(self) -> None:
        self.issued += 1
        # Schedule the successor before running the query: open-loop arrivals
        # must not inherit the current query's latency.
        if self.issued < self.max_queries:
            gap = float(self.rng.exponential(1.0 / self.rate))
            self.server.context.env.schedule_in(
                gap, f"{self.name}-arrival", callback=lambda _ev: self._arrive()
            )
        else:
            self.finished = True
        self.server.submit_query(
            self.query_fn,
            pool=self.pool,
            name=f"{self.name}-{self.issued}",
            on_complete=self.records.append,
        )
