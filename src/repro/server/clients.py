"""Seeded client generators that drive a :class:`~repro.server.jobserver.JobServer`.

Two canonical load models from the queueing literature:

- **Closed loop** — one outstanding query per client; the next arrival is
  scheduled *after* the previous completion plus an exponential think time.
  Latency feedback throttles the client, like an analyst at a console.
- **Open loop** — Poisson arrivals at a fixed rate, blind to completions.
  Queries pile up when the system falls behind, like a public endpoint.

Both are deterministic given ``master_seed``: interarrival draws come from a
:class:`~repro.simulation.rng.SeededRNG` child stream keyed by the client
name, and arrivals ride the simulation's event queue via ``schedule_in``.
Clients never pump the event loop themselves — they submit with a completion
callback, so any number of them can interleave with batch jobs in flight.

A closed-loop client given a :class:`~repro.server.tenancy.RetryPolicy`
treats a *rejected* query as retryable: it backs off (seeded exponential
delay with jitter) and re-submits the same logical query instead of
silently burning one of its ``max_queries`` — the behaviour of any real
client library in front of a load-shedding server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.simulation.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.jobserver import JobServer, QueryRecord
    from repro.server.tenancy import RetryPolicy


class ClosedLoopClient:
    """Issues the next query only after the previous one completes.

    With ``retry_policy`` set, a rejection triggers a seeded backoff and a
    re-submission of the *same* logical query (it still counts as the same
    ``issued`` sequence number); only when retries are exhausted does the
    client give up on that query and move on through its think time.
    """

    def __init__(
        self,
        server: "JobServer",
        query_fn: Callable[[], Any],
        pool: str = "interactive",
        name: str = "client",
        think_time: float = 5.0,
        max_queries: int = 10,
        master_seed: int = 0,
        tenant: Optional[str] = None,
        cache_key: Optional[str] = None,
        retry_policy: Optional["RetryPolicy"] = None,
    ):
        self.server = server
        self.query_fn = query_fn
        self.pool = pool
        self.name = name
        self.think_time = think_time
        self.max_queries = max_queries
        self.tenant = tenant
        self.cache_key = cache_key
        self.retry_policy = retry_policy
        self.rng = SeededRNG(master_seed, f"client/{name}")
        self.issued = 0
        self.retries = 0
        self.gave_up = 0
        self.finished = False
        self.records: List["QueryRecord"] = []
        self._attempt = 0

    def start(self, delay: float = 0.0) -> None:
        """Schedule the first arrival ``delay`` simulated seconds from now."""
        self.server.context.env.schedule_in(
            delay, f"{self.name}-arrival", callback=lambda _ev: self._arrive()
        )

    def _arrive(self) -> None:
        self.issued += 1
        self._attempt = 0
        self._submit()

    def _submit(self) -> None:
        suffix = f"-r{self._attempt}" if self._attempt else ""
        self.server.submit_query(
            self.query_fn,
            pool=self.pool,
            name=f"{self.name}-{self.issued}{suffix}",
            tenant=self.tenant,
            cache_key=self.cache_key,
            on_complete=self._completed,
        )

    def _completed(self, record: "QueryRecord") -> None:
        self.records.append(record)
        if record.rejected:
            policy = self.retry_policy
            if policy is not None and self._attempt < policy.max_attempts:
                # Shed, not served: back off and re-submit the same logical
                # query.  (Without a policy the old behaviour stood — the
                # rejection burned one of max_queries and the client never
                # retried, so a shed client under-issued forever.)
                self._attempt += 1
                self.retries += 1
                delay = policy.backoff(self._attempt, self.rng)
                self.server.context.env.schedule_in(
                    delay, f"{self.name}-retry",
                    callback=lambda _ev: self._submit(),
                )
                return
            self.gave_up += 1
        if self.issued >= self.max_queries:
            self.finished = True
            return
        think = float(self.rng.exponential(self.think_time))
        self.server.context.env.schedule_in(
            think, f"{self.name}-arrival", callback=lambda _ev: self._arrive()
        )


class OpenLoopClient:
    """Poisson arrivals at ``rate`` per simulated second, blind to completions."""

    def __init__(
        self,
        server: "JobServer",
        query_fn: Callable[[], Any],
        rate: float = 0.1,
        pool: str = "interactive",
        name: str = "open-client",
        max_queries: int = 10,
        master_seed: int = 0,
        tenant: Optional[str] = None,
        cache_key: Optional[str] = None,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.server = server
        self.query_fn = query_fn
        self.rate = rate
        self.pool = pool
        self.name = name
        self.max_queries = max_queries
        self.tenant = tenant
        self.cache_key = cache_key
        self.rng = SeededRNG(master_seed, f"client/{name}")
        self.issued = 0
        self.finished = False
        self.records: List["QueryRecord"] = []

    def start(self, delay: Optional[float] = None) -> None:
        """Schedule the first arrival (a fresh interarrival draw by default)."""
        if delay is None:
            delay = float(self.rng.exponential(1.0 / self.rate))
        self.server.context.env.schedule_in(
            delay, f"{self.name}-arrival", callback=lambda _ev: self._arrive()
        )

    def _arrive(self) -> None:
        self.issued += 1
        # Schedule the successor before running the query: open-loop arrivals
        # must not inherit the current query's latency.
        if self.issued < self.max_queries:
            gap = float(self.rng.exponential(1.0 / self.rate))
            self.server.context.env.schedule_in(
                gap, f"{self.name}-arrival", callback=lambda _ev: self._arrive()
            )
        else:
            self.finished = True
        self.server.submit_query(
            self.query_fn,
            pool=self.pool,
            name=f"{self.name}-{self.issued}",
            tenant=self.tenant,
            cache_key=self.cache_key,
            on_complete=self.records.append,
        )
