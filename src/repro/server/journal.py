"""Durable job-state journal: a JSONL append log of query lifecycles.

Transient-server serving means the *front end* can die too, not just the
workers.  The journal makes the job server's admission state durable: every
query appends ``submitted`` / ``started`` / ``finished`` / ``rejected``
records (simulated timestamps, tenant, pool, cache key, result repr), so a
restarted :class:`~repro.server.jobserver.JobServer` can recover the set of
queries that were admitted but never finished and resume them
deterministically via :meth:`JobServer.resume`.

Query *callables* cannot be serialised faithfully (they close over live RDD
graphs), so recovery is by name: the restarting process supplies a registry
mapping query names back to callables — the same pattern as restart scripts
re-registering their prepared statements.  Replay is pure bookkeeping:
:func:`replay` folds the log into per-query final states, tolerating
duplicate submissions from previous recovery passes (last writer wins).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class JournalEntry:
    """Final replayed state of one journalled query."""

    name: str
    pool: str
    tenant: Optional[str] = None
    cache_key: Optional[str] = None
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    ok: bool = False
    rejected: bool = False
    cached: bool = False
    error: Optional[str] = None
    result_repr: Optional[str] = None
    #: Raw event kinds seen for this query, in order.
    events: List[str] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.finished_at is not None or self.rejected

    @property
    def pending(self) -> bool:
        """Admitted (queued or running) but never finished: resume these."""
        return not self.finished


class JobJournal:
    """Append-only JSONL writer for one server's query lifecycle events.

    Every record is a single JSON object on its own line with sorted keys,
    flushed on write — the durability contract is "whatever made it to the
    line boundary replays".  The file is opened in append mode so a
    restarted server keeps extending the same history.
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        self.entries_written = 0

    def record(self, event: str, **fields: Any) -> None:
        payload = {"event": event}
        for key, value in fields.items():
            if value is not None:
                payload[key] = value
        json.dump(payload, self._fh, sort_keys=True, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()
        self.entries_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def load_events(path: str) -> List[Dict[str, Any]]:
    """All journal events, in append order; [] for a missing file."""
    if not os.path.exists(path):
        return []
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def replay(path: str) -> Dict[str, JournalEntry]:
    """Fold the log into per-query final states (insertion-ordered).

    A re-submission of a name seen before (a recovery pass re-running a
    query) resets that query's lifecycle — last submission wins, matching
    the server's in-memory behaviour on resume.
    """
    entries: Dict[str, JournalEntry] = {}
    for event in load_events(path):
        kind = event.get("event")
        name = event.get("name")
        if not name:
            continue
        entry = entries.get(name)
        if kind == "submitted" or entry is None:
            fresh = JournalEntry(
                name=name,
                pool=event.get("pool", ""),
                tenant=event.get("tenant"),
                cache_key=event.get("cache_key"),
                submitted_at=event.get("t"),
            )
            if entry is not None:
                fresh.events = entry.events
            # Move-to-end keeps resume order = last-submission order.
            entries.pop(name, None)
            entries[name] = fresh
            entry = fresh
        entry.events.append(str(kind))
        if kind == "started":
            entry.started_at = event.get("t")
        elif kind == "finished":
            entry.finished_at = event.get("t")
            entry.ok = bool(event.get("ok"))
            entry.cached = bool(event.get("cached"))
            entry.error = event.get("error")
            entry.result_repr = event.get("result")
        elif kind == "rejected":
            entry.rejected = True
            entry.finished_at = event.get("t")
            entry.error = event.get("reason")
    return entries


def pending_queries(path: str) -> List[JournalEntry]:
    """Queries admitted but never finished, in original submission order."""
    return [entry for entry in replay(path).values() if entry.pending]
