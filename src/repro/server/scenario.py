"""The canonical multi-tenant serving scenario, shared by CLI and benchmarks.

One cluster serves two tenants at once: a closed-loop analyst issuing short
TPC-H Q3 queries into an ``interactive`` pool, and a PageRank batch program
streaming iteration jobs through a ``batch`` pool.  The batch stages are
oversubscribed (many more partitions than slots) so the policies separate:
under FIFO the analyst's queries sit behind the in-flight batch job's ready
tasks until its stage barrier; under fair sharing the interactive pool's
priority gets them slots as soon as running tasks retire.

The hardened-server features are all optional and off by default (the
policy-comparison numbers stay bit-identical to the un-hardened server):
``tenancy`` switches on per-tenant quotas/rate limits/breakers (each analyst
is its own tenant), ``retry`` gives analysts seeded backoff-retry on
rejection, ``journal_path`` journals every query lifecycle to JSONL, and
``result_cache`` fingerprints the Q3 lineage so identical analyst queries
across sessions share one result.

Everything is deterministic in ``seed`` — table sizes, think times, and the
optional mid-stream revocation — so two runs differing only in policy are
directly comparable, and repeated runs are diffable.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional

from repro.analysis.experiments import build_engine_context
from repro.server.clients import ClosedLoopClient
from repro.server.jobserver import JobServer, PoolConfig, ServerConfig
from repro.server.result_cache import ResultCache, lineage_fingerprint
from repro.server.tenancy import RetryPolicy, TenancyConfig
from repro.workloads import PageRankWorkload, TPCHSession

#: Simulated second at which the optional revocation fires (mid-batch).
REVOKE_AT = 100.0
REPLACEMENT_DELAY = 120.0


def run_multitenant(
    policy: str = "fair",
    num_workers: int = 10,
    seed: int = 1234,
    queries: int = 16,
    think_time: float = 15.0,
    revoke: bool = False,
    max_queue: int = 16,
    interactive_cap: Optional[int] = None,
    batch_iterations: int = 3,
    clients: int = 1,
    tenancy: Optional[TenancyConfig] = None,
    retry: Optional[RetryPolicy] = None,
    journal_path: Optional[str] = None,
    result_cache: bool = False,
    validate_cache: bool = False,
    context_hook: Optional[Callable[[Any], None]] = None,
) -> Dict[str, Any]:
    """Run the scenario under one policy; returns the server's SLO report.

    The batch program runs via the server's blocking ``run_query`` (the
    top-level pump); analyst queries arrive as events and execute inside
    callbacks, multiplexed against the batch tasks.  After the batch job
    finishes, the pump keeps stepping until the analyst is done too.

    ``context_hook`` (if given) receives the freshly built context before
    anything runs — the tracing CLI uses it to capture the context and
    install an invariant checker whose listeners must observe the whole run.
    """
    ctx = build_engine_context(num_workers=num_workers, seed=seed)
    if context_hook is not None:
        context_hook(ctx)
    server = JobServer(ctx, ServerConfig(
        scheduling_policy=policy,
        max_queue=max_queue,
        pools=(
            PoolConfig("interactive", policy="fifo", weight=4.0,
                       priority="interactive", max_concurrent=interactive_cap),
            PoolConfig("batch", policy="fifo", weight=1.0, priority="batch"),
        ),
        tenancy=tenancy,
        journal_path=journal_path,
        result_cache=(
            ResultCache(validate=validate_cache) if result_cache else None
        ),
    ))
    session = TPCHSession(
        ctx, data_gb=2.0, lineitem_rows=6_000, orders_rows=1_500,
        customer_rows=400, partitions=2 * num_workers, seed=seed,
    )
    session.load()
    shared = server.create_session("tpch")
    shared.put("lineitem", session.lineitem)
    shared.put("orders", session.orders)
    shared.put("customer", session.customer)

    q3_key = (
        lineage_fingerprint(session.q3_plan(), action="collect",
                            params=("q3-top10",))
        if result_cache
        else None
    )
    pagerank = PageRankWorkload(
        ctx, data_gb=8.0, num_edges=96_000, num_vertices=96_000 // 5,
        partitions=48 * num_workers, iterations=batch_iterations, seed=seed,
    )
    analysts = [
        ClosedLoopClient(
            server, session.q3, pool="interactive", name=f"analyst-{i}",
            think_time=think_time, max_queries=queries, master_seed=seed,
            tenant=f"analyst-{i}" if tenancy is not None else None,
            cache_key=q3_key, retry_policy=retry,
        )
        for i in range(clients)
    ]
    for i, analyst in enumerate(analysts):
        analyst.start(delay=5.0 + i)

    if revoke:
        def _revoke(_event):
            victims = ctx.cluster.live_workers()[:1]
            if victims:
                market = victims[0].instance.market_id
                ctx.cluster.force_revoke(victims)
                ctx.cluster.launch(market, bid=0.175, count=len(victims),
                                   delay=REPLACEMENT_DELAY)
        ctx.env.schedule_at(REVOKE_AT, "revocation", callback=_revoke)

    server.run_query(pagerank.run, pool="batch", name="pagerank",
                     tenant="batch" if tenancy is not None else None)
    while not all(a.finished for a in analysts):
        if not ctx.env.events:
            raise RuntimeError("multi-tenant scenario stalled before analysts finished")
        ctx.env.step()
        ctx.scheduler.pump()

    report = server.slo_report()
    report["revocations"] = len(ctx.cluster.revocation_log)
    report["session"] = shared.describe()
    report["scheduler_stats"] = dataclasses.asdict(ctx.scheduler.stats)
    report["sizing"] = {
        "record_size_memo_hits": ctx.record_size_memo_hits,
        "record_size_memo_misses": ctx.record_size_memo_misses,
    }
    report["client_retries"] = sum(a.retries for a in analysts)
    server.close()
    return report
