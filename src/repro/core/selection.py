"""Transient server selection policies (§3.1.2, §3.2.2).

The node manager snapshots every market's current price, recent mean price,
and MTTF at the intended bid, then:

* **Batch** jobs pick the single market minimising expected cost (Eq. 2) —
  concentrating the cluster in one market so revocations are all-or-nothing,
  which batch jobs tolerate best (§5.3).
* **Interactive** jobs first build a set ``L`` of mutually *uncorrelated*
  markets (Figure 4 shows most pairs qualify), then greedily mix the
  cheapest markets while the expected runtime *variance* keeps falling and
  the expected cost stays below on-demand (Policy 2).

Bidding follows the paper's finding that EC2's peaky prices make expected
cost flat across a wide bid range: bid the on-demand price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.runtime_model import (
    DEFAULT_REPLACEMENT_DELAY,
    expected_cost,
    expected_runtime,
    expected_runtime_multi,
    runtime_variance,
)
from repro.market.market import Market, OnDemandMarket
from repro.market.provider import CloudProvider
from repro.simulation.clock import DAY, HOUR


@dataclass(frozen=True)
class MarketSnapshot:
    """What the node manager knows about one market at selection time."""

    market_id: str
    current_price: float
    mean_price: float
    mttf: float
    on_demand_price: float
    is_on_demand: bool = False

    @property
    def price_is_spiking(self) -> bool:
        """Instantaneous price well above the recent mean (§3.1.2: markets
        with a spiking price are skipped — their revocation risk is
        immediate)."""
        return self.current_price > 1.1 * self.mean_price


class OnDemandBiddingPolicy:
    """Bid a fixed multiple of the on-demand price (default 1.0 — §3.2.2).

    The paper shows bids from ~0.5x to ~2x on-demand yield identical cost in
    peaky markets (Figure 11b); the multiplier exists so that experiment can
    be reproduced, not because tuning it helps.
    """

    def __init__(self, multiplier: float = 1.0):
        if multiplier <= 0:
            raise ValueError("bid multiplier must be positive")
        self.multiplier = multiplier

    def bid_for(self, market: Market) -> float:
        return market.on_demand_price * self.multiplier


def snapshot_markets(
    provider: CloudProvider,
    t: float,
    bidding: Optional[OnDemandBiddingPolicy] = None,
    window: float = 7 * DAY,
    mttf_window: float = 14 * DAY,
) -> List[MarketSnapshot]:
    """Take a selection-time snapshot of every market in the provider."""
    bidding = bidding or OnDemandBiddingPolicy()
    snapshots = []
    for market in provider.markets.values():
        bid = bidding.bid_for(market)
        snapshots.append(
            MarketSnapshot(
                market_id=market.market_id,
                current_price=market.current_price(t),
                mean_price=market.mean_recent_price(t, window),
                mttf=market.estimate_mttf(bid, t, mttf_window),
                on_demand_price=market.on_demand_price,
                is_on_demand=isinstance(market, OnDemandMarket),
            )
        )
    return snapshots


@dataclass
class SelectionResult:
    """Outcome of a selection round."""

    market_ids: List[str]
    expected_runtime: float
    expected_cost_per_server: float
    expected_variance: float = 0.0

    @property
    def num_markets(self) -> int:
        return len(self.market_ids)


class _PolicyBase:
    """Shared estimate state for both selection policies.

    ``T_estimate`` and ``delta_estimate`` come from the fault-tolerance
    manager at runtime (it knows the real δ); the defaults describe a
    medium-length BIDI job and matter only before the first measurement.
    """

    def __init__(
        self,
        T_estimate: float = 2 * HOUR,
        delta_estimate: float = 60.0,
        replacement_delay: float = DEFAULT_REPLACEMENT_DELAY,
    ):
        if T_estimate <= 0:
            raise ValueError("T_estimate must be positive")
        if delta_estimate < 0:
            raise ValueError("delta_estimate must be non-negative")
        self.T_estimate = T_estimate
        self.delta_estimate = delta_estimate
        self.replacement_delay = replacement_delay

    def update_estimates(
        self, T: Optional[float] = None, delta: Optional[float] = None
    ) -> None:
        """Refresh the job-length / checkpoint-time estimates online."""
        if T is not None and T > 0:
            self.T_estimate = T
        if delta is not None and delta >= 0:
            self.delta_estimate = delta

    def _cost_per_server(self, snap: MarketSnapshot) -> float:
        """Eq. 2 expected cost of running the job on one server of this market."""
        return expected_cost(
            self.T_estimate,
            self.delta_estimate,
            snap.mttf,
            snap.mean_price,
            replacement_delay=self.replacement_delay,
        )

    @staticmethod
    def _usable(
        snapshots: Sequence[MarketSnapshot], exclude: Sequence[str]
    ) -> List[MarketSnapshot]:
        excluded = set(exclude)
        return [
            s
            for s in snapshots
            if s.market_id not in excluded and (s.is_on_demand or not s.price_is_spiking)
        ]


class BatchSelectionPolicy(_PolicyBase):
    """Pick the single market minimising expected cost (§3.1.2)."""

    def select(
        self, snapshots: Sequence[MarketSnapshot], exclude: Sequence[str] = ()
    ) -> SelectionResult:
        candidates = self._usable(snapshots, exclude)
        if not candidates:
            raise ValueError("no usable markets to select from")
        best = min(candidates, key=lambda s: (self._cost_per_server(s), s.mean_price))
        runtime = expected_runtime(
            self.T_estimate, self.delta_estimate, best.mttf,
            replacement_delay=self.replacement_delay,
        )
        return SelectionResult(
            market_ids=[best.market_id],
            expected_runtime=runtime,
            expected_cost_per_server=self._cost_per_server(best),
            expected_variance=runtime_variance(
                self.T_estimate, self.delta_estimate, [best.mttf],
                replacement_delay=self.replacement_delay,
            ),
        )


class InteractiveSelectionPolicy(_PolicyBase):
    """Diversify across uncorrelated markets to cut runtime variance (§3.2.2)."""

    def __init__(
        self,
        T_estimate: float = 2 * HOUR,
        delta_estimate: float = 60.0,
        replacement_delay: float = DEFAULT_REPLACEMENT_DELAY,
        correlation_threshold: float = 0.3,
        max_uncorrelated_set: int = 10,
        max_markets: Optional[int] = None,
    ):
        super().__init__(T_estimate, delta_estimate, replacement_delay)
        self.correlation_threshold = correlation_threshold
        self.max_uncorrelated_set = max_uncorrelated_set
        self.max_markets = max_markets

    # -- the uncorrelated candidate set L -------------------------------
    def build_uncorrelated_set(
        self,
        snapshots: Sequence[MarketSnapshot],
        correlation: Callable[[str, str], float],
        exclude: Sequence[str] = (),
    ) -> List[MarketSnapshot]:
        """Greedily build L: cheapest-first, admitting a market only when its
        price correlation with everything already admitted is low."""
        candidates = [s for s in self._usable(snapshots, exclude) if not s.is_on_demand]
        candidates.sort(key=self._cost_per_server)
        selected: List[MarketSnapshot] = []
        for snap in candidates:
            if len(selected) >= self.max_uncorrelated_set:
                break
            if all(
                abs(correlation(snap.market_id, other.market_id)) <= self.correlation_threshold
                for other in selected
            ):
                selected.append(snap)
        return selected

    def select(
        self,
        snapshots: Sequence[MarketSnapshot],
        correlation: Callable[[str, str], float],
        exclude: Sequence[str] = (),
    ) -> SelectionResult:
        """Greedy variance descent over the uncorrelated set (§3.2.2).

        Starts from the cheapest market; adds the next cheapest while the
        expected runtime variance strictly decreases and the expected cost
        stays below running on on-demand servers.
        """
        pool = self.build_uncorrelated_set(snapshots, correlation, exclude)
        if not pool:
            # Everything is spiking or excluded — fall back to on-demand.
            on_demand = [s for s in snapshots if s.is_on_demand]
            if not on_demand:
                raise ValueError("no usable markets and no on-demand fallback")
            best = min(on_demand, key=lambda s: s.on_demand_price)
            return SelectionResult([best.market_id], self.T_estimate,
                                   self.T_estimate / HOUR * best.on_demand_price, 0.0)

        on_demand_cost = self.T_estimate / HOUR * min(s.on_demand_price for s in snapshots)
        chosen: List[MarketSnapshot] = [pool[0]]
        best_var = self._variance_of(chosen)
        for snap in pool[1:]:
            if self.max_markets is not None and len(chosen) >= self.max_markets:
                break
            trial = chosen + [snap]
            trial_var = self._variance_of(trial)
            trial_cost = self._mixed_cost(trial)
            if trial_var >= best_var:
                break
            if trial_cost > on_demand_cost:
                break
            chosen = trial
            best_var = trial_var
        runtime = expected_runtime_multi(
            self.T_estimate, self.delta_estimate, [s.mttf for s in chosen],
            replacement_delay=self.replacement_delay,
        )
        return SelectionResult(
            market_ids=[s.market_id for s in chosen],
            expected_runtime=runtime,
            expected_cost_per_server=self._mixed_cost(chosen),
            expected_variance=best_var,
        )

    def _variance_of(self, chosen: Sequence[MarketSnapshot]) -> float:
        return runtime_variance(
            self.T_estimate, self.delta_estimate, [s.mttf for s in chosen],
            replacement_delay=self.replacement_delay,
        )

    def _mixed_cost(self, chosen: Sequence[MarketSnapshot]) -> float:
        """Expected per-server cost with servers split equally over ``chosen``."""
        runtime = expected_runtime_multi(
            self.T_estimate, self.delta_estimate, [s.mttf for s in chosen],
            replacement_delay=self.replacement_delay,
        )
        mean_price = sum(s.mean_price for s in chosen) / len(chosen)
        return runtime / HOUR * mean_price


def market_correlation_fn(
    provider: CloudProvider,
    t: float,
    window: float = 14 * DAY,
    dt: float = HOUR,
) -> Callable[[str, str], float]:
    """Pairwise price correlation over trailing history, as a lookup function.

    Mirrors the Figure 4 analysis: sample each market's price on a shared
    grid over the recent window and compute Pearson correlations.
    """
    spot = provider.spot_markets()
    ids = [m.market_id for m in spot]
    if not ids:
        return lambda a, b: 0.0
    end = min(m._trace_time(t) for m in spot)
    start = max(0.0, end - window)
    grids = []
    import numpy as np

    for market in spot:
        grid = np.array(
            [market.trace.price_at(x) for x in np.arange(start, end, dt)], dtype=float
        )
        grids.append(grid)
    index = {mid: i for i, mid in enumerate(ids)}
    n = len(ids)
    corr = np.eye(n)
    stds = [g.std() for g in grids]
    for i in range(n):
        for j in range(i + 1, n):
            if stds[i] < 1e-12 or stds[j] < 1e-12:
                c = 0.0
            else:
                c = float(np.corrcoef(grids[i], grids[j])[0, 1])
            corr[i, j] = corr[j, i] = c

    def lookup(a: str, b: str) -> float:
        if a == b:
            return 1.0
        ia, ib = index.get(a), index.get(b)
        if ia is None or ib is None:
            return 0.0
        return float(corr[ia, ib])

    return lookup
