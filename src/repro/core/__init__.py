"""Flint's contribution: automated checkpointing and server selection.

This package implements §3 of the paper on top of the engine/market
substrates:

* :mod:`repro.core.interval` — the optimal checkpoint interval
  τ = √(2·δ·MTTF) adapted to the RDD model (with the shuffle refinement).
* :mod:`repro.core.runtime_model` — Equations 1-4: expected runtime and cost
  on a market, aggregate MTTF of a heterogeneous cluster, and the runtime
  variance the interactive policy minimises.
* :mod:`repro.core.ftmanager` — the fault-tolerance manager embedded in the
  engine: tracks the lineage frontier, marks RDDs for checkpointing every τ,
  and adapts δ and τ online.
* :mod:`repro.core.selection` — batch (min expected cost, single market) and
  interactive (greedy variance-minimising market mix) server selection,
  restoration after revocations, and the bid-the-on-demand-price policy.
* :mod:`repro.core.node_manager` — maintains the cluster at size N,
  replacing revoked servers per the restoration policy.
* :mod:`repro.core.flint` — the managed-service facade users interact with.
"""

from repro.core.advisor import Advice, JobProfile, MarketQuote, advise
from repro.core.config import FlintConfig, Mode
from repro.core.flint import Flint
from repro.core.ftmanager import FaultToleranceManager
from repro.core.interval import optimal_checkpoint_interval, shuffle_checkpoint_interval
from repro.core.node_manager import NodeManager
from repro.core.runtime_model import (
    expected_cost,
    expected_runtime,
    expected_runtime_multi,
    harmonic_mttf,
    runtime_variance,
)
from repro.core.selection import (
    BatchSelectionPolicy,
    InteractiveSelectionPolicy,
    MarketSnapshot,
    OnDemandBiddingPolicy,
    snapshot_markets,
)

__all__ = [
    "Advice",
    "JobProfile",
    "MarketQuote",
    "advise",
    "Flint",
    "FlintConfig",
    "Mode",
    "FaultToleranceManager",
    "NodeManager",
    "optimal_checkpoint_interval",
    "shuffle_checkpoint_interval",
    "expected_runtime",
    "expected_runtime_multi",
    "expected_cost",
    "harmonic_mttf",
    "runtime_variance",
    "BatchSelectionPolicy",
    "InteractiveSelectionPolicy",
    "MarketSnapshot",
    "OnDemandBiddingPolicy",
    "snapshot_markets",
]
