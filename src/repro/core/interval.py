"""Optimal checkpoint intervals (§3.1.1).

Flint adapts Daly's first-order optimum for single-node batch jobs,
τ_opt ≈ √(2·δ·MTTF), to the RDD model: a homogeneous spot cluster loses all
servers at once, making the whole parallel program equivalent to one
failure-prone node.  The approximation needs δ ≪ MTTF; Flint's δ is minutes
while spot MTTFs are tens to hundreds of hours, so the regime holds, but we
still clamp pathological inputs rather than emit garbage.
"""

from __future__ import annotations

import math


def optimal_checkpoint_interval(delta: float, mttf: float) -> float:
    """First-order optimal interval between checkpoints, in seconds.

    Args:
        delta: time to write one checkpoint (seconds).
        mttf: mean time to failure of the cluster (seconds); ``inf`` means
            revocations never happen and checkpointing is pointless.

    Returns:
        τ = √(2·δ·MTTF), or ``inf`` when MTTF is infinite.  When the
        δ ≪ MTTF assumption is violated (MTTF ≤ δ) the job cannot be
        guaranteed to make progress; we return τ = δ (checkpoint as fast as
        physically possible) as the least-bad choice.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if mttf <= 0:
        raise ValueError("mttf must be positive")
    if math.isinf(mttf):
        return float("inf")
    if delta == 0:
        return 0.0
    if mttf <= delta:
        return delta
    return math.sqrt(2.0 * delta * mttf)


def shuffle_checkpoint_interval(tau: float, num_map_partitions: int) -> float:
    """Checkpoint interval for shuffle-output RDDs.

    Wide dependencies make every reduce partition depend on *all* map
    partitions, so losing any one multiplies recomputation; Flint therefore
    checkpoints shuffle RDDs at τ divided by the number of partitions being
    shuffled from (§3.1.1).
    """
    if num_map_partitions <= 0:
        raise ValueError("num_map_partitions must be positive")
    if math.isinf(tau):
        return tau
    return tau / num_map_partitions


def checkpoint_time_estimate(
    frontier_bytes: float,
    num_workers: int,
    dfs_write_bandwidth: float,
    replication: int = 3,
) -> float:
    """δ: time to write the lineage frontier to the DFS in parallel.

    All workers write their partitions concurrently, so δ is the replicated
    byte volume divided by the cluster's aggregate write bandwidth.
    """
    if frontier_bytes < 0:
        raise ValueError("frontier_bytes must be non-negative")
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if dfs_write_bandwidth <= 0:
        raise ValueError("dfs_write_bandwidth must be positive")
    return frontier_bytes * replication / (dfs_write_bandwidth * num_workers)
