"""Flint's node manager (§3, §4).

The node manager owns the relationship with the cloud provider: it selects
markets via the batch or interactive policy, provisions the initial fleet of
N servers, and replaces revoked servers to hold the cluster at N.  It reacts
to the provider's revocation *warning* (EC2: two minutes) by immediately
re-running market selection so replacements arrive as the doomed servers
die, and it reports the cluster's aggregate MTTF to the fault-tolerance
manager so the checkpoint interval tracks the fleet actually in use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.cluster.cluster import Cluster, ClusterListener
from repro.cluster.worker import Worker
from repro.core.config import FlintConfig, Mode
from repro.core.runtime_model import harmonic_mttf
from repro.core.selection import (
    BatchSelectionPolicy,
    InteractiveSelectionPolicy,
    OnDemandBiddingPolicy,
    SelectionResult,
    market_correlation_fn,
    snapshot_markets,
)
from repro.market.market import OnDemandMarket
from repro.market.provider import MarketUnavailableError
from repro.traces.ec2 import INSTANCE_TYPES


@dataclass
class NodeManagerStats:
    replacements_requested: int = 0
    warning_replacements: int = 0
    selections: int = 0
    on_demand_fallbacks: int = 0


class NodeManager(ClusterListener):
    """Provisioning and replacement driven by Flint's selection policies."""

    def __init__(
        self,
        cluster: Cluster,
        config: FlintConfig,
        bidding: Optional[OnDemandBiddingPolicy] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.provider = cluster.env.provider
        self.config = config
        self.bidding = bidding or OnDemandBiddingPolicy(config.bid_multiplier)
        self.instance_type = INSTANCE_TYPES[config.instance_type_name]
        self.batch_policy = BatchSelectionPolicy(T_estimate=config.T_estimate)
        self.interactive_policy = InteractiveSelectionPolicy(
            T_estimate=config.T_estimate,
            correlation_threshold=config.correlation_threshold,
            max_markets=config.max_markets,
        )
        self.stats = NodeManagerStats()
        self.active = False
        self.current_selection: Optional[SelectionResult] = None
        self._replacement_requested: Set[str] = set()
        #: Churn guard (§3.1.2 worst case): when replacements keep getting
        #: revoked as fast as they arrive — every spot market is spiking —
        #: Flint "resumes execution on on-demand servers".  We detect that
        #: regime as more than ``churn_limit`` replacements within
        #: ``churn_window`` seconds and buy the excess from on-demand.
        self.churn_window = 600.0
        self.churn_limit = 3 * config.cluster_size
        self._recent_replacements: List[float] = []
        cluster.add_listener(self)

    # ------------------------------------------------------------------
    # Initial provisioning
    # ------------------------------------------------------------------
    def provision(self) -> List[Worker]:
        """Select market(s) and launch the initial fleet of N workers."""
        self.active = True
        selection = self._select()
        self.current_selection = selection
        n = self.config.cluster_size
        markets = selection.market_ids
        workers: List[Worker] = []
        # Split servers equally across the chosen markets (one market in
        # batch mode), distributing the remainder to the cheapest first.
        per_market = [n // len(markets)] * len(markets)
        for i in range(n % len(markets)):
            per_market[i] += 1
        for market_id, count in zip(markets, per_market):
            if count > 0:
                workers.extend(self._launch(market_id, count, delay=0.0))
        return workers

    def _select(self, exclude: tuple = ()) -> SelectionResult:
        self.stats.selections += 1
        snapshots = snapshot_markets(
            self.provider,
            self.env.now,
            self.bidding,
            window=self.config.price_window,
            mttf_window=self.config.mttf_window,
        )
        if self.config.mode == Mode.INTERACTIVE:
            correlation = market_correlation_fn(self.provider, self.env.now)
            return self.interactive_policy.select(snapshots, correlation, exclude=exclude)
        return self.batch_policy.select(snapshots, exclude=exclude)

    def _launch(self, market_id: str, count: int, delay: float) -> List[Worker]:
        market = self.provider.market(market_id)
        bid = self.bidding.bid_for(market)
        # A pool sells one instance type; fall back to the configured type
        # for pools (on-demand, preemptible) that don't declare one.
        itype = getattr(market, "instance_type", None) or self.instance_type
        try:
            return self.cluster.launch(
                market_id, bid, count=count, delay=delay, instance_type=itype
            )
        except MarketUnavailableError:
            # Price moved between snapshot and acquisition — fall back to
            # on-demand, the worst-case restoration path (§3.1.2).
            self.stats.on_demand_fallbacks += 1
            od = self._on_demand_market_id()
            return self.cluster.launch(
                od, self.provider.market(od).on_demand_price, count=count, delay=delay,
                instance_type=self.instance_type,
            )

    def _on_demand_market_id(self) -> str:
        for market in self.provider.markets.values():
            if isinstance(market, OnDemandMarket):
                return market.market_id
        raise RuntimeError("provider has no on-demand market to fall back to")

    # ------------------------------------------------------------------
    # Cluster MTTF for the checkpointing policy
    # ------------------------------------------------------------------
    def cluster_mttf(self) -> float:
        """Aggregate MTTF of the markets currently in use (Eq. 3).

        An experiment can pin this via ``config.mttf_override``.
        """
        if self.config.mttf_override is not None:
            return self.config.mttf_override
        in_use = self.cluster.markets_in_use()
        if not in_use:
            return float("inf")
        mttfs = []
        t = self.env.now
        for market_id in in_use:
            market = self.provider.market(market_id)
            bid = self.bidding.bid_for(market)
            mttfs.append(market.estimate_mttf(bid, t, self.config.mttf_window))
        return harmonic_mttf(mttfs)

    # ------------------------------------------------------------------
    # Revocation handling (restoration policy)
    # ------------------------------------------------------------------
    def on_revocation_warning(self, worker: Worker, t: float) -> None:
        if not self.active or not self.config.replace_on_warning:
            return
        if worker.worker_id in self._replacement_requested:
            return
        self._replacement_requested.add(worker.worker_id)
        self.stats.warning_replacements += 1
        # Replacement boots while the doomed server drains, arriving roughly
        # when it dies (warning period ≈ replacement delay on EC2).
        self._replace(worker, delay=self.provider.replacement_delay)

    def on_worker_revoked(self, worker: Worker, t: float) -> None:
        if not self.active:
            return
        if worker.worker_id in self._replacement_requested:
            return
        self._replacement_requested.add(worker.worker_id)
        self._replace(worker, delay=self.provider.replacement_delay)

    def _replace(self, worker: Worker, delay: float) -> None:
        self.stats.replacements_requested += 1
        now = self.env.now
        self._recent_replacements = [
            t for t in self._recent_replacements if now - t < self.churn_window
        ]
        self._recent_replacements.append(now)
        if len(self._recent_replacements) > self.churn_limit:
            # Replacement churn: every spot pool is in a spiking regime and
            # replacements die as fast as they boot.  Stop the bleeding on
            # non-revocable capacity (the paper's worst-case restoration).
            self.stats.on_demand_fallbacks += 1
            self._launch(self._on_demand_market_id(), 1, delay=delay)
            return
        revoked_market = worker.instance.market_id
        try:
            if self.config.mode == Mode.INTERACTIVE:
                market_id = self._interactive_replacement_market(revoked_market)
            else:
                selection = self._select(exclude=(revoked_market,))
                self.current_selection = selection
                market_id = selection.market_ids[0]
        except ValueError:
            self.stats.on_demand_fallbacks += 1
            market_id = self._on_demand_market_id()
        self._launch(market_id, 1, delay=delay)

    def _interactive_replacement_market(self, revoked_market: str) -> str:
        """Lowest-cost *unused* market in L, excluding the revoked one (§3.2.2)."""
        snapshots = snapshot_markets(
            self.provider, self.env.now, self.bidding,
            window=self.config.price_window, mttf_window=self.config.mttf_window,
        )
        correlation = market_correlation_fn(self.provider, self.env.now)
        pool = self.interactive_policy.build_uncorrelated_set(
            snapshots, correlation, exclude=(revoked_market,)
        )
        if not pool:
            raise ValueError("no usable markets in L")
        in_use = set(self.cluster.markets_in_use())
        unused = [s for s in pool if s.market_id not in in_use]
        chosen = unused[0] if unused else pool[0]
        return chosen.market_id

    def shutdown(self) -> None:
        """Stop replacing workers (cluster teardown)."""
        self.active = False
