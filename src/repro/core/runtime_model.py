"""Analytic runtime/cost models — Equations 1-4 of the paper.

These are the quantities the server-selection policies optimise:

* Eq. 1: expected running time on a single market,
  ``E[T_k] = T·(1 + δ/τ + (τ/2 + r_d)/MTTF_k)``.
* Eq. 2: expected cost ``E[C_k] = E[T_k]·p_k``.
* Eq. 3: aggregate MTTF of a cluster spread over m markets (harmonic sum —
  more revocation *events*, each hitting only N/m servers).
* Eq. 4: expected running time with servers spread over m markets, where
  each event loses only a 1/m fraction of the work.

The variance model extends Eq. 4: revocations form a Poisson process with
rate 1/MTTF(S); each event's loss is (U + r_d)/m with U ~ Uniform(0, τ), so
the compound-Poisson variance is ``(T/MTTF)·E[loss²]`` — decreasing in m,
which is exactly why the interactive policy diversifies.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.interval import optimal_checkpoint_interval

#: Default server replacement delay r_d (§3.1.2: ~two minutes on EC2).
DEFAULT_REPLACEMENT_DELAY = 120.0


def harmonic_mttf(mttfs: Sequence[float]) -> float:
    """Aggregate MTTF of a cluster mixing one server pool per market (Eq. 3).

    Revocation processes in different markets are independent, so event
    rates add: ``1/MTTF = Σ 1/MTTF_i``.  Infinite MTTFs (on-demand pools)
    contribute zero rate.
    """
    if not mttfs:
        raise ValueError("need at least one MTTF")
    rate = 0.0
    for mttf in mttfs:
        if mttf <= 0:
            raise ValueError("MTTFs must be positive")
        if not math.isinf(mttf):
            rate += 1.0 / mttf
    return float("inf") if rate == 0.0 else 1.0 / rate


def expected_runtime(
    T: float,
    delta: float,
    mttf: float,
    tau: Optional[float] = None,
    replacement_delay: float = DEFAULT_REPLACEMENT_DELAY,
) -> float:
    """Eq. 1: expected running time on one market.

    Args:
        T: failure-free running time (seconds).
        delta: checkpoint write time δ (seconds).
        mttf: market MTTF at the bid (seconds, may be ``inf``).
        tau: checkpoint interval; defaults to the optimal √(2·δ·MTTF).
        replacement_delay: r_d, time to acquire a replacement server.
    """
    if T < 0:
        raise ValueError("T must be non-negative")
    if math.isinf(mttf):
        return T  # no revocations, no checkpointing needed
    if tau is None:
        tau = optimal_checkpoint_interval(delta, mttf)
    if tau <= 0:
        raise ValueError("tau must be positive")
    checkpoint_overhead = delta / tau
    recomputation_overhead = (tau / 2.0 + replacement_delay) / mttf
    return T * (1.0 + checkpoint_overhead + recomputation_overhead)


def expected_cost(
    T: float,
    delta: float,
    mttf: float,
    price_per_hour: float,
    tau: Optional[float] = None,
    replacement_delay: float = DEFAULT_REPLACEMENT_DELAY,
    num_servers: int = 1,
) -> float:
    """Eq. 2: expected dollar cost on one market.

    ``price_per_hour`` is the market's recent average price (what EC2
    actually bills), not the bid.
    """
    if price_per_hour < 0:
        raise ValueError("price must be non-negative")
    runtime = expected_runtime(T, delta, mttf, tau, replacement_delay)
    return runtime / 3600.0 * price_per_hour * num_servers


def expected_runtime_multi(
    T: float,
    delta: float,
    mttfs: Sequence[float],
    tau: Optional[float] = None,
    replacement_delay: float = DEFAULT_REPLACEMENT_DELAY,
) -> float:
    """Eq. 4: expected running time with servers spread over ``m = len(mttfs)`` markets.

    Revocation events arrive at the aggregate rate (Eq. 3) but each loses
    only a 1/m fraction of the cluster, scaling the per-event penalty down.
    """
    m = len(mttfs)
    if m == 0:
        raise ValueError("need at least one market")
    aggregate = harmonic_mttf(mttfs)
    if math.isinf(aggregate):
        return T
    if tau is None:
        tau = optimal_checkpoint_interval(delta, aggregate)
    if tau <= 0:
        raise ValueError("tau must be positive")
    checkpoint_overhead = delta / tau
    recomputation_overhead = (tau / 2.0 + replacement_delay) / aggregate / m
    return T * (1.0 + checkpoint_overhead + recomputation_overhead)


def runtime_variance(
    T: float,
    delta: float,
    mttfs: Sequence[float],
    tau: Optional[float] = None,
    replacement_delay: float = DEFAULT_REPLACEMENT_DELAY,
) -> float:
    """Variance of running time for a cluster spread over ``m`` markets.

    Compound-Poisson model: events at rate ``1/MTTF(S)`` over the program's
    duration T, per-event loss ``(U + r_d)/m`` with U ~ Uniform(0, τ), hence
    ``Var = (T/MTTF)·(τ²/3 + τ·r_d + r_d²)/m²``.  Spreading over more
    (independent) markets multiplies the event count by ~m but divides the
    squared per-event loss by m², so variance falls as 1/m — the formal core
    of Policy 2.
    """
    m = len(mttfs)
    if m == 0:
        raise ValueError("need at least one market")
    if T < 0:
        raise ValueError("T must be non-negative")
    aggregate = harmonic_mttf(mttfs)
    if math.isinf(aggregate):
        return 0.0
    if tau is None:
        tau = optimal_checkpoint_interval(delta, aggregate)
    if math.isinf(tau):
        return 0.0
    rd = replacement_delay
    second_moment = (tau * tau / 3.0 + tau * rd + rd * rd) / (m * m)
    return (T / aggregate) * second_moment


def runtime_std(
    T: float,
    delta: float,
    mttfs: Sequence[float],
    tau: Optional[float] = None,
    replacement_delay: float = DEFAULT_REPLACEMENT_DELAY,
) -> float:
    """Standard deviation of running time (√ of :func:`runtime_variance`)."""
    return math.sqrt(runtime_variance(T, delta, mttfs, tau, replacement_delay))
