"""Bidding strategies beyond the default (§3.2.2 "Bidding Policy").

Flint bids the on-demand price because, in peaky spot markets, expected cost
is flat across a wide bid range (Figure 11b) and price spikes overshoot any
reasonable bid anyway.  This module also implements the *stratified* bidding
idea the paper discusses and dismisses — spreading bids within a market so
instances fail at different times — so the claim can be tested: when spikes
are large, stratified bids all fail together and buy nothing.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro.core.selection import OnDemandBiddingPolicy
from repro.market.market import Market


class FixedMultiplierBidding(OnDemandBiddingPolicy):
    """Bid ``multiplier``x the on-demand price (the paper's policy when
    multiplier == 1)."""


class StratifiedBidding:
    """Rotate through several bid levels within a market (§3.2.2).

    Consecutive acquisitions cycle through ``multipliers``, so a cluster's
    instances hold different bids.  The paper's observation — reproduced in
    the ablation benchmark — is that current spot spikes are large enough to
    exceed the whole stratum, revoking everything simultaneously anyway.
    """

    def __init__(self, multipliers: Sequence[float] = (0.9, 1.0, 1.2, 1.5)):
        if not multipliers or any(m <= 0 for m in multipliers):
            raise ValueError("multipliers must be positive and non-empty")
        self.multipliers = list(multipliers)
        self._cycle = itertools.cycle(self.multipliers)

    def bid_for(self, market: Market) -> float:
        return market.on_demand_price * next(self._cycle)

    def bids_for_fleet(self, market: Market, count: int) -> List[float]:
        """The bid assigned to each of ``count`` instances."""
        return [self.bid_for(market) for _ in range(count)]


def simultaneous_revocation_fraction(
    market: Market, bids: Sequence[float], t: float, horizon: float
) -> float:
    """Fraction of a stratified fleet revoked at the *first* revocation event.

    1.0 means stratification bought nothing (all bids fail together).
    """
    if not bids:
        raise ValueError("need at least one bid")
    kill_times = [
        market.revocation_time_for(t, bid, f"strat-{i}") for i, bid in enumerate(bids)
    ]
    finite = [k for k in kill_times if k is not None]
    if not finite:
        return 0.0
    first = min(finite)
    together = sum(1 for k in finite if abs(k - first) < 1.0)
    return together / len(bids)
