"""What-if advisor: preview cost and runtime before provisioning.

The managed-service pitch of Flint (§2.3) is that users submit jobs and the
service makes the transient-server decisions.  The advisor exposes those
decisions *before* any money is spent: given a job profile (failure-free
runtime, cluster size, checkpoint volume), it evaluates every market and
policy configuration with the paper's equations and returns a ranked
comparison — the same numbers the node manager acts on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.core.interval import checkpoint_time_estimate, optimal_checkpoint_interval
from repro.core.runtime_model import (
    expected_cost,
    expected_runtime,
    expected_runtime_multi,
    runtime_std,
)
from repro.core.selection import (
    InteractiveSelectionPolicy,
    OnDemandBiddingPolicy,
    market_correlation_fn,
    snapshot_markets,
)
from repro.market.provider import CloudProvider
from repro.simulation.clock import HOUR


@dataclass(frozen=True)
class JobProfile:
    """What the advisor needs to know about a prospective job."""

    runtime: float = 2 * HOUR  # failure-free running time, seconds
    cluster_size: int = 10
    checkpoint_bytes: float = 40e9  # frontier volume per checkpoint
    dfs_write_bandwidth: float = 100e6
    replication: int = 3
    replacement_delay: float = 120.0

    @property
    def delta(self) -> float:
        """Checkpoint write time δ for this profile."""
        return checkpoint_time_estimate(
            self.checkpoint_bytes, self.cluster_size,
            self.dfs_write_bandwidth, self.replication,
        )


@dataclass
class MarketQuote:
    """Advisor output for one candidate market."""

    market_id: str
    mean_price: float
    mttf: float
    tau: float
    expected_runtime: float
    expected_cost: float
    runtime_std: float
    spiking: bool


@dataclass
class Advice:
    """The full what-if report."""

    profile: JobProfile
    quotes: List[MarketQuote]
    batch_choice: Optional[MarketQuote]
    interactive_mix: List[str]
    interactive_runtime: float
    interactive_cost: float
    interactive_std: float
    on_demand_cost: float

    def render(self) -> str:
        """Human-readable report (what the CLI prints)."""
        rows = []
        for q in sorted(self.quotes, key=lambda q: q.expected_cost):
            mttf = "inf" if q.mttf == float("inf") else f"{q.mttf / HOUR:.0f}h"
            tau = "-" if q.tau == float("inf") else f"{q.tau:.0f}s"
            rows.append([
                q.market_id, q.mean_price, mttf, tau,
                q.expected_runtime, q.expected_cost,
                q.runtime_std, "SPIKING" if q.spiking else "",
            ])
        lines = [
            format_table(
                ["market", "$/h", "MTTF", "tau", "E[runtime] s", "E[cost] $",
                 "std s", "state"],
                rows, title="market quotes", float_fmt="{:.3f}",
            ),
            "",
            f"batch pick      : {self.batch_choice.market_id if self.batch_choice else 'n/a'}"
            f" (E[cost] ${self.batch_choice.expected_cost:.3f})" if self.batch_choice else "",
            f"interactive mix : {', '.join(self.interactive_mix)}",
            f"                  E[runtime] {self.interactive_runtime:.0f}s, "
            f"E[cost] ${self.interactive_cost:.3f}, std {self.interactive_std:.0f}s",
            f"on-demand cost  : ${self.on_demand_cost:.3f}",
        ]
        savings = 1.0 - (self.batch_choice.expected_cost / self.on_demand_cost) if self.batch_choice else 0.0
        lines.append(f"batch savings   : {savings:.0%} vs on-demand")
        return "\n".join(line for line in lines if line != "")


def advise(
    provider: CloudProvider,
    profile: Optional[JobProfile] = None,
    t: float = 0.0,
    bidding: Optional[OnDemandBiddingPolicy] = None,
) -> Advice:
    """Evaluate every market and both policies for a job profile."""
    profile = profile or JobProfile()
    bidding = bidding or OnDemandBiddingPolicy()
    snaps = snapshot_markets(provider, t, bidding)
    delta = profile.delta
    n = profile.cluster_size

    quotes: List[MarketQuote] = []
    for snap in snaps:
        tau = optimal_checkpoint_interval(delta, snap.mttf)
        runtime = expected_runtime(
            profile.runtime, delta, snap.mttf,
            replacement_delay=profile.replacement_delay,
        )
        cost = expected_cost(
            profile.runtime, delta, snap.mttf, snap.mean_price,
            replacement_delay=profile.replacement_delay, num_servers=n,
        )
        std = runtime_std(
            profile.runtime, delta, [snap.mttf],
            replacement_delay=profile.replacement_delay,
        )
        quotes.append(
            MarketQuote(
                market_id=snap.market_id,
                mean_price=snap.mean_price,
                mttf=snap.mttf,
                tau=tau,
                expected_runtime=runtime,
                expected_cost=cost,
                runtime_std=std,
                spiking=snap.price_is_spiking,
            )
        )

    usable = [q for q in quotes if not q.spiking]
    batch_choice = min(usable, key=lambda q: q.expected_cost) if usable else None

    interactive = InteractiveSelectionPolicy(
        T_estimate=profile.runtime, delta_estimate=delta,
        replacement_delay=profile.replacement_delay,
    )
    correlation = market_correlation_fn(provider, t)
    mix = interactive.select(snaps, correlation)
    mix_snaps = [s for s in snaps if s.market_id in mix.market_ids]
    mttfs = [s.mttf for s in mix_snaps]
    interactive_runtime = expected_runtime_multi(
        profile.runtime, delta, mttfs, replacement_delay=profile.replacement_delay
    )
    mean_mix_price = sum(s.mean_price for s in mix_snaps) / len(mix_snaps)
    interactive_cost = interactive_runtime / HOUR * mean_mix_price * n
    interactive_std = runtime_std(
        profile.runtime, delta, mttfs, replacement_delay=profile.replacement_delay
    )

    on_demand_price = min(s.on_demand_price for s in snaps)
    on_demand_cost = profile.runtime / HOUR * on_demand_price * n

    return Advice(
        profile=profile,
        quotes=quotes,
        batch_choice=batch_choice,
        interactive_mix=mix.market_ids,
        interactive_runtime=interactive_runtime,
        interactive_cost=interactive_cost,
        interactive_std=interactive_std,
        on_demand_cost=on_demand_cost,
    )
