"""The Flint managed service facade (§2.3, §4).

``Flint`` wires the whole system together for one tenant: it provisions a
cluster of N transient servers through the node manager, attaches the
fault-tolerance manager to the engine, and exposes a
:class:`~repro.engine.context.FlintContext` on which users run unmodified
RDD programs.  Revocations, replacements, checkpoint scheduling, and billing
all happen behind this facade — the user just writes Spark-style code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.environment import Environment
from repro.core.config import FlintConfig
from repro.core.ftmanager import FaultToleranceManager
from repro.core.node_manager import NodeManager
from repro.engine.context import FlintContext
from repro.engine.costs import CostModel
from repro.market.provider import CloudProvider
from repro.simulation.clock import HOUR
from repro.storage.dfs import DFSConfig


@dataclass
class JobReport:
    """Outcome of one job (or query) run under Flint."""

    name: str
    started_at: float
    finished_at: float
    result: Any = None
    revocations: int = 0
    instance_cost: float = 0.0

    @property
    def runtime(self) -> float:
        """Simulated wall-clock seconds the job took."""
        return self.finished_at - self.started_at


class Flint:
    """A managed BIDI cluster on transient servers."""

    def __init__(
        self,
        provider: CloudProvider,
        config: Optional[FlintConfig] = None,
        seed: int = 0,
        cost_model: Optional[CostModel] = None,
        dfs_config: Optional[DFSConfig] = None,
        node_manager_cls: type = NodeManager,
    ):
        self.config = config or FlintConfig()
        self.env = Environment(provider, seed=seed, dfs_config=dfs_config)
        self.cluster = Cluster(self.env)
        self.context = FlintContext(self.env, self.cluster, cost_model)
        self.node_manager = node_manager_cls(self.cluster, self.config)
        self.ft_manager: Optional[FaultToleranceManager] = None
        if self.config.checkpointing_enabled:
            self.ft_manager = FaultToleranceManager(
                self.context,
                self.node_manager.cluster_mttf,
                initial_delta=self.config.initial_delta,
                min_tau=self.config.min_tau,
                max_tau=self.config.max_tau,
            )
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "Flint":
        """Provision the cluster and begin checkpoint signalling."""
        self.node_manager.provision()
        if self.ft_manager is not None:
            if self.config.initial_delta is None:
                self.ft_manager.reset_conservative_delta()
            self.ft_manager.refresh()
            self.ft_manager.start()
        self._started_at = self.env.now
        return self

    def shutdown(self) -> None:
        """Tear everything down and stop billing."""
        if self.ft_manager is not None:
            self.ft_manager.stop()
        self.node_manager.shutdown()
        self.cluster.terminate_all()

    # ------------------------------------------------------------------
    def run(self, fn: Callable[[FlintContext], Any], name: str = "job") -> JobReport:
        """Execute a user program against this cluster and report on it."""
        if self._started_at is None:
            raise RuntimeError("call start() before running jobs")
        t0 = self.env.now
        cost0 = self.env.provider.total_cost(t0)
        revocations0 = len(self.cluster.revocation_log)
        result = fn(self.context)
        t1 = self.env.now
        return JobReport(
            name=name,
            started_at=t0,
            finished_at=t1,
            result=result,
            revocations=len(self.cluster.revocation_log) - revocations0,
            instance_cost=self.env.provider.total_cost(t1) - cost0,
        )

    def run_async(
        self,
        rdd: Any,
        func: Callable[[Any], Any] = len,
        pool: Optional[str] = None,
        name: Optional[str] = None,
    ):
        """Submit one action without blocking; returns a ``JobHandle``.

        The action competes for slots alongside any jobs already in flight
        (e.g. a batch program mid-``run``); call ``wait()`` on the handle to
        pump the simulation until it completes.
        """
        if self._started_at is None:
            raise RuntimeError("call start() before running jobs")
        return self.context.submit_job(rdd, func, pool=pool, name=name)

    def idle_until(self, t: float) -> None:
        """Let simulated time pass with no job running (interactive think time)."""
        self.env.run_until(t)

    # ------------------------------------------------------------------
    def cost_summary(self) -> Dict[str, float]:
        """Cumulative cost breakdown: instances + amortised EBS checkpoints."""
        now = self.env.now
        instance_cost = self.env.provider.total_cost(now)
        elapsed = 0.0 if self._started_at is None else now - self._started_at
        cluster_memory_gb = (
            self.config.cluster_size
            * self.node_manager.instance_type.memory_gb
        )
        ebs_cost = self.config.ebs.cluster_checkpoint_cost(cluster_memory_gb, elapsed)
        return {
            "instance_cost": instance_cost,
            "ebs_cost": ebs_cost,
            "total_cost": instance_cost + ebs_cost,
            "elapsed_hours": elapsed / HOUR,
            "revocations": float(len(self.cluster.revocation_log)),
        }

    @property
    def current_tau(self) -> Optional[float]:
        """The checkpoint interval currently in force (None if disabled)."""
        return None if self.ft_manager is None else self.ft_manager.tau
