"""Flint's fault-tolerance manager (§3.1.1, §4).

Embedded in the engine as a core component, the manager:

* keeps a timer at the current checkpoint interval τ = √(2·δ·MTTF); when it
  expires, the *next* RDD to materialise at the lineage frontier is marked
  for checkpointing (Policy 1);
* treats shuffle-output RDDs specially, checkpointing them at the shorter
  interval τ / (#map partitions) because wide dependencies multiply
  recomputation;
* maintains the δ estimate online from the actual byte volume of frontier
  RDDs and the cluster's aggregate DFS write bandwidth, recomputing τ as δ
  and the cluster MTTF move.

Marked RDDs are checkpointed partition-by-partition by asynchronous write
tasks the scheduler runs alongside normal work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.interval import (
    checkpoint_time_estimate,
    optimal_checkpoint_interval,
    shuffle_checkpoint_interval,
)
from repro.engine.dependencies import ShuffleDependency

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext
    from repro.engine.rdd import RDD
    from repro.engine.task import ComputedPartition


@dataclass
class FTManagerStats:
    """Observable behaviour of the checkpointing policy."""

    timer_fires: int = 0
    rdds_marked: int = 0
    shuffle_marks: int = 0
    rdds_checkpointed: int = 0
    delta_updates: int = 0
    tau_history: List[float] = field(default_factory=list)


class FaultToleranceManager:
    """Automated checkpointing policy driver."""

    def __init__(
        self,
        context: "FlintContext",
        mttf_fn: Callable[[], float],
        initial_delta: Optional[float] = None,
        min_tau: float = 30.0,
        max_tau: Optional[float] = None,
        shuffle_rule_enabled: bool = True,
    ):
        self.context = context
        self.env = context.env
        self.mttf_fn = mttf_fn
        self.min_tau = min_tau
        self.max_tau = max_tau
        #: The §3.1.1 refinement: checkpoint shuffle outputs every τ/m.
        #: Exposed as a switch for the ablation benchmarks.
        self.shuffle_rule_enabled = shuffle_rule_enabled
        self.delta = initial_delta if initial_delta is not None else self._conservative_delta()
        self.tau = self._compute_tau()
        self.stats = FTManagerStats()
        self._due = False
        self._last_shuffle_checkpoint = self.env.now
        self._frontier_bytes: Dict[int, Dict[int, int]] = {}
        self._timer_event = None
        self._running = False
        context.ft_manager = self

    # ------------------------------------------------------------------
    # δ and τ maintenance
    # ------------------------------------------------------------------
    def _conservative_delta(self) -> float:
        """Initial δ assuming all cluster memory holds active RDDs (§3.1.2)."""
        cluster = self.context.cluster
        total_memory = cluster.total_storage_memory()
        workers = max(1, cluster.size)
        dfs = self.env.dfs.config
        return checkpoint_time_estimate(
            total_memory, workers, dfs.write_bandwidth, dfs.replication
        )

    def _compute_tau(self) -> float:
        mttf = self.mttf_fn()
        tau = optimal_checkpoint_interval(max(self.delta, 1e-6), mttf)
        if math.isinf(tau):
            return tau
        tau = max(tau, self.min_tau)
        if self.max_tau is not None:
            tau = min(tau, self.max_tau)
        return tau

    def refresh(self) -> None:
        """Recompute τ (call after the cluster mix or MTTF changes)."""
        self.tau = self._compute_tau()
        self.stats.tau_history.append(self.tau)

    def reset_conservative_delta(self) -> None:
        """Re-derive the conservative δ from the *current* cluster size.

        Needed when the manager was constructed before provisioning (the
        cluster had zero workers, so the all-memory-in-use bound was zero).
        """
        self.delta = self._conservative_delta()
        self.refresh()

    def set_delta(self, delta: float) -> None:
        """Install a new checkpoint-time estimate and re-derive τ."""
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.delta = delta
        self.stats.delta_updates += 1
        self.refresh()

    # ------------------------------------------------------------------
    # Timer
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic checkpoint signalling."""
        if self._running:
            return
        self._running = True
        self._schedule_timer()

    def stop(self) -> None:
        self._running = False
        if self._timer_event is not None:
            self.env.events.cancel(self._timer_event)
            self._timer_event = None

    def _schedule_timer(self) -> None:
        if not self._running or math.isinf(self.tau):
            return
        self._timer_event = self.env.schedule_in(
            self.tau, "checkpoint_timer", callback=self._on_timer
        )

    def _on_timer(self, event) -> None:
        if not self._running:
            return
        self.stats.timer_fires += 1
        # Policy 1, verbatim: "Every τ time units, checkpoint RDDs that are
        # at the current frontier of the program's lineage graph."  The
        # cached frontier (sinks among persisted RDDs — an interactive
        # session's tables, KMeans's point set) is durably saved here;
        # the due flag additionally catches RDDs *generated* during the
        # upcoming interval.  Already-checkpointed RDDs dedupe away.
        for rdd in self._cached_frontier():
            if not self.context.checkpoints.is_fully_checkpointed(rdd):
                self.mark_rdd(rdd)
        self._due = True
        self.refresh()
        self._schedule_timer()

    def _cached_frontier(self) -> List["RDD"]:
        """Materialised cached RDDs that are not ancestors of other cached
        RDDs — the sinks of the lineage graph as it currently stands."""
        from repro.engine import lineage

        candidates = [
            rdd
            for rdd in self.context._rdds
            if rdd.persisted and self.context.cached_partition_count(rdd) > 0
        ]
        frontier = []
        for rdd in candidates:
            ancestor_of_other = any(
                rdd.rdd_id in {a.rdd_id for a in lineage.ancestors(other)}
                for other in candidates
                if other.rdd_id != rdd.rdd_id
            )
            if not ancestor_of_other:
                frontier.append(rdd)
        return frontier

    @property
    def checkpoint_due(self) -> bool:
        return self._due

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_partition_computed(self, cp: "ComputedPartition", t: float) -> None:
        """Record partition sizes for the δ estimate."""
        self._frontier_bytes.setdefault(cp.rdd.rdd_id, {})[cp.partition] = cp.nbytes

    def on_rdd_generated(self, rdd: "RDD", t: float) -> None:
        """A new RDD began materialising at the lineage frontier.

        Policy 1: if the τ timer has expired, the next new frontier RDD is
        marked for checkpointing, and RDDs *derived from it* are not marked
        again until the next interval.  Shuffle-output RDDs are additionally
        marked every τ / (#map partitions) because of their wide
        recomputation footprint.
        """
        # The paper's "do not checkpoint RDDs derived from a just-marked
        # frontier until the next interval" falls out of the flag/timestamp
        # mechanics: the τ flag is consumed by the first mark, and the
        # shuffle timestamp rate-limits shuffle marks globally, so an RDD
        # generated instants after its marked ancestor never qualifies.
        mark = False
        if self._due:
            mark = True
            self._due = False
        if self.shuffle_rule_enabled and self._is_shuffle_output(rdd):
            interval = shuffle_checkpoint_interval(self.tau, self._num_map_partitions(rdd))
            if t - self._last_shuffle_checkpoint >= interval:
                mark = True
                self.stats.shuffle_marks += 1
                self._last_shuffle_checkpoint = t
        if mark and not self.context.checkpoints.is_fully_checkpointed(rdd):
            self.mark_rdd(rdd)

    def on_rdd_materialized(self, rdd: "RDD", t: float) -> None:
        """An RDD became fully computed: refresh δ from its byte volume."""
        sizes = self._frontier_bytes.get(rdd.rdd_id, {})
        frontier_bytes = sum(sizes.values())
        if frontier_bytes > 0:
            cluster = self.context.cluster
            dfs = self.env.dfs.config
            self.set_delta(
                checkpoint_time_estimate(
                    frontier_bytes,
                    max(1, cluster.size),
                    dfs.write_bandwidth,
                    dfs.replication,
                )
            )

    def mark_rdd(self, rdd: "RDD") -> None:
        """Mark an RDD and kick off writes for already-cached partitions."""
        registry = self.context.checkpoints
        if not registry.is_marked(rdd):
            registry.mark(rdd)
            self.stats.rdds_marked += 1
        self.context.scheduler.enqueue_checkpoints_for(rdd)

    def on_rdd_checkpointed(self, rdd: "RDD", t: float) -> None:
        """All partitions of a marked RDD are durable (GC already ran)."""
        self.stats.rdds_checkpointed += 1

    @staticmethod
    def _is_shuffle_output(rdd: "RDD") -> bool:
        return any(isinstance(dep, ShuffleDependency) for dep in rdd.dependencies)

    @staticmethod
    def _num_map_partitions(rdd: "RDD") -> int:
        return max(
            dep.num_map_partitions
            for dep in rdd.dependencies
            if isinstance(dep, ShuffleDependency)
        )
