"""Configuration for the Flint managed service."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.simulation.clock import DAY, HOUR
from repro.storage.ebs import EBSCostModel


class Mode(enum.Enum):
    """Workload mode, selecting the checkpointing/selection policy pair.

    BATCH: single cheapest market, all-at-once revocations tolerated.
    INTERACTIVE: diversified market mix minimising response-time variance.
    """

    BATCH = "batch"
    INTERACTIVE = "interactive"


@dataclass
class FlintConfig:
    """Tunable knobs of a Flint deployment.

    Defaults mirror the paper's evaluation setup: 10 r3.large workers,
    bid = on-demand price, checkpoints on 3-way replicated HDFS-on-EBS.
    """

    cluster_size: int = 10
    mode: Mode = Mode.BATCH
    instance_type_name: str = "r3.large"
    bid_multiplier: float = 1.0

    # Policy estimates (refined online by the fault-tolerance manager).
    T_estimate: float = 2 * HOUR
    initial_delta: Optional[float] = None  # None => conservative derivation
    min_tau: float = 30.0
    max_tau: Optional[float] = None

    # Selection knobs.
    price_window: float = 7 * DAY
    mttf_window: float = 14 * DAY
    correlation_threshold: float = 0.3
    max_markets: Optional[int] = None
    #: Override for the aggregate cluster MTTF used by the checkpoint policy;
    #: None derives it from the markets actually in use.  Experiments use the
    #: override to pin the MTTF regime (e.g. Figure 6's 50h).
    mttf_override: Optional[float] = None

    checkpointing_enabled: bool = True
    #: Proactively request replacements at the revocation warning (§4).
    replace_on_warning: bool = True

    ebs: EBSCostModel = field(default_factory=EBSCostModel)

    def __post_init__(self):
        if self.cluster_size <= 0:
            raise ValueError("cluster_size must be positive")
        if self.bid_multiplier <= 0:
            raise ValueError("bid_multiplier must be positive")
        if self.min_tau <= 0:
            raise ValueError("min_tau must be positive")
