"""Unmodified-Spark and on-demand baseline constructors.

"Unmodified Spark on spot instances" keeps Spark's built-in recovery —
lineage recomputation from cached ancestors or source data — but never
checkpoints automatically.  The paper's Figure 10b variant still uses
Flint's server selection (isolating the checkpointing contribution); pass a
different ``node_manager_cls`` to isolate selection instead.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.config import FlintConfig
from repro.core.flint import Flint
from repro.core.node_manager import NodeManager
from repro.market.provider import CloudProvider


def unmodified_spark_flint(
    provider: CloudProvider,
    config: Optional[FlintConfig] = None,
    seed: int = 0,
    node_manager_cls: type = NodeManager,
    **flint_kwargs,
) -> Flint:
    """A Flint deployment running unmodified Spark (no auto-checkpointing)."""
    base = config or FlintConfig()
    cfg = dataclasses.replace(base, checkpointing_enabled=False)
    return Flint(provider, cfg, seed=seed, node_manager_cls=node_manager_cls, **flint_kwargs)


class _OnDemandOnlyNodeManager(NodeManager):
    """Selection pinned to the on-demand pool (the reference baseline)."""

    def _select(self, exclude: tuple = ()):  # type: ignore[override]
        from repro.core.selection import SelectionResult

        self.stats.selections += 1
        od = self._on_demand_market_id()
        price = self.provider.market(od).on_demand_price
        return SelectionResult(
            market_ids=[od],
            expected_runtime=self.config.T_estimate,
            expected_cost_per_server=self.config.T_estimate / 3600.0 * price,
        )


def on_demand_flint(
    provider: CloudProvider,
    config: Optional[FlintConfig] = None,
    seed: int = 0,
    **flint_kwargs,
) -> Flint:
    """A cluster of non-revocable on-demand servers (no checkpointing needed)."""
    base = config or FlintConfig()
    cfg = dataclasses.replace(base, checkpointing_enabled=False)
    return Flint(
        provider, cfg, seed=seed, node_manager_cls=_OnDemandOnlyNodeManager, **flint_kwargs
    )
