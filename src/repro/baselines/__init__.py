"""Baselines the paper compares Flint against (§5).

* **Unmodified Spark on spot** — lineage recomputation only, no automated
  checkpointing (``unmodified_spark_flint``).
* **System-level checkpointing** — snapshot each worker's *entire* memory
  state every interval instead of just the lineage frontier
  (:class:`~repro.baselines.system_checkpoint.SystemCheckpointManager`),
  the approach of SpotCheck/SpotOn-style systems.
* **SpotFleet** — EC2's application-agnostic replacement service: pick the
  cheapest (or least volatile) market by *current price*, ignoring the
  impact of revocations on the application
  (:class:`~repro.baselines.spot_fleet.SpotFleetNodeManager`).
* **Spark-EMR on spot** — unmodified Spark plus EMR's flat 25%-of-on-demand
  management fee (:func:`~repro.baselines.emr.emr_fee`).
* **On-demand** — the non-revocable reference point.
"""

from repro.baselines.emr import EMR_FEE_FRACTION, emr_fee, emr_total_cost
from repro.baselines.spot_fleet import SpotFleetNodeManager, SpotFleetStrategy
from repro.baselines.system_checkpoint import SystemCheckpointManager
from repro.baselines.unmodified import unmodified_spark_flint, on_demand_flint

__all__ = [
    "SpotFleetNodeManager",
    "SpotFleetStrategy",
    "SystemCheckpointManager",
    "emr_fee",
    "emr_total_cost",
    "EMR_FEE_FRACTION",
    "unmodified_spark_flint",
    "on_demand_flint",
]
