"""SpotFleet-style server selection (§5.5, Figure 11a).

EC2 SpotFleet is application-agnostic: it bids the on-demand price on the
user's behalf and replaces revoked instances using a simple allocation
strategy — ``lowestPrice`` (cheapest *current* spot price) or a
least-volatile ("diversified"-ish) heuristic — with no model of what a
revocation costs the application.  Comparing Flint against it isolates the
value of Flint's expected-cost selection from the generic savings of merely
using spot instances.
"""

from __future__ import annotations

import enum

from repro.core.node_manager import NodeManager
from repro.core.selection import SelectionResult, snapshot_markets

import numpy as np


class SpotFleetStrategy(enum.Enum):
    LOWEST_PRICE = "lowestPrice"
    LEAST_VOLATILE = "leastVolatile"


class SpotFleetNodeManager(NodeManager):
    """Replaces Flint's cost-model selection with SpotFleet heuristics.

    Use with ``unmodified_spark_flint(provider, node_manager_cls=...)`` for
    the faithful EMR/SpotFleet baseline (those services run unmodified
    Spark).
    """

    strategy: SpotFleetStrategy = SpotFleetStrategy.LOWEST_PRICE

    def _select(self, exclude: tuple = ()) -> SelectionResult:  # type: ignore[override]
        self.stats.selections += 1
        snapshots = snapshot_markets(
            self.provider,
            self.env.now,
            self.bidding,
            window=self.config.price_window,
            mttf_window=self.config.mttf_window,
        )
        excluded = set(exclude)
        candidates = [
            s
            for s in snapshots
            if not s.is_on_demand
            and s.market_id not in excluded
            # SpotFleet only filters unfulfillable bids, not "risky" prices.
            and s.current_price <= self.bidding.bid_for(self.provider.market(s.market_id))
        ]
        if not candidates:
            od = self._on_demand_market_id()
            price = self.provider.market(od).on_demand_price
            return SelectionResult([od], self.config.T_estimate,
                                   self.config.T_estimate / 3600.0 * price)
        if self.strategy == SpotFleetStrategy.LOWEST_PRICE:
            best = min(candidates, key=lambda s: s.current_price)
        else:
            best = min(candidates, key=lambda s: self._volatility(s.market_id))
        return SelectionResult(
            market_ids=[best.market_id],
            expected_runtime=self.config.T_estimate,
            expected_cost_per_server=self.config.T_estimate / 3600.0 * best.current_price,
        )

    def _volatility(self, market_id: str) -> float:
        """Coefficient of variation of recent prices (the 'least volatile'
        allocation heuristic)."""
        market = self.provider.market(market_id)
        end = market._trace_time(self.env.now)
        start = max(0.0, end - self.config.price_window)
        samples = np.array(
            [market.trace.price_at(x) for x in np.arange(start, end, 3600.0)]
        )
        if len(samples) == 0 or samples.mean() <= 0:
            return float("inf")
        return float(samples.std() / samples.mean())


class LeastVolatileSpotFleetNodeManager(SpotFleetNodeManager):
    """SpotFleet with the least-volatile allocation strategy."""

    strategy = SpotFleetStrategy.LEAST_VOLATILE
