"""Spark-EMR cost model (§5.5).

Amazon's Elastic MapReduce runs unmodified Spark on spot instances but
charges a flat management fee of 25% of the *on-demand* price per instance
hour on top of the spot price.  EMR makes no application-aware decisions, so
its runtime behaviour is the unmodified-Spark baseline; only its bill
differs.
"""

from __future__ import annotations

from repro.simulation.clock import HOUR

#: EMR's management fee as a fraction of the on-demand hourly price.
EMR_FEE_FRACTION = 0.25


def emr_fee(
    on_demand_price: float, num_instances: int, duration_seconds: float
) -> float:
    """The EMR surcharge for a cluster over a duration."""
    if duration_seconds < 0:
        raise ValueError("duration must be non-negative")
    if num_instances < 0:
        raise ValueError("num_instances must be non-negative")
    hours = duration_seconds / HOUR
    return EMR_FEE_FRACTION * on_demand_price * num_instances * hours


def emr_total_cost(
    instance_cost: float,
    on_demand_price: float,
    num_instances: int,
    duration_seconds: float,
) -> float:
    """Spot instance cost plus the EMR management fee."""
    return instance_cost + emr_fee(on_demand_price, num_instances, duration_seconds)
