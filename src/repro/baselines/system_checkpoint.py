"""System-level distributed checkpointing baseline (Figure 6b).

Systems-level approaches (VM/container snapshots, as in SpotCheck [26] and
SpotOn [30]) are application-agnostic: every interval they must persist each
worker's *entire* memory footprint — active RDDs, stale cached RDDs, shuffle
buffers, runtime state — because they cannot tell live application state
from garbage.  Flint's insight is that checkpointing only the lineage
frontier moves an order of magnitude less data.

``SystemCheckpointManager`` plugs into the engine through the same hooks as
Flint's fault-tolerance manager but, on every timer fire, snapshots every
cached block (re-writing unchanged ones — a snapshot has no notion of
incremental lineage) inflated by a system-state overhead factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.interval import optimal_checkpoint_interval
from repro.engine.task import TaskKind, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext
    from repro.engine.rdd import RDD
    from repro.engine.task import ComputedPartition


@dataclass
class SystemCheckpointStats:
    snapshots: int = 0
    snapshots_skipped: int = 0
    blocks_written: int = 0
    bytes_written: int = 0


class SystemCheckpointManager:
    """Whole-memory periodic snapshots, application-blind.

    Args:
        context: engine context to attach to.
        mttf_fn: cluster MTTF supplier (same interface as Flint's manager).
        system_overhead_factor: bytes written per byte of cached RDD data —
            covers shuffle buffers, JVM heap, and OS state a VM snapshot
            cannot exclude (default 2.5x).
        interval: fixed snapshot interval; None derives √(2·δ·MTTF) from the
            *system* δ, which is what a fair systems-level deployment would
            do.
    """

    def __init__(
        self,
        context: "FlintContext",
        mttf_fn,
        system_overhead_factor: float = 2.5,
        interval: Optional[float] = None,
        min_tau: float = 30.0,
    ):
        if system_overhead_factor < 1.0:
            raise ValueError("system_overhead_factor must be >= 1")
        self.context = context
        self.env = context.env
        self.mttf_fn = mttf_fn
        self.system_overhead_factor = system_overhead_factor
        self.fixed_interval = interval
        self.min_tau = min_tau
        self.stats = SystemCheckpointStats()
        self._running = False
        self._timer_event = None
        self._snapshot_epoch = 0
        context.ft_manager = self

    # ------------------------------------------------------------------
    def current_interval(self) -> float:
        if self.fixed_interval is not None:
            return self.fixed_interval
        delta = self._system_delta()
        tau = optimal_checkpoint_interval(max(delta, 1e-6), self.mttf_fn())
        return max(tau, self.min_tau)

    def _system_delta(self) -> float:
        """Time to write every worker's full memory image in parallel."""
        cluster = self.context.cluster
        workers = cluster.live_workers()
        if not workers:
            return 0.0
        dfs = self.env.dfs
        worst = 0.0
        for worker in workers:
            used = worker.block_manager.used_bytes if worker.block_manager else 0
            worst = max(worst, dfs.write_duration(int(used * self.system_overhead_factor)))
        return worst

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_timer()

    def stop(self) -> None:
        self._running = False
        if self._timer_event is not None:
            self.env.events.cancel(self._timer_event)
            self._timer_event = None

    def refresh(self) -> None:
        """Interface parity with Flint's manager (interval is re-derived
        lazily at each timer, so nothing to do)."""

    def _schedule_timer(self) -> None:
        if not self._running:
            return
        self._timer_event = self.env.schedule_in(
            self.current_interval(), "system_checkpoint_timer", callback=self._on_timer
        )

    def _on_timer(self, event) -> None:
        if not self._running:
            return
        self.snapshot_now()
        self._schedule_timer()

    # ------------------------------------------------------------------
    def snapshot_now(self) -> int:
        """Write every cached block (inflated by the system factor) to DFS."""
        scheduler = self.context.scheduler
        if scheduler._checkpoint_queue:
            # The previous snapshot hasn't finished flushing; a VM snapshot
            # system cannot start a new epoch mid-snapshot.
            self.stats.snapshots_skipped += 1
            return 0
        self.stats.snapshots += 1
        self._snapshot_epoch += 1
        registry = self.context.checkpoints
        rdd_index: Dict[int, "RDD"] = {r.rdd_id: r for r in self.context._rdds}
        queued = 0
        for worker in self.context.cluster.live_workers():
            manager = worker.block_manager
            if manager is None:
                continue
            for block_id in manager.memory_block_ids():
                # block ids look like rdd_<id>_<partition>
                try:
                    _prefix, rdd_id, partition = block_id.split("_")
                    rdd = rdd_index[int(rdd_id)]
                    partition = int(partition)
                except (ValueError, KeyError):
                    continue
                hit = manager.get(block_id)
                if hit is None:
                    continue
                data, nbytes, _tier = hit
                # Snapshots rewrite everything: drop the stale copy so the
                # scheduler's has-partition dedupe doesn't skip the write.
                # Deleting via the registry keeps its change listeners (and
                # the scheduler's cached readiness state) in sync.
                registry.discard_partition(rdd, partition)
                inflated = int(nbytes * self.system_overhead_factor)
                spec = TaskSpec(
                    TaskKind.CHECKPOINT,
                    rdd,
                    partition,
                    data=data,
                    nbytes=inflated,
                    preferred_worker_id=worker.worker_id,
                )
                if scheduler.enqueue_checkpoint(spec):
                    queued += 1
                    self.stats.blocks_written += 1
                    self.stats.bytes_written += inflated
        if queued:
            scheduler.pump()
        return queued

    # ------------------------------------------------------------------
    # Engine hooks (application-blind: it reacts only to its timer)
    # ------------------------------------------------------------------
    def on_partition_computed(self, cp: "ComputedPartition", t: float) -> None:
        pass

    def on_rdd_generated(self, rdd: "RDD", t: float) -> None:
        pass

    def on_rdd_materialized(self, rdd: "RDD", t: float) -> None:
        pass

    def on_rdd_checkpointed(self, rdd: "RDD", t: float) -> None:
        pass
