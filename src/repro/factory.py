"""Convenience constructors for common experiment setups.

Experiments need a provider with realistic markets far more often than they
need custom ones; ``standard_provider`` builds the EC2-like catalog (plus an
on-demand pool and optionally a GCE-style preemptible pool) from a single
seed, so every benchmark and example starts from the same two lines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.market.market import OnDemandMarket, PreemptibleMarket, SpotMarket
from repro.market.provider import CloudProvider
from repro.simulation.clock import DAY, HOUR
from repro.simulation.rng import SeededRNG
from repro.traces.ec2 import EC2_CATALOG, MarketSpec, build_market_traces
from repro.traces.gce import PreemptibleLifetimeModel


def standard_provider(
    seed: int = 0,
    catalog: Optional[Sequence[MarketSpec]] = None,
    horizon: float = 90 * DAY,
    include_preemptible: bool = False,
    on_demand_price: float = 0.175,
) -> CloudProvider:
    """A provider with the EC2-like spot catalog plus an on-demand pool.

    Args:
        seed: master seed for all synthetic price traces.
        catalog: market specs; defaults to :data:`repro.traces.ec2.EC2_CATALOG`.
        horizon: trace length in seconds (traces repeat periodically past it).
        include_preemptible: add a GCE-style fixed-price pool
          (``gce/preemptible``, ~22h MTTF, 24h lifetime cap).
        on_demand_price: $/hour of the on-demand fallback pool
          (r3.large's 2015 price by default).
    """
    rng = SeededRNG(seed, "standard-provider")
    specs = list(EC2_CATALOG) if catalog is None else list(catalog)
    traces = build_market_traces(rng, specs, horizon=horizon)
    markets: List = []
    for spec in specs:
        market = SpotMarket(
            spec.market_id, traces[spec.market_id], spec.instance_type.on_demand_price
        )
        # Workers launched from this pool are this instance type (interactive
        # clusters mix types across markets, §3.2).
        market.instance_type = spec.instance_type
        markets.append(market)
    markets.append(OnDemandMarket("on-demand/r3.large", on_demand_price))
    if include_preemptible:
        markets.append(
            PreemptibleMarket(
                "gce/preemptible",
                fixed_price=0.30 * on_demand_price,
                on_demand_price=on_demand_price,
                lifetime_model=PreemptibleLifetimeModel(target_mttf=22 * HOUR),
                seed=seed,
            )
        )
    return CloudProvider(markets)


def uniform_mttf_provider(
    seed: int,
    mttf_hours: float,
    num_markets: int = 5,
    on_demand_price: float = 0.175,
    horizon: float = 90 * DAY,
) -> CloudProvider:
    """A provider whose spot markets all target one MTTF.

    Used by experiments that sweep volatility (Figures 6c and 10a): every
    market has the same failure rate, so the cluster MTTF is pinned no
    matter which market selection picks.
    """
    from repro.traces.ec2 import R3_LARGE

    # Keep spikes short relative to the MTTF so the market's *mean* price
    # stays below on-demand — otherwise selection (correctly) refuses spot.
    spike_hours = min(0.25, mttf_hours / 30.0)
    specs = [
        MarketSpec(
            f"uniform-{i}/r3.large",
            R3_LARGE,
            mttf_hours,
            steady_fraction=0.25,
            spike_duration_hours=spike_hours,
        )
        for i in range(num_markets)
    ]
    return standard_provider(
        seed, catalog=specs, horizon=horizon, on_demand_price=on_demand_price
    )
