"""Per-worker block store: Spark's BlockManager.

Cached RDD partitions live here.  The store is capacity-bounded (40% of
instance memory by default); inserting past capacity evicts least-recently
used blocks, spilling them to the worker's local SSD when it has room and
dropping them otherwise.  Dropped blocks must be recomputed from lineage —
under large simultaneous revocations this is precisely the memory-pressure
recomputation storm of Figure 3.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.engine.columnar import ColumnarBatch
from repro.storage.local_disk import DiskFullError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.worker import Worker
    from repro.engine.block_index import BlockLocationIndex


def block_id_for(rdd_id: int, partition: int) -> str:
    """Canonical cache key for an RDD partition."""
    return f"rdd_{rdd_id}_{partition}"


@dataclass
class BlockStats:
    """Counters for cache behaviour (used by tests and diagnostics)."""

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    puts: int = 0
    evictions_to_disk: int = 0
    drops: int = 0


@dataclass
class _Block:
    data: Any
    nbytes: int
    spill: bool = False


class BlockManager:
    """LRU in-memory block cache with local-disk spill for one worker."""

    _SPILL_PREFIX = "spill/"

    def __init__(
        self,
        worker: "Worker",
        capacity_bytes: Optional[int] = None,
        index: Optional["BlockLocationIndex"] = None,
        obs: Optional[Any] = None,
    ):
        self.worker = worker
        #: Observability hook (attribute-wired by the scheduler on worker
        #: registration); None keeps the cache free of any tracing branch.
        self.obs = obs
        self.capacity_bytes = (
            worker.storage_memory_bytes if capacity_bytes is None else int(capacity_bytes)
        )
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._memory: "OrderedDict[str, _Block]" = OrderedDict()
        self._used = 0
        self.stats = BlockStats()
        #: Driver-side location index; every presence change is mirrored
        #: there so cluster-wide lookups never scan workers.
        self.index = index

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def memory_block_ids(self) -> List[str]:
        """Ids of blocks currently resident in memory (LRU -> MRU order)."""
        return list(self._memory)

    # ------------------------------------------------------------------
    def put(self, block_id: str, data: Any, nbytes: int, spill: bool = False) -> bool:
        """Insert a block, evicting LRU blocks as needed.

        ``spill`` selects the storage level: False is Spark's default
        MEMORY_ONLY (evicted blocks are *dropped* and must be recomputed);
        True is MEMORY_AND_DISK (evicted blocks spill to the local SSD).

        Returns True if the block ended up in memory.  A block larger than
        the whole store is rejected outright (Spark drops such blocks).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if isinstance(data, ColumnarBatch):
            # Plane-boundary rule: blocks, shuffle buckets, checkpoints and
            # action results are always row-form.  A batch reaching the
            # cache means a kernel leaked its internal representation.
            raise TypeError(
                "ColumnarBatch must not cross the block-manager boundary; "
                "convert with to_records() first"
            )
        self.stats.puts += 1
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.inc("blocks.puts")
        if nbytes > self.capacity_bytes:
            # Rejecting the oversized replacement still invalidates any
            # existing copy: the caller produced a new version of this
            # block, so the old bytes (memory or spill) are stale and the
            # location index must forget this worker.
            old = self._memory.pop(block_id, None)
            if old is not None:
                self._used -= old.nbytes
            spilled = self.worker.local_disk.delete(self._SPILL_PREFIX + block_id)
            if (old is not None or spilled) and self.index is not None:
                self.index.remove(block_id, self.worker.worker_id)
            self.stats.drops += 1
            if self.obs is not None and self.obs.enabled:
                self.obs.metrics.inc("blocks.dropped")
            return False
        if block_id in self._memory:
            old = self._memory.pop(block_id)
            self._used -= old.nbytes
        # Drop a stale spilled copy, if any: memory now holds the truth.
        self.worker.local_disk.delete(self._SPILL_PREFIX + block_id)
        while self._used + nbytes > self.capacity_bytes:
            self._evict_one()
        self._memory[block_id] = _Block(data, nbytes, spill)
        self._used += nbytes
        if self.index is not None:
            self.index.add(block_id, self.worker)
        return True

    def _evict_one(self) -> None:
        victim_id, victim = self._memory.popitem(last=False)
        self._used -= victim.nbytes
        if not victim.spill:
            self.stats.drops += 1
            if self.obs is not None and self.obs.enabled:
                self.obs.metrics.inc("blocks.dropped")
            if self.index is not None:
                self.index.remove(victim_id, self.worker.worker_id)
            return
        try:
            self.worker.local_disk.put(self._SPILL_PREFIX + victim_id, victim.data, victim.nbytes)
            self.stats.evictions_to_disk += 1
            if self.obs is not None and self.obs.enabled:
                self.obs.metrics.inc("blocks.spilled")
        except DiskFullError:
            self.stats.drops += 1
            if self.obs is not None and self.obs.enabled:
                self.obs.metrics.inc("blocks.dropped")
            if self.index is not None:
                self.index.remove(victim_id, self.worker.worker_id)

    def get(self, block_id: str) -> Optional[Tuple[Any, int, str]]:
        """Fetch a block: returns ``(data, nbytes, 'memory'|'disk')`` or None."""
        block = self._memory.get(block_id)
        if block is not None:
            self._memory.move_to_end(block_id)
            self.stats.hits_memory += 1
            return block.data, block.nbytes, "memory"
        spill_key = self._SPILL_PREFIX + block_id
        if self.worker.local_disk.has(spill_key):
            self.stats.hits_disk += 1
            return (
                self.worker.local_disk.get(spill_key),
                self.worker.local_disk.size_of(spill_key),
                "disk",
            )
        self.stats.misses += 1
        return None

    def peek(self, block_id: str) -> Optional[Any]:
        """Read a block's data with *no* side effects.

        Unlike :meth:`get` this touches neither the LRU order nor the hit
        counters — the executor plane uses it to stage speculative task
        payloads without perturbing the cache behaviour the simulation (and
        its bit-identity contract) depends on.
        """
        block = self._memory.get(block_id)
        if block is not None:
            return block.data
        spill_key = self._SPILL_PREFIX + block_id
        if self.worker.local_disk.has(spill_key):
            return self.worker.local_disk.get(spill_key)
        return None

    def has(self, block_id: str) -> bool:
        return block_id in self._memory or self.worker.local_disk.has(self._SPILL_PREFIX + block_id)

    def remove(self, block_id: str) -> bool:
        """Drop a block from memory and spill; True if anything was removed."""
        removed = False
        block = self._memory.pop(block_id, None)
        if block is not None:
            self._used -= block.nbytes
            removed = True
        if self.worker.local_disk.delete(self._SPILL_PREFIX + block_id):
            removed = True
        if removed and self.index is not None:
            self.index.remove(block_id, self.worker.worker_id)
        return removed

    def note_spill_deleted(self, block_id: str) -> None:
        """A spilled copy was deleted externally (shuffle-space eviction).

        Memory and spill copies are mutually exclusive (``put`` drops the
        stale spill), so losing the spill file means the block is gone.
        """
        if self.index is not None and block_id not in self._memory:
            self.index.remove(block_id, self.worker.worker_id)

    def remove_rdd(self, rdd_id: int) -> int:
        """Drop every cached partition of one RDD; returns count removed."""
        prefix = f"rdd_{rdd_id}_"
        doomed = [b for b in self._memory if b.startswith(prefix)]
        doomed += [
            k[len(self._SPILL_PREFIX) :]
            for k in self.worker.local_disk.keys()
            if k.startswith(self._SPILL_PREFIX + prefix)
        ]
        removed = 0
        for block_id in set(doomed):
            if self.remove(block_id):
                removed += 1
        return removed

    def clear(self) -> None:
        """Wipe the store on revocation.

        The worker's local disk (and with it every spilled copy) dies in the
        same instant — ``Worker.kill`` clears it before calling here — so the
        location index forgets *all* of this worker's blocks, not just the
        memory-resident ones.
        """
        self._memory.clear()
        self._used = 0
        if self.index is not None:
            self.index.purge_worker(self.worker.worker_id)
