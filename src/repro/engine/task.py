"""Task descriptors for the event-driven scheduler.

Tasks exist only at materialisation points, as in Spark: result tasks
(pipelined narrow chains ending at an action), shuffle map tasks (pipelined
chains ending at a shuffle write), and Flint's asynchronous checkpoint write
tasks.  Everything between those points is computed inline within a task.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.dependencies import ShuffleDependency
    from repro.engine.rdd import RDD


class TaskKind(enum.Enum):
    RESULT = "result"
    SHUFFLE_MAP = "shuffle_map"
    CHECKPOINT = "checkpoint"


@dataclass
class TaskSpec:
    """An executable unit of work, deduplicated by :attr:`key`."""

    kind: TaskKind
    rdd: "RDD"
    partition: int
    # RESULT: the action's per-partition function.
    func: Optional[Callable[[List[Any]], Any]] = None
    # SHUFFLE_MAP: the shuffle being written.
    dep: Optional["ShuffleDependency"] = None
    # CHECKPOINT: the captured partition payload.
    data: Any = None
    nbytes: int = 0
    preferred_worker_id: Optional[str] = None
    # RESULT: the submitting job.  Two concurrent jobs may act on the same
    # RDD, so result identity must include the job; map and checkpoint work
    # stays job-agnostic (any job's output satisfies every consumer).
    job_id: Optional[int] = None
    # key is consulted on every scheduler dict/set operation; compute the
    # tuple eagerly (identifying fields never change after construction) so
    # lookups are a plain attribute read, and use the kind's value string —
    # its hash is cached on the interned str object, unlike Enum's per-call
    # name hashing.
    key: Tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind == TaskKind.SHUFFLE_MAP:
            self.key = (self.kind.value, self.dep.shuffle_id, self.partition)
        elif self.kind == TaskKind.RESULT:
            self.key = (self.kind.value, self.rdd.rdd_id, self.partition, self.job_id)
        else:
            self.key = (self.kind.value, self.rdd.rdd_id, self.partition)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskSpec({self.kind.value}, rdd={self.rdd.rdd_id}, p={self.partition})"


@dataclass
class TaskResult:
    """Serialisable output of one executor-plane kernel execution.

    This is the only object that crosses the worker/driver process boundary
    on the way back: plain records and counts, no engine references — it
    must survive ``pickle`` round trips (see :mod:`repro.engine.closure`).

    ``stage_counts`` holds the record count after each applied stage (in
    application order); the driver replays the corresponding simulated-time
    charges from them.  ``boundary_records`` carries the chain's resolved
    boundary input when the driver asked for it (``ship_boundary``), so the
    boundary node's own compute can be substituted at consume time.
    """

    records: List[Any]
    stage_counts: List[int] = field(default_factory=list)
    boundary_records: Optional[List[Any]] = None
    wall_seconds: float = 0.0
    #: True when the kernel ran its staged *batch* stages (columnar plane)
    #: instead of the row closures.  Records and stage counts are identical
    #: either way (the batch-kernel contract); the flag only keeps the
    #: driver's columnar chain/stage counters backend-invariant.
    used_columnar: bool = False


@dataclass
class PendingPut:
    """A deferred block-manager insert (applied at task completion).

    ``rdd`` lets the scheduler drop puts whose RDD was unpersisted while the
    task was in flight — with concurrent jobs, a sibling job's unpersist can
    land mid-task, and applying the put anyway would leak an unowned block.
    """

    block_id: str
    data: Any
    nbytes: int
    spill: bool = False
    rdd: Any = None


@dataclass
class ComputedPartition:
    """A partition materialised during task execution.

    Reported to the fault-tolerance manager at completion so it can track
    the lineage frontier and capture checkpoint payloads.
    """

    rdd: "RDD"
    partition: int
    data: Any
    nbytes: int


@dataclass
class RunningTask:
    """Bookkeeping for a dispatched task awaiting its completion event."""

    spec: TaskSpec
    worker_id: str
    started_at: float
    duration: float
    # Deferred side effects captured by the data-plane execution:
    result: Any = None
    pending_puts: List[PendingPut] = field(default_factory=list)
    map_buckets: Optional[List[List[Any]]] = None
    computed: List[ComputedPartition] = field(default_factory=list)
    completion_event: Any = None
    # The job whose frontier this task was dispatched from (None for
    # checkpoint writes); drives per-job and per-pool slot accounting.
    job: Any = None
