"""Closure serialisation for the executor plane.

Task kernels (see :mod:`repro.engine.executor`) carry plain-data records and
pure Python closures to worker processes.  Workload code builds pipelines out
of lambdas and locally-defined functions, which the stdlib pickler rejects —
``cloudpickle`` serialises those by value.  We try the cheap stdlib pickler
first (it handles module-level functions and all plain data) and fall back to
cloudpickle only when needed; when neither can serialise a closure the caller
gets :class:`UnpicklableClosureError` with the original reason attached.
"""

from __future__ import annotations

import pickle
from typing import Any

try:  # cloudpickle ships with the scientific-python stack; never required.
    import cloudpickle as _cloudpickle
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _cloudpickle = None


class UnpicklableClosureError(TypeError):
    """A task closure cannot be serialised for out-of-process execution.

    Raised when both the stdlib pickler and cloudpickle (if installed)
    reject the object — typically a closure capturing a live resource
    (socket, lock, file handle) or an engine object (RDDs and contexts are
    driver-side by design and refuse pickling).  The executor plane treats
    this as "run inline": correctness never depends on offload.
    """

    def __init__(self, obj: Any, reason: Exception):
        detail = (
            f"cannot pickle {type(obj).__name__!s} for the executor plane: "
            f"{reason}. Task kernels must capture only plain data and pure "
            f"functions — not RDDs, contexts, workers, or live OS resources."
        )
        super().__init__(detail)
        self.reason = reason


def dumps(obj: Any) -> bytes:
    """Serialise ``obj``, preferring the stdlib pickler.

    Raises:
        UnpicklableClosureError: when no available pickler can handle it.
    """
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # noqa: BLE001 - pickling failures are varied
        if _cloudpickle is None:
            raise UnpicklableClosureError(obj, exc) from exc
        try:
            return _cloudpickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as cp_exc:  # noqa: BLE001
            raise UnpicklableClosureError(obj, cp_exc) from cp_exc


def loads(blob: bytes) -> Any:
    """Inverse of :func:`dumps` (cloudpickle output loads via plain pickle)."""
    return pickle.loads(blob)
