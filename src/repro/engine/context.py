"""FlintContext: the engine's user-facing entry point (Spark's SparkContext).

A context binds an :class:`~repro.cluster.environment.Environment` and a
:class:`~repro.cluster.cluster.Cluster` to one application: it creates source
RDDs, runs actions through the scheduler, and hosts the application-wide
services (shuffle manager, checkpoint registry, and — when Flint manages the
application — the fault-tolerance manager).
"""

from __future__ import annotations

import contextlib
import itertools
import os
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.environment import Environment
from repro.engine.block_index import BlockLocationIndex
from repro.engine.block_manager import block_id_for
from repro.engine.checkpoint import CheckpointRegistry
from repro.engine.costs import CostModel
from repro.engine.shuffle import ShuffleManager
from repro.obs import Observability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.worker import Worker
    from repro.engine.rdd import RDD


class FlintContext:
    """Application context for building and executing RDD programs."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        cost_model: Optional[CostModel] = None,
        scheduler_mode: Optional[str] = None,
        obs: Optional[Observability] = None,
        fusion: Optional[bool] = None,
        columnar: Optional[bool] = None,
        executor: Optional[str] = None,
        executor_workers: Optional[int] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.cost_model = cost_model or CostModel()
        #: Fused narrow-chain execution (``FLINT_FUSION``, default on).
        #: ``off`` routes every task through the seed's per-RDD
        #: ``compute``/``iterator`` recursion — the golden reference the
        #: fusion equivalence tests compare against.
        if fusion is None:
            fusion = os.environ.get("FLINT_FUSION", "on").lower() not in (
                "off", "0", "false",
            )
        self.fusion_enabled = bool(fusion)
        #: Columnar fused-chain execution (``FLINT_COLUMNAR``, default on).
        #: Rides the fused plane only: a chain whose stages all carry batch
        #: kernels and whose boundary records columnarise runs as vectorised
        #: NumPy passes instead of per-record closures, bit-identical by
        #: contract.  Inert when fusion is off (there are no chains to
        #: lower) — the effective switch is ``fusion_enabled and
        #: columnar_enabled``.
        if columnar is None:
            from repro.engine.columnar import columnar_enabled_by_env

            columnar = columnar_enabled_by_env()
        self.columnar_enabled = bool(columnar)
        #: Bumped by :meth:`RDD.set_record_size`; versions every RDD's
        #: memoised inherited record size (see ``RDD.record_size``).
        self.sizing_epoch = 0
        self.record_size_memo_hits = 0
        self.record_size_memo_misses = 0
        #: Engine-wide tracing + metrics (``FLINT_TRACE``, default off).
        #: Attribute-wired into every subsystem below, the same first-class
        #: hook-point pattern as the fault injector.
        self.obs = obs if obs is not None else Observability()
        self.obs.bind_clock(lambda: env.now)
        #: Driver-side block-location index (Spark's BlockManagerMaster):
        #: block managers mirror every presence change here so cluster-wide
        #: block lookups are dict reads, never worker scans.
        self.block_index = BlockLocationIndex()
        self.shuffle_manager = ShuffleManager(obs=self.obs)
        self.checkpoints = CheckpointRegistry(env.dfs, obs=self.obs)
        cluster.obs = self.obs
        env.provider.obs = self.obs
        for market in env.provider.markets.values():
            market.obs = self.obs
        #: Set by Flint's fault-tolerance manager when it attaches (optional).
        self.ft_manager = None
        #: Installed by :class:`repro.faults.injector.FaultInjector`; None
        #: keeps every injection point a no-op branch on the hot path.
        self.fault_injector = None
        self._rdd_counter = itertools.count()
        self._rdds: List["RDD"] = []
        self._rdds_by_id: Dict[int, "RDD"] = {}
        #: Pool new jobs land in when none is named (see :meth:`job_pool`).
        self.current_job_pool = "default"
        #: Executor plane backend (``FLINT_EXECUTOR``, default ``inline``):
        #: where the pure bodies of tasks physically run.  The simulated
        #: clock, billing, and trace books are backend-invariant; resolved
        #: before the scheduler so its dispatch loop can consult it.
        from repro.engine.executor import resolve_backend

        self.executor = resolve_backend(executor, executor_workers)
        # Import here to break the rdd <-> scheduler <-> context cycle.
        from repro.engine.scheduler import TaskScheduler

        if scheduler_mode is None:
            scheduler_mode = os.environ.get("FLINT_SCHEDULER", "incremental")
        self.scheduler = TaskScheduler(self, mode=scheduler_mode)
        fault_spec = os.environ.get("FLINT_FAULT_PLAN")
        if fault_spec:
            # Deferred import: repro.faults builds on the engine modules.
            from repro.faults import install_plan

            install_plan(self, fault_spec)

    # ------------------------------------------------------------------
    # RDD creation
    # ------------------------------------------------------------------
    def parallelize(
        self, data: List[Any], num_partitions: Optional[int] = None, record_size: Optional[int] = None
    ) -> "RDD":
        """Distribute driver-side data into an RDD."""
        from repro.engine.transformations import ParallelCollectionRDD

        if num_partitions is not None and num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        n = num_partitions if num_partitions is not None else max(1, self.default_parallelism)
        return ParallelCollectionRDD(self, list(data), n, record_size)

    def generate(
        self,
        generator: Callable[[int], List[Any]],
        num_partitions: int,
        record_size: Optional[int] = None,
        compute_multiplier: float = 2.0,
        name: str = "source",
    ) -> "RDD":
        """Create a source RDD from a deterministic per-partition generator.

        Models loading input from stable storage (S3/HDFS): recomputing a
        source partition re-pays the generator's fetch/deserialise cost.
        """
        from repro.engine.transformations import GeneratedRDD

        return GeneratedRDD(self, generator, num_partitions, record_size, compute_multiplier, name)

    @property
    def default_parallelism(self) -> int:
        """Total CPU slots across live workers (Spark's default parallelism)."""
        return sum(w.slots for w in self.cluster.live_workers()) or 1

    def _next_rdd_id(self) -> int:
        return next(self._rdd_counter)

    def _register_rdd(self, rdd: "RDD") -> None:
        self._rdds.append(rdd)
        self._rdds_by_id[rdd.rdd_id] = rdd

    def rdd_by_id(self, rdd_id: int) -> Optional["RDD"]:
        """The registered RDD with this id, if any (invariant checking)."""
        return self._rdds_by_id.get(rdd_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_job(self, rdd: "RDD", func: Callable[[List[Any]], Any]) -> List[Any]:
        """Run ``func`` over every partition of ``rdd``; returns per-partition results."""
        return self.scheduler.run_job(rdd, func)

    def submit_job(
        self,
        rdd: "RDD",
        func: Callable[[List[Any]], Any],
        pool: Optional[str] = None,
        name: Optional[str] = None,
        on_done: Optional[Callable[[Any], None]] = None,
    ):
        """Submit an action without blocking; returns a ``JobHandle``."""
        return self.scheduler.submit_job(rdd, func, pool=pool, name=name, on_done=on_done)

    @contextlib.contextmanager
    def job_pool(self, name: str) -> Iterator[None]:
        """Route every action submitted in this scope into the named pool.

        Mirrors Spark's ``spark.scheduler.pool`` local property: workload
        code stays pool-agnostic (``rdd.count()`` just works) while the
        caller — typically the job server — decides where its jobs run.
        """
        previous = self.current_job_pool
        self.current_job_pool = name
        try:
            yield
        finally:
            self.current_job_pool = previous

    def run_until(self, t: float) -> None:
        """Advance simulated time with no job active (interactive idle)."""
        self.env.run_until(t)

    # ------------------------------------------------------------------
    # Block lookup across the cluster
    # ------------------------------------------------------------------
    def find_block(
        self, rdd: "RDD", partition: int, prefer: Optional["Worker"] = None
    ) -> Optional[Tuple[Any, int, "Worker", str]]:
        """Locate a cached partition on any live worker.

        Returns ``(data, nbytes, worker, tier)`` or None.  The preferred
        worker (the would-be reader) wins when it holds a copy; otherwise the
        earliest-joined holder serves, matching the seed's worker-scan order.
        Resolution is an index lookup — O(#holders), not O(#workers).
        """
        block_id = block_id_for(rdd.rdd_id, partition)
        holders = self.block_index.holders(block_id)
        if not holders:
            return None
        target = None
        if prefer is not None and prefer.alive:
            for worker in holders:
                if worker.worker_id == prefer.worker_id:
                    target = worker
                    break
        if target is None:
            target = holders[0]
        hit = target.block_manager.get(block_id)
        if hit is None:  # pragma: no cover - index and store always agree
            return None
        data, nbytes, tier = hit
        return data, nbytes, target, tier

    def block_exists(self, rdd: "RDD", partition: int) -> bool:
        """True when a cached copy of the partition exists on a live worker.

        One dict lookup against the block-location index (the seed scanned
        every worker's block manager here, under the scheduler's hot loop).
        """
        return self.block_index.exists(block_id_for(rdd.rdd_id, partition))

    def block_exists_scan(self, rdd: "RDD", partition: int) -> bool:
        """Reference worker-scan implementation of :meth:`block_exists`.

        This is the original O(workers) probe.  The legacy scheduler mode
        resolves readiness through it, and the block-index property tests
        hold :meth:`block_exists` to exactly its answers.
        """
        block_id = block_id_for(rdd.rdd_id, partition)
        return any(
            w.block_manager is not None and w.block_manager.has(block_id)
            for w in self.cluster.live_workers()
        )

    def cached_partition_count(self, rdd: "RDD") -> int:
        """How many of an RDD's partitions are currently cached somewhere."""
        return sum(1 for p in range(rdd.num_partitions) if self.block_exists(rdd, p))

    def drop_cached_rdd(self, rdd: "RDD") -> None:
        """Remove all cached partitions of an RDD (unpersist)."""
        for worker in self.cluster.live_workers():
            if worker.block_manager is not None:
                worker.block_manager.remove_rdd(rdd.rdd_id)

    # ------------------------------------------------------------------
    def profile_report(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``FLINT_PROFILE=1`` section timings across the hot subsystems.

        One merged view of the scheduler's rounds, the shuffle fetch path,
        and the checkpoint writer (empty sub-dicts when profiling is off).
        """
        return {
            "scheduler": self.scheduler.timers.report(),
            "shuffle": self.shuffle_manager.timers.report(),
            "checkpoint": self.checkpoints.timers.report(),
        }

    def metrics_report(self) -> Dict[str, Any]:
        """``FLINT_TRACE=1`` counters/gauges/histograms (empty when off)."""
        return self.obs.metrics.snapshot()

    # ------------------------------------------------------------------
    def __reduce__(self):
        """Contexts never cross a process boundary — refuse to pickle.

        Same contract as :meth:`RDD.__reduce__`: an executor-plane closure
        capturing the context would ship the entire live engine.
        """
        raise TypeError(
            "FlintContext is driver-side state and cannot be pickled; executor "
            "kernels must capture plain data and pure functions only"
        )

    @property
    def now(self) -> float:
        return self.env.now
