"""Pluggable executor plane: run task kernels outside the dispatch loop.

``FLINT_EXECUTOR`` selects where the *pure* body of a task — its fused
narrow chain, reduce-side merge, or source read — physically executes:

- ``inline`` (default): inside the driver's dispatch loop, exactly the seed
  data plane.  The golden reference.
- ``process``: a pool of forked worker processes (``FLINT_WORKERS``); kernels
  ship as pickled closures + records and return a pickled
  :class:`~repro.engine.task.TaskResult`.
- ``async``: an in-process thread pool that still round-trips every kernel
  through the pickle contract — the picklability canary without fork cost.

The discrete-event clock stays authoritative no matter the backend.  A
kernel is *speculative*: the scheduler stages one per ready task from
side-effect-free peeks of current state (cache, shuffle outputs, checkpoint
store), and at dispatch the :class:`~repro.engine.scheduler.TaskRuntime`
*consumes* it by replaying every state-dependent step of the inline plane —
cache reads, shuffle fetches, fault-injection hooks, simulated-time charges —
in the original order, substituting only the pure record transforms with the
kernel's precomputed output.  Partition data is a pure function of lineage,
so a kernel keyed by its chain signature can never be *wrong*; it can only
be inapplicable (the chain shape changed underneath it), in which case the
runtime falls back to the inline path.  That is what keeps results, billing,
and trace books bit-identical across backends.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.engine.block_manager import block_id_for
from repro.engine.columnar import ColumnarUnsupported, from_records
from repro.engine.dependencies import ShuffleDependency
from repro.engine.lineage import fusion_edge
from repro.engine.task import TaskKind, TaskResult, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext

#: Recognised ``FLINT_EXECUTOR`` values.
EXECUTOR_BACKENDS = ("inline", "process", "async")


def default_worker_count() -> int:
    """Pool size when ``FLINT_WORKERS`` is unset: host cores, capped at 4."""
    return max(1, min(4, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# The picklable unit of work and its executor-side evaluation
# ----------------------------------------------------------------------
@dataclass
class KernelTask:
    """The pure, picklable body of one task.

    ``boundary`` is ``("data", records)`` — the chain's input resolved
    driver-side — or ``("call", thunk)`` — a zero-arg closure that rebuilds
    it from shipped inputs (source generator, reduce merge over peeked
    buckets, cogroup merge over peeked sides).  ``stages`` are
    ``records -> records`` closures applied in order on top.
    """

    boundary: Tuple[str, Any]
    stages: List[Callable[[Any], List[Any]]] = field(default_factory=list)
    #: Return the materialised boundary records in the result (needed when
    #: the driver will substitute the boundary node's own compute).
    ship_boundary: bool = False
    #: Columnar twins of ``stages`` (same order), staged only when the
    #: context's columnar plane is on and every stage has a batch kernel.
    #: ``run_kernel`` tries them first and falls back to the row closures on
    #: conversion refusal or ``ColumnarUnsupported`` — mirroring exactly
    #: what the inline plane would have done with the same records.
    batch_stages: Optional[List[Callable]] = None


def run_kernel(task: KernelTask) -> TaskResult:
    """Evaluate one kernel; pure — runs identically in any process."""
    started = time.perf_counter()
    kind, payload = task.boundary
    records = payload if kind == "data" else payload()
    boundary_records = records if task.ship_boundary else None
    counts: List[int] = []
    used_columnar = False
    if task.batch_stages:
        batch = from_records(records)
        if batch is not None:
            try:
                out = batch
                batch_counts: List[int] = []
                for stage in task.batch_stages:
                    out = stage(out)
                    batch_counts.append(out.length)
            except ColumnarUnsupported:
                pass
            else:
                records = out.to_records()
                counts = batch_counts
                used_columnar = True
    if not used_columnar:
        for stage in task.stages:
            records = stage(records)
            counts.append(len(records))
    return TaskResult(
        records=records,
        stage_counts=counts,
        boundary_records=boundary_records,
        wall_seconds=time.perf_counter() - started,
        used_columnar=used_columnar,
    )


# ----------------------------------------------------------------------
# Driver-side descriptors
# ----------------------------------------------------------------------
@dataclass
class TaskPayload:
    """A staged kernel plus the driver-side metadata to validate consumption.

    Only :attr:`task` crosses a process boundary; the rest anchors the
    result back to the task that requested it.

    ``replay`` names the skeleton of state-dependent effects the runtime
    must re-execute inline when substituting the boundary's compute:
    ``data`` (boundary resolved via the normal iterator path — nothing to
    substitute), ``shuffle`` / ``cogroup`` (real fetches re-run, merge
    substituted), ``source`` (no runtime effects), ``narrow`` (parent
    resolved via the iterator, transform substituted; fusion-off only).
    """

    key: Tuple
    kind: str  # "chain" | "node"
    target: Tuple[int, int]
    stage_sig: Optional[Tuple]  # chain only: ((rdd_id, split), ...) head-first
    boundary_id: Tuple[int, int]
    replay: str
    task: KernelTask


@dataclass
class TaskKernel:
    """A completed kernel handed to the dispatching :class:`TaskRuntime`."""

    kind: str
    target: Tuple[int, int]
    stage_sig: Optional[Tuple]
    boundary_id: Tuple[int, int]
    replay: str
    records: List[Any]
    stage_counts: List[int]
    boundary_records: Optional[List[Any]]
    wall_seconds: float = 0.0
    used_columnar: bool = False

    @classmethod
    def from_result(cls, payload: TaskPayload, result: TaskResult) -> "TaskKernel":
        return cls(
            kind=payload.kind,
            target=payload.target,
            stage_sig=payload.stage_sig,
            boundary_id=payload.boundary_id,
            replay=payload.replay,
            records=result.records,
            stage_counts=result.stage_counts,
            boundary_records=result.boundary_records,
            wall_seconds=result.wall_seconds,
            used_columnar=result.used_columnar,
        )


# ----------------------------------------------------------------------
# Payload construction (driver-side, side-effect free)
# ----------------------------------------------------------------------
def _peek_block_present(context: "FlintContext", rdd, partition: int) -> bool:
    """Counter-free twin of ``context.block_exists`` (staging is invisible)."""
    return bool(context.block_index.peek_holders(block_id_for(rdd.rdd_id, partition)))


def _peek_partition(context: "FlintContext", rdd, partition: int) -> Optional[List[Any]]:
    """A partition's records if already materialised somewhere, else None.

    All reads are the counter-free peek variants: staging a payload must be
    invisible to cache stats, LRU order, DFS read accounting, and the block
    index's lookup counters.
    """
    block_id = block_id_for(rdd.rdd_id, partition)
    for worker in context.block_index.peek_holders(block_id):
        if worker.block_manager is not None:
            data = worker.block_manager.peek(block_id)
            if data is not None:
                return data
    return context.checkpoints.peek_partition(rdd, partition)


def _boundary_payload(
    context: "FlintContext", node, split: int
) -> Optional[Tuple[str, Tuple[str, Any], bool]]:
    """How to obtain ``(node, split)`` inside a kernel.

    Returns ``(replay, boundary, ship_boundary)`` or None when the boundary
    cannot be staged without side effects (it will be computed inline).
    """
    from repro.engine.transformations import (
        CoGroupedRDD,
        GeneratedRDD,
        ShuffledRDD,
    )

    data = _peek_partition(context, node, split)
    if data is not None:
        return "data", ("data", data), False
    if isinstance(node, ShuffledRDD):
        dep = node.shuffle_dependency
        buckets = context.shuffle_manager.peek_reduce_buckets(dep, split)
        if buckets is None:
            return None
        merge = node.merge_kernel()

        def thunk(merge=merge, buckets=buckets):
            return merge(buckets)

        return "shuffle", ("call", thunk), True
    if isinstance(node, CoGroupedRDD):
        sides: List[List[List[Any]]] = []
        for dep in node.dependencies:
            if isinstance(dep, ShuffleDependency):
                buckets = context.shuffle_manager.peek_reduce_buckets(dep, split)
                if buckets is None:
                    return None
                sides.append(buckets)
            else:
                records = _peek_partition(context, dep.rdd, split)
                if records is None:
                    return None
                sides.append([records])
        merge = node.merge_kernel()

        def thunk(merge=merge, sides=sides):
            return merge(sides)

        return "cogroup", ("call", thunk), True
    if isinstance(node, GeneratedRDD):
        return "source", ("call", node.source_kernel(split)), True
    return None


def build_task_payload(context: "FlintContext", spec: TaskSpec) -> Optional[TaskPayload]:
    """Stage the pure body of a ready task, or None when nothing offloads.

    Mirrors exactly what the dispatching :class:`TaskRuntime` will do:
    under fusion it walks the same narrow chain ``_compute_fused`` walks
    (same stop conditions, against current driver state) and records its
    signature so the consumer can detect drift; without fusion (or for
    non-fusable targets) it stages the target node's own compute.
    """
    if spec.kind == TaskKind.CHECKPOINT:
        return None
    target = spec.dep.rdd if spec.kind == TaskKind.SHUFFLE_MAP else spec.rdd
    partition = spec.partition
    # An already-available partition never reaches a compute branch.
    if _peek_block_present(context, target, partition) or context.checkpoints.has_partition(
        target, partition
    ):
        return None
    if context.fusion_enabled and target.supports_fusion:
        edge = fusion_edge(target, partition)
        if edge is None:
            return None
        checkpoints = context.checkpoints
        stages = [(target, partition)]
        node, split = edge
        while (
            node.supports_fusion
            and node.dependents == 1
            and not node.persisted
            and not _peek_block_present(context, node, split)
            and not checkpoints.has_partition(node, split)
        ):
            edge = fusion_edge(node, split)
            if edge is None:
                break
            stages.append((node, split))
            node, split = edge
        staged = _boundary_payload(context, node, split)
        if staged is None:
            return None
        replay, boundary, ship = staged
        closures = [
            stages[i][0].fused_kernel(stages[i][1])
            for i in range(len(stages) - 1, 0, -1)
        ]
        closures.append(target.fused_kernel(partition))
        batch_stages = None
        if context.columnar_enabled:
            # Stage the columnar twins in the same (deepest-first) order as
            # the row closures; only when every stage has one — a partially
            # columnar chain runs entirely on the row plane, matching the
            # inline runtime's all-or-nothing lowering.
            batch = [
                stages[i][0].batch_kernel(stages[i][1])
                for i in range(len(stages) - 1, 0, -1)
            ]
            batch.append(target.batch_kernel(partition))
            if all(kernel is not None for kernel in batch):
                batch_stages = batch
        return TaskPayload(
            key=spec.key,
            kind="chain",
            target=(target.rdd_id, partition),
            stage_sig=tuple((s.rdd_id, sp) for s, sp in stages),
            boundary_id=(node.rdd_id, split),
            replay=replay,
            task=KernelTask(
                boundary=boundary,
                stages=closures,
                ship_boundary=ship,
                batch_stages=batch_stages,
            ),
        )
    if target.supports_fusion:
        # Fusion off: the inline plane computes this node alone, resolving
        # its parent through the iterator.  Stage just the head transform.
        edge = fusion_edge(target, partition)
        if edge is None:
            return None
        parent, parent_split = edge
        records = _peek_partition(context, parent, parent_split)
        if records is None:
            return None
        return TaskPayload(
            key=spec.key,
            kind="node",
            target=(target.rdd_id, partition),
            stage_sig=None,
            boundary_id=(parent.rdd_id, parent_split),
            replay="narrow",
            task=KernelTask(
                boundary=("data", records),
                stages=[target.fused_kernel(partition)],
            ),
        )
    staged = _boundary_payload(context, target, partition)
    if staged is None:
        return None
    replay, boundary, _ship = staged
    if replay == "data":  # already cached — handled above; nothing to run
        return None
    return TaskPayload(
        key=spec.key,
        kind="node",
        target=(target.rdd_id, partition),
        stage_sig=None,
        boundary_id=(target.rdd_id, partition),
        replay=replay,
        task=KernelTask(boundary=boundary),
    )


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExecutorBackend:
    """Interface every executor backend implements."""

    #: ``FLINT_EXECUTOR`` value this backend answers to.
    name: str = "inline"
    #: False disables speculative kernel staging entirely (the inline
    #: plane's hot path must carry zero executor overhead).
    speculative: bool = False

    def __init__(self, worker_count: int = 1):
        self.worker_count = max(1, int(worker_count))

    def run_batch(self, payloads: List[TaskPayload]) -> List[Optional[TaskResult]]:
        """Execute staged kernels; one result (or None on failure) each.

        A None simply means "no kernel" — the task runs inline.  Backends
        must never raise out of this method for a per-kernel failure.
        """
        raise NotImplementedError

    def map_jobs(self, fn: Callable[[Any], Any], items: List[Any]) -> List[Any]:
        """Coarse-grained fan-out of independent driver jobs (benchmarks).

        Used by sweep harnesses to run whole simulations side by side —
        ``fn`` and every item must be picklable for process backends.  The
        base implementation is sequential.
        """
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """Release pool resources (idempotent)."""


class InlineExecutor(ExecutorBackend):
    """The golden reference: no staging, no pools, the seed's exact plane."""

    name = "inline"
    speculative = False

    def __init__(self, worker_count: int = 1):
        super().__init__(1)

    def run_batch(self, payloads: List[TaskPayload]) -> List[Optional[TaskResult]]:
        # Never called by the scheduler (speculative=False); provided so the
        # contract tests can exercise all backends uniformly.
        out: List[Optional[TaskResult]] = []
        for payload in payloads:
            try:
                out.append(run_kernel(payload.task))
            except Exception:  # noqa: BLE001 - kernel loss is never fatal
                out.append(None)
        return out


def resolve_backend(
    name: Optional[str] = None, worker_count: Optional[int] = None
) -> ExecutorBackend:
    """Build the executor selected by arguments or environment.

    Explicit arguments win over ``FLINT_EXECUTOR`` / ``FLINT_WORKERS``,
    which win over the defaults (``inline``, host cores capped at 4).
    """
    if name is None:
        name = os.environ.get("FLINT_EXECUTOR", "inline")
    name = name.strip().lower()
    if worker_count is None:
        raw = os.environ.get("FLINT_WORKERS", "")
        worker_count = int(raw) if raw.strip() else default_worker_count()
    if name == "inline":
        return InlineExecutor()
    if name == "process":
        from repro.engine.executor_process import ProcessExecutor

        return ProcessExecutor(worker_count)
    if name == "async":
        from repro.engine.executor_async import AsyncExecutor

        return AsyncExecutor(worker_count)
    raise ValueError(
        f"unknown FLINT_EXECUTOR {name!r} (expected one of {EXECUTOR_BACKENDS})"
    )
