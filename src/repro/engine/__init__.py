"""A from-scratch Spark-like data-parallel engine.

The engine computes *real data* — every transformation runs genuine Python
functions over genuine records — while charging *simulated time* for compute,
shuffle traffic, cache misses, and checkpoint I/O from a calibrated
:class:`~repro.engine.costs.CostModel`.  That split gives the reproduction
both correctness (lineage recomputation provably returns the same records)
and the timing phenomena the paper measures (recomputation storms, memory
pressure, checkpoint tax).

Key pieces, mirroring Spark's architecture:

* :class:`~repro.engine.rdd.RDD` — immutable, lazily evaluated, lineage-linked
  datasets with narrow and shuffle dependencies.
* :class:`~repro.engine.block_manager.BlockManager` — per-worker in-memory
  cache with LRU eviction and local-disk spill.
* :class:`~repro.engine.shuffle.ShuffleManager` — hash shuffle with map
  outputs on worker-local disk (lost on revocation).
* :class:`~repro.engine.scheduler.TaskScheduler` — event-driven execution
  over cluster slots, with lineage-based recovery of lost partitions.
* :class:`~repro.engine.context.FlintContext` — the user-facing entry point.
"""

from repro.engine.columnar import ColumnarBatch, ColumnarUnsupported
from repro.engine.context import FlintContext
from repro.engine.costs import CostModel
from repro.engine.partitioner import HashPartitioner
from repro.engine.rdd import RDD

__all__ = [
    "ColumnarBatch",
    "ColumnarUnsupported",
    "FlintContext",
    "CostModel",
    "HashPartitioner",
    "RDD",
]
