"""Record size estimation.

When a workload does not declare a virtual per-record size hint, we estimate
one by sampling real records with a recursive ``sys.getsizeof`` walk —
exactly the kind of sampling Spark's ``SizeEstimator`` does.  Estimates are
only a fallback: every paper workload sets explicit hints so its data volume
matches the evaluation's input sizes.

Sizes feed the cost model, so the walk must be deterministic across
interpreter runs: ``set``/``frozenset`` iteration order depends on string
hash randomization (PYTHONHASHSEED), so oversized sets are sampled in
stable-hash order rather than iteration order.
"""

from __future__ import annotations

import sys
from typing import Any, Sequence

import numpy as np

from repro.engine.partitioner import stable_hash

_SAMPLE_LIMIT = 20
_DEPTH_LIMIT = 4


def _stable_sample_key(item: Any):
    """Process-independent ordering key for sampling unordered containers."""
    return (stable_hash(item), repr(item))


def deep_sizeof(obj: Any, depth: int = _DEPTH_LIMIT) -> int:
    """Approximate recursive in-memory size of ``obj`` in bytes."""
    size = sys.getsizeof(obj)
    if isinstance(obj, np.ndarray):
        # getsizeof covers an owning array's buffer; a view's buffer lives
        # in its base, so charge it here — an estimate must not depend on
        # whether a batch column arrived as a slice or a copy.
        if obj.base is not None:
            size += obj.nbytes
        return size
    if depth <= 0:
        return size
    if isinstance(obj, dict):
        for key, value in list(obj.items())[:_SAMPLE_LIMIT]:
            size += deep_sizeof(key, depth - 1) + deep_sizeof(value, depth - 1)
    elif isinstance(obj, (set, frozenset)):
        items = list(obj)
        if len(items) > _SAMPLE_LIMIT:
            # Which elements land in the sample must not depend on the
            # set's (salted-hash) iteration order.  Under the limit the
            # whole set is summed, so order is irrelevant.
            items = sorted(items, key=_stable_sample_key)[:_SAMPLE_LIMIT]
        for item in items:
            size += deep_sizeof(item, depth - 1)
    elif isinstance(obj, (list, tuple)):
        for item in list(obj)[:_SAMPLE_LIMIT]:
            size += deep_sizeof(item, depth - 1)
    return size


def estimate_record_size(records: Sequence[Any]) -> int:
    """Mean per-record size from a bounded sample (>=1 byte)."""
    if not records:
        return 1
    sample = records[:_SAMPLE_LIMIT]
    total = sum(deep_sizeof(r) for r in sample)
    return max(1, total // len(sample))
