"""Record size estimation.

When a workload does not declare a virtual per-record size hint, we estimate
one by sampling real records with a recursive ``sys.getsizeof`` walk —
exactly the kind of sampling Spark's ``SizeEstimator`` does.  Estimates are
only a fallback: every paper workload sets explicit hints so its data volume
matches the evaluation's input sizes.
"""

from __future__ import annotations

import sys
from typing import Any, Sequence

_SAMPLE_LIMIT = 20
_DEPTH_LIMIT = 4


def deep_sizeof(obj: Any, depth: int = _DEPTH_LIMIT) -> int:
    """Approximate recursive in-memory size of ``obj`` in bytes."""
    size = sys.getsizeof(obj)
    if depth <= 0:
        return size
    if isinstance(obj, dict):
        for key, value in list(obj.items())[:_SAMPLE_LIMIT]:
            size += deep_sizeof(key, depth - 1) + deep_sizeof(value, depth - 1)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in list(obj)[:_SAMPLE_LIMIT]:
            size += deep_sizeof(item, depth - 1)
    return size


def estimate_record_size(records: Sequence[Any]) -> int:
    """Mean per-record size from a bounded sample (>=1 byte)."""
    if not records:
        return 1
    sample = records[:_SAMPLE_LIMIT]
    total = sum(deep_sizeof(r) for r in sample)
    return max(1, total // len(sample))
