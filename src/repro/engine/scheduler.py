"""Event-driven task scheduler with lineage-based fault recovery.

This is the engine's DAG scheduler + task scheduler in one: it resolves which
materialisation points (cached blocks, checkpoints, shuffle outputs) exist,
derives the missing shuffle-map work transitively through the lineage graph,
dispatches tasks onto worker CPU slots, and replays lost work after
revocations.  Execution is *data-plane eager, side-effect deferred*: a task's
records are computed (for real) at dispatch, its duration is charged from the
cost model, and its effects — cached blocks, shuffle outputs, results,
checkpoint writes — land only when its completion event fires.  A worker
killed mid-flight therefore loses exactly the work Spark would lose.

Readiness is decided *incrementally*: resolve results are cached across
scheduling rounds in a pending-task dependency graph and invalidated only
when a block, shuffle output, or checkpoint actually appears or disappears
(change listeners on the block-location index, the shuffle manager, and the
checkpoint registry).  A round with no state change filters a cached ready
list instead of re-walking the lineage DAG.  The seed's recompute-everything
resolver is retained as ``mode="legacy"`` and must stay simulation-identical
— ``tests/engine/test_scheduler_equivalence.py`` holds the two modes to
bit-equal runtimes and task counts.

The scheduler multiplexes a *set* of in-flight jobs: ``submit_job`` is
non-blocking and returns a :class:`JobHandle`; ``run_job`` is submit + wait
and keeps the seed's exact blocking semantics.  Each scheduling round
gathers every active job's ready frontier and allocates free slots across
jobs under the root scheduling policy (``fifo`` submission order, or
``fair`` weighted max-min across :class:`~repro.engine.pools.Pool`\\ s, with
interactive pools strictly ahead of batch pools).  A single job under
either policy dispatches in exactly the seed's order, so single-job runs
stay bit-identical in both scheduler modes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.cluster.cluster import ClusterListener
from repro.engine.block_index import parse_block_id
from repro.engine.block_manager import BlockManager, block_id_for
from repro.engine.checkpoint import CheckpointWriteError
from repro.engine.columnar import ColumnarUnsupported, from_records
from repro.engine.dependencies import NarrowDependency, ShuffleDependency
from repro.engine.executor import TaskKernel, build_task_payload
from repro.engine.lineage import fusion_edge
from repro.engine.partitioner import HashPartitioner, stable_hash
from repro.engine.pools import DEFAULT_POOL, SCHEDULING_POLICIES, Pool
from repro.engine.profiling import SectionTimers, profiling_enabled_by_env
from repro.engine.shuffle import ShuffleFetchFailure
from repro.obs import SpanEvent
from repro.engine.task import (
    ComputedPartition,
    PendingPut,
    RunningTask,
    TaskKind,
    TaskSpec,
)
from repro.storage.local_disk import DiskFullError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.worker import Worker
    from repro.engine.context import FlintContext
    from repro.engine.rdd import RDD


class EngineError(RuntimeError):
    """Unrecoverable scheduler failure (deadlock, disk exhaustion, ...)."""


def _combine_sort_key(kv):
    k = kv[0]
    if type(k) is int:  # inline stable_hash's dominant branch
        return k & 0x7FFFFFFF
    return stable_hash(k)


#: Missing-key sentinel for the map-side combine loop.
_ABSENT = object()


# Canonical home is repro.engine.lineage (shared with the executor plane's
# payload builder, which must walk narrow chains identically).
_fusion_edge = fusion_edge


@dataclass
class SchedulerStats:
    """Aggregate counters over the scheduler's lifetime."""

    tasks_completed: int = 0
    tasks_lost: int = 0
    result_tasks: int = 0
    map_tasks: int = 0
    checkpoint_tasks: int = 0
    task_time_total: float = 0.0
    checkpoint_time_total: float = 0.0
    # Fault-injection observability: dispatches abandoned because a map
    # output vanished mid-fetch, and durable checkpoint writes that failed
    # (both only occur under injected faults or real mid-dispatch loss).
    fetch_failures: int = 0
    checkpoint_write_failures: int = 0
    # Incremental-readiness observability: rounds run, how often a cached
    # resolve answered, how many cached decisions events invalidated, how
    # often the ready list had to be rebuilt, and the deepest ready queue.
    scheduling_rounds: int = 0
    resolve_cache_hits: int = 0
    resolve_cache_misses: int = 0
    readiness_invalidations: int = 0
    readiness_rebuilds: int = 0
    ready_queue_peak: int = 0
    # Multi-job observability.
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    concurrent_jobs_peak: int = 0
    #: Fused data plane: narrow chains executed as one streamed pass, and
    #: the total operator stages they covered (``FLINT_FUSION=off`` leaves
    #: both at zero).
    fused_chains: int = 0
    fused_stages: int = 0
    #: Executor plane: kernels staged onto a parallel backend, kernels whose
    #: precomputed records a dispatch actually consumed, and staged kernels
    #: invalidated at consume time (chain shape drifted between staging and
    #: dispatch — the task fell back to the inline path).  All zero under
    #: ``FLINT_EXECUTOR=inline``; excluded from :meth:`task_counts` because
    #: they describe *where* bodies ran, which backends are free to vary.
    kernels_offloaded: int = 0
    kernels_consumed: int = 0
    kernels_fallback: int = 0
    #: Columnar plane: fused chains lowered to vectorised batch kernels
    #: (and the stages they covered), plus chains that *attempted* the
    #: lowering and fell back to rows (records refused columnarisation, or
    #: a kernel raised ``ColumnarUnsupported`` on the runtime schema).
    #: Chains/stages are backend-invariant (a consumed executor kernel that
    #: ran columnar counts too); fallbacks are plane-local diagnostics —
    #: like the ``kernels_*`` counters they are excluded from
    #: :meth:`task_counts`.
    columnar_chains: int = 0
    columnar_stages: int = 0
    columnar_fallbacks: int = 0

    def task_counts(self) -> Dict[str, int]:
        """The counters that must agree across scheduler modes."""
        return {
            "tasks_completed": self.tasks_completed,
            "tasks_lost": self.tasks_lost,
            "result_tasks": self.result_tasks,
            "map_tasks": self.map_tasks,
            "checkpoint_tasks": self.checkpoint_tasks,
        }


class TaskRuntime:
    """Per-task data-plane context: resolves inputs and accounts time.

    ``iterator`` is how an RDD's ``compute`` reaches its parents; it resolves
    (in order) the distributed cache, the checkpoint store, and finally
    recursive recomputation, charging the cost model for whichever path it
    takes.  Side effects (cache inserts, materialisation reports) are
    buffered for the scheduler to apply at completion time.
    """

    def __init__(
        self,
        context: "FlintContext",
        worker: "Worker",
        active_target_id: Optional[int],
        kernel: Optional[TaskKernel] = None,
    ):
        self.context = context
        self.worker = worker
        self.cost = context.cost_model
        self.active_target_id = active_target_id
        self.time_charged = 0.0
        self.pending_puts: List[PendingPut] = []
        self.computed: List[ComputedPartition] = []
        self._memo: Dict[Tuple[int, int], List[Any]] = {}
        self._fusion = context.fusion_enabled
        #: Columnar lowering rides the fused plane only: with fusion off
        #: there are no chains to lower, so the flag is inert by design.
        self._columnar = self._fusion and context.columnar_enabled
        #: Speculatively precomputed task body from the executor plane, if
        #: the backend staged one for this task's target.  Consumed at most
        #: once: the data plane validates it against the chain it is about
        #: to compute and substitutes the pure records, while every
        #: state-dependent effect (cache reads, shuffle fetches, charges,
        #: injection points) still runs inline in the original order.
        self._kernel = kernel
        #: Boundary substitutions for an in-progress chain-kernel consume,
        #: keyed by ``(rdd_id, partition)`` -> ``(replay, records)``.
        self._seeded: Dict[Tuple[int, int], Tuple[str, Optional[List[Any]]]] = {}

    def charge(self, seconds: float) -> None:
        """Add simulated seconds to this task's duration."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.time_charged += seconds

    def iterator(self, rdd: "RDD", partition: int) -> List[Any]:
        """Records of ``(rdd, partition)`` via cache, checkpoint, or recompute."""
        key = (rdd.rdd_id, partition)
        memoised = self._memo.get(key)
        if memoised is not None:
            return memoised

        found = self.context.find_block(rdd, partition, prefer=self.worker)
        if found is not None:
            data, nbytes, holder, tier = found
            if holder.worker_id == self.worker.worker_id:
                if tier == "disk":
                    self.charge(self.cost.local_read_time(nbytes))
            else:
                self.charge(self.cost.network_time(nbytes))
            self._memo[key] = data
            return data

        registry = self.context.checkpoints
        if registry.has_partition(rdd, partition):
            nbytes = registry.partition_nbytes(rdd, partition)
            self.charge(self.context.env.dfs.read_duration(nbytes))
            data = registry.read_partition(rdd, partition)
            self._memo[key] = data
            return data

        if self._fusion and rdd.supports_fusion:
            data = self._compute_fused(rdd, partition)
        else:
            data = self._replay_or_compute(rdd, partition)
        nbytes = rdd.partition_bytes(len(data))
        self.charge(self.cost.compute_time(len(data) * rdd.record_size, rdd.compute_multiplier))
        if rdd.persisted:
            self.pending_puts.append(
                PendingPut(
                    block_id_for(rdd.rdd_id, partition), data, nbytes, rdd.disk_persist,
                    rdd=rdd,
                )
            )
        if self._is_materialisation_point(rdd):
            self.computed.append(ComputedPartition(rdd, partition, data, nbytes))
        self._memo[key] = data
        return data

    def _compute_fused(self, rdd: "RDD", partition: int) -> List[Any]:
        """Materialise ``(rdd, partition)`` by streaming its narrow chain.

        Walks up the lineage collecting operator stages until a pipeline
        breaker — a cached/persisted/checkpointed partition, a per-task memo
        hit, a shuffle or multi-parent dependency, a source, or a node with
        more than one dependant (which the unfused path would memoise and
        serve twice).  The boundary input resolves through the normal
        :meth:`iterator` path, then records stream through each stage's
        ``compute_fused`` without re-entering per-RDD resolution.

        Simulated time is bit-identical to the unfused recursion: the input
        subtree charges first, then each interior stage deepest-first with
        its own record count, size, and multiplier (the caller charges the
        chain head, exactly as it charges any computed node).
        """
        edge = _fusion_edge(rdd, partition)
        if edge is None:
            return rdd.compute(partition, self)
        ctx = self.context
        checkpoints = ctx.checkpoints
        memo = self._memo
        stages = [(rdd, partition)]
        node, split = edge
        while (
            node.supports_fusion
            and node.dependents == 1
            and not node.persisted
            and (node.rdd_id, split) not in memo
            and not ctx.block_exists(node, split)
            and not checkpoints.has_partition(node, split)
        ):
            edge = _fusion_edge(node, split)
            if edge is None:
                break
            stages.append((node, split))
            node, split = edge
        kernel = self._kernel
        if (
            kernel is not None
            and kernel.kind == "chain"
            and kernel.target == (rdd.rdd_id, partition)
        ):
            self._kernel = None
            if kernel.stage_sig == tuple(
                (s.rdd_id, sp) for s, sp in stages
            ) and kernel.boundary_id == (node.rdd_id, split):
                return self._consume_chain(kernel, stages, node, split)
            # The chain the walk just found is not the chain the kernel ran
            # (a block/checkpoint appeared or vanished since staging): the
            # kernel's records are still *data*-correct, but its stage
            # counts no longer describe the charges this plane owes.  Drop
            # it and compute inline.
            ctx.scheduler.stats.kernels_fallback += 1
        if self._columnar:
            data = self._compute_columnar(stages, node, split)
            if data is not None:
                return data
        if len(stages) == 1:
            return rdd.compute(partition, self)
        stream: List[Any] = self.iterator(node, split)
        cost = self.cost
        charge = self.charge
        for i in range(len(stages) - 1, 0, -1):
            inner, inner_split = stages[i]
            stream = inner.compute_fused(stream, inner_split)
            charge(cost.compute_time(
                len(stream) * inner.record_size, inner.compute_multiplier
            ))
        stats = ctx.scheduler.stats
        stats.fused_chains += 1
        stats.fused_stages += len(stages)
        return rdd.compute_fused(stream, partition)

    def _compute_columnar(
        self, stages: List[Tuple["RDD", int]], node: "RDD", split: int
    ) -> Optional[List[Any]]:
        """Lower a walked chain to batch kernels; None means "use rows".

        Lowering applies only when every stage carries a batch kernel and
        the boundary records columnarise; a kernel may still refuse the
        runtime schema (``ColumnarUnsupported``).  Either way the row plane
        takes over with nothing double-charged: the boundary resolve below
        went through the normal :meth:`iterator` (same charges, memo,
        pending puts as the row path's own resolve), so the fallback's
        re-resolve is a memo hit.

        Charges are bit-identical to the row plane by construction: batch
        lengths equal the row plane's per-stage record counts (the kernel
        contract), and they are charged in the same deepest-first order
        *after* all kernels ran — pure accumulation onto ``time_charged``,
        so applying them post hoc changes nothing.  The head stage is
        charged by the caller from the returned records, as always.
        """
        kernels = []
        for stage, stage_split in stages:
            kernel = stage.batch_kernel(stage_split)
            if kernel is None:
                return None
            kernels.append(kernel)
        stream = self.iterator(node, split)
        stats = self.context.scheduler.stats
        batch = from_records(stream)
        if batch is None:
            # Empty boundaries are trivially row-plane (nothing to
            # vectorise); only real refusals count as fallbacks.
            if stream:
                stats.columnar_fallbacks += 1
            return None
        counts: List[int] = []
        try:
            for i in range(len(stages) - 1, -1, -1):
                batch = kernels[i](batch)
                counts.append(batch.length)
        except ColumnarUnsupported:
            stats.columnar_fallbacks += 1
            return None
        cost = self.cost
        charge = self.charge
        last = len(stages) - 1
        for i in range(last, 0, -1):
            inner = stages[i][0]
            charge(cost.compute_time(
                counts[last - i] * inner.record_size, inner.compute_multiplier
            ))
        stats.columnar_chains += 1
        stats.columnar_stages += len(stages)
        if last >= 1:
            stats.fused_chains += 1
            stats.fused_stages += len(stages)
        return batch.to_records()

    def _consume_chain(
        self,
        kernel: TaskKernel,
        stages: List[Tuple["RDD", int]],
        node: "RDD",
        split: int,
    ) -> List[Any]:
        """Replay a validated chain kernel's charges; substitute its records.

        The boundary resolves through the real :meth:`iterator` — cache-read
        or checkpoint charges, recursive recomputation, pending puts,
        memoisation all happen exactly as inline — with only the boundary
        node's own pure compute substituted (seeded below) when the kernel
        had to produce it.  Interior stage charges replay from the kernel's
        recorded record counts in the same deepest-first order; the caller
        charges the chain head from the returned records, exactly as it
        charges any computed node.
        """
        if kernel.replay != "data":
            self._seeded[(node.rdd_id, split)] = (kernel.replay, kernel.boundary_records)
        try:
            self.iterator(node, split)
        finally:
            self._seeded.pop((node.rdd_id, split), None)
        cost = self.cost
        charge = self.charge
        counts = kernel.stage_counts
        last = len(stages) - 1
        for i in range(last, 0, -1):
            inner = stages[i][0]
            charge(cost.compute_time(
                counts[last - i] * inner.record_size, inner.compute_multiplier
            ))
        stats = self.context.scheduler.stats
        stats.kernels_consumed += 1
        if kernel.used_columnar:
            # The offloaded kernel ran the same columnar lowering the inline
            # plane would have (same boundary records, same batch kernels),
            # so the chain/stage counters stay backend-invariant.
            stats.columnar_chains += 1
            stats.columnar_stages += len(stages)
        if len(stages) > 1:
            stats.fused_chains += 1
            stats.fused_stages += len(stages)
        return kernel.records

    def _replay_or_compute(self, rdd: "RDD", partition: int) -> List[Any]:
        """Non-fusable compute branch with kernel substitution.

        Checks (in order) a boundary seed left by an in-progress chain
        consume, then this task's own node kernel; either replays the
        node's state-dependent skeleton and substitutes the precomputed
        records.  Anything else — no kernel, wrong target, inapplicable
        replay — computes inline.
        """
        seeded = self._seeded.pop((rdd.rdd_id, partition), None)
        if seeded is not None:
            data = self._replay_node(rdd, partition, seeded[0], seeded[1])
            if data is not None:
                return data
        kernel = self._kernel
        if (
            kernel is not None
            and kernel.kind == "node"
            and kernel.target == (rdd.rdd_id, partition)
        ):
            self._kernel = None
            data = self._replay_node(rdd, partition, kernel.replay, kernel.records)
            stats = self.context.scheduler.stats
            if data is not None:
                stats.kernels_consumed += 1
                return data
            stats.kernels_fallback += 1
        return rdd.compute(partition, self)

    def _replay_node(
        self, rdd: "RDD", partition: int, replay: str, records: Optional[List[Any]]
    ) -> Optional[List[Any]]:
        """Re-run one node's state-dependent effects; return the pure records.

        Each skeleton mirrors the node's ``compute`` with the pure merge or
        transform elided: shuffle fetches go through :meth:`shuffle_fetch`
        (real transfer charges, injection points, ``ShuffleFetchFailure``
        propagation), narrow inputs through :meth:`iterator`.  Partition
        data is a pure function of lineage, so the substituted records are
        valid whenever the skeleton completes.  Returns None when the
        replay kind does not apply (caller computes inline).
        """
        if records is None:
            return None
        if replay == "source":
            return records
        if replay == "shuffle":
            dep = getattr(rdd, "shuffle_dependency", None)
            if dep is None:
                return None
            self.shuffle_fetch(dep, partition)
            return records
        if replay == "cogroup":
            for dep in rdd.dependencies:
                if isinstance(dep, ShuffleDependency):
                    self.shuffle_fetch(dep, partition)
                else:
                    self.iterator(dep.rdd, partition)
            return records
        if replay == "narrow":
            edge = _fusion_edge(rdd, partition)
            if edge is None:
                return None
            self.iterator(edge[0], edge[1])
            return records
        return None

    def shuffle_fetch(self, dep: ShuffleDependency, reduce_id: int) -> List[List[Any]]:
        """Gather one reduce bucket from all map outputs, charging transfer time."""
        buckets, local_bytes, remote_bytes = self.context.shuffle_manager.fetch(
            dep, reduce_id, self.worker
        )
        self.charge(self.cost.network_time(remote_bytes) + self.cost.local_read_time(local_bytes))
        return buckets

    def _is_materialisation_point(self, rdd: "RDD") -> bool:
        """Storage-point RDDs make up the observable lineage frontier."""
        if rdd.persisted or rdd.rdd_id == self.active_target_id:
            return True
        return any(isinstance(dep, ShuffleDependency) for dep in rdd.dependencies)


class _JobState:
    """Progress of one action's execution."""

    _UNSET = object()

    def __init__(
        self,
        rdd: "RDD",
        func: Callable[[List[Any]], Any],
        job_id: int = 0,
        pool: Optional[Pool] = None,
        name: Optional[str] = None,
        submitted_at: float = 0.0,
        on_done: Optional[Callable[["_JobState"], None]] = None,
    ):
        self.rdd = rdd
        self.func = func
        self.job_id = job_id
        self.pool = pool
        self.name = name or f"job-{job_id}"
        self.submitted_at = submitted_at
        self.first_dispatch_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.on_done = on_done
        self.finished = False
        self.failed = False
        #: Tasks currently in flight for this job (results + maps dispatched
        #: from its frontier); the fair policy shares slots by these counts.
        self.running_tasks = 0
        self.results: List[Any] = [self._UNSET] * rdd.num_partitions
        self.remaining = rdd.num_partitions
        #: Memoised incremental ready frontier, keyed by spec key in walk
        #: order (None = must rebuild next round).  Specs leave the dict the
        #: moment they stop being dispatch candidates — dispatched, result
        #: delivered, or map output registered — so a round reads the
        #: frontier as a plain ``values()`` copy with no per-spec checks.
        self.ready_list: Optional[Dict[Tuple, TaskSpec]] = None
        #: RESULT specs in partition order, built once — the ready-list
        #: rebuild filters these instead of re-allocating specs each pass.
        self.root_specs: List[TaskSpec] = [
            TaskSpec(TaskKind.RESULT, rdd, p, func=func, job_id=job_id)
            for p in range(rdd.num_partitions)
        ]

    def set_result(self, partition: int, value: Any) -> None:
        if self.results[partition] is self._UNSET:
            self.remaining -= 1
        self.results[partition] = value

    def has_result(self, partition: int) -> bool:
        return self.results[partition] is not self._UNSET

    @property
    def is_done(self) -> bool:
        return self.remaining == 0


class JobHandle:
    """Handle to one submitted job: inspect it, wait on it, time it.

    ``wait()`` pumps the simulation loop exactly like the seed's blocking
    ``run_job`` did, so a lone job driven through a handle is bit-identical
    to the synchronous path.  Waits may nest: an interactive client's
    ``wait()`` can run from an arrival event fired inside a batch job's own
    wait loop, and the multiplexed rounds give both jobs slots.
    """

    def __init__(self, scheduler: "TaskScheduler", state: _JobState):
        self._scheduler = scheduler
        self._state = state

    @property
    def job_id(self) -> int:
        return self._state.job_id

    @property
    def name(self) -> str:
        return self._state.name

    @property
    def pool(self) -> Optional[str]:
        return self._state.pool.name if self._state.pool is not None else None

    @property
    def done(self) -> bool:
        return self._state.finished

    @property
    def failed(self) -> bool:
        return self._state.failed

    @property
    def submitted_at(self) -> float:
        return self._state.submitted_at

    @property
    def first_dispatch_at(self) -> Optional[float]:
        return self._state.first_dispatch_at

    @property
    def finished_at(self) -> Optional[float]:
        return self._state.finished_at

    @property
    def queue_delay(self) -> Optional[float]:
        """Simulated seconds between submission and first dispatch."""
        if self._state.first_dispatch_at is None:
            return None
        return self._state.first_dispatch_at - self._state.submitted_at

    @property
    def makespan(self) -> Optional[float]:
        """Simulated seconds between submission and completion."""
        if self._state.finished_at is None:
            return None
        return self._state.finished_at - self._state.submitted_at

    def wait(self) -> List[Any]:
        """Block (in simulated time) until the job completes; return results."""
        state = self._state
        scheduler = self._scheduler
        env = scheduler.env
        try:
            while not state.finished:
                if not env.events:
                    raise EngineError(
                        "scheduler deadlock: job incomplete but no pending events "
                        f"(live workers: {scheduler.cluster.size})"
                    )
                env.step()
                scheduler._schedule_round()
        except BaseException:
            # Mirror the seed's ``finally: self.job = None``: an exception
            # unwinding through the wait loop abandons the job rather than
            # leaving it wedged in the in-flight set.
            scheduler._abandon_job(state)
            raise
        if state.failed:
            raise EngineError(f"job {state.name!r} was abandoned")
        return list(state.results)

    def result(self) -> List[Any]:
        """Alias for :meth:`wait`."""
        return self.wait()


class TaskScheduler(ClusterListener):
    """Dispatches tasks onto cluster slots and recovers from revocations."""

    def __init__(
        self,
        context: "FlintContext",
        mode: str = "incremental",
        scheduling_policy: str = "fifo",
    ):
        if mode not in ("incremental", "legacy"):
            raise ValueError(f"unknown scheduler mode {mode!r}")
        if scheduling_policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {scheduling_policy!r} "
                f"(expected one of {SCHEDULING_POLICIES})"
            )
        self.context = context
        self.env = context.env
        self.cluster = context.cluster
        self.mode = mode
        self.incremental = mode == "incremental"
        #: Root policy for sharing slots between concurrent jobs.
        self.scheduling_policy = scheduling_policy
        self.busy: Dict[str, int] = {}
        #: Concurrent checkpoint writes per worker.  Checkpoint tasks are
        #: I/O-bound (one writer saturates a node's HDFS pipeline), so at
        #: most one runs per worker — they degrade co-located compute
        #: proportionally (§3.1.1) instead of starving the job of slots.
        self._ckpt_busy: Dict[str, int] = {}
        self.max_checkpoint_tasks_per_worker = 1
        self.running: Dict[Tuple, RunningTask] = {}
        self._checkpoint_queue: "OrderedDict[Tuple, TaskSpec]" = OrderedDict()
        #: In-flight jobs by job id, in submission order (ids ascend, dicts
        #: preserve insertion order — FIFO policy iterates this directly).
        self._jobs: "OrderedDict[int, _JobState]" = OrderedDict()
        self._next_job_id = 0
        #: Scheduling pools by name; jobs land in ``default`` unless routed.
        self.pools: Dict[str, Pool] = {DEFAULT_POOL: Pool(DEFAULT_POOL)}
        self.stats = SchedulerStats()
        #: Executor-plane kernels staged for ready-but-undispatched specs,
        #: by spec key.  Populated only when the context's executor backend
        #: is speculative (process/async); always empty under ``inline``.
        self._kernels: Dict[Tuple, TaskKernel] = {}
        #: Completed-task count per job id, maintained unconditionally (it is
        #: two dict ops per completion) so the tracing invariant can
        #: reconcile emitted task spans against the scheduler's own books.
        self.tasks_completed_by_job: Dict[int, int] = {}
        self.timers = SectionTimers(enabled=profiling_enabled_by_env())
        self._seen_partitions: Dict[int, Set[int]] = {}
        self._generated: Set[int] = set()
        self._materialised: Set[int] = set()
        self._dispatch_rotation = 0
        # Re-entrancy guard: a fault injector may revoke workers
        # synchronously from inside a dispatch hook, and the revocation
        # listener calls back into _schedule_round while the outer round is
        # still iterating its spec list.  The inner call only sets a flag;
        # the outer round loops until no round is pending.
        self._in_round = False
        self._round_pending = False
        # Incremental readiness state: resolve results cached across rounds,
        # reverse edges for targeted invalidation.  The memoised ordered
        # ready lists live per job (``_JobState.ready_list``; None = must
        # rebuild next round).
        self._resolve_cache: Dict[Tuple[int, int], Tuple[bool, List[TaskSpec]]] = {}
        self._dependents: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
        self._shuffle_dependents: Dict[int, Set[Tuple[int, int]]] = {}
        # Map specs are identified entirely by (shuffle, partition); reuse
        # one object per identity so rebuilds don't churn allocations.
        self._map_specs: Dict[Tuple[int, int], TaskSpec] = {}
        # shuffle_id -> (output_epoch, interned specs for its missing maps);
        # see _missing_map_specs.
        self._missing_spec_lists: Dict[int, Tuple[int, List[TaskSpec]]] = {}
        # rdd_id -> RDD for every node the resolver has seen, so
        # invalidation can re-resolve a popped node in place.
        self._rdd_index: Dict[int, "RDD"] = {}
        if self.incremental:
            context.block_index.add_listener(self._on_block_event)
            context.shuffle_manager.add_listener(self._on_shuffle_event)
            context.checkpoints.add_listener(self._on_checkpoint_event)
        self.cluster.add_listener(self)
        for worker in self.cluster.live_workers():
            self._register_worker(worker)

    # ------------------------------------------------------------------
    # Cluster listener hooks
    # ------------------------------------------------------------------
    def on_worker_joined(self, worker: "Worker", t: float) -> None:
        self._register_worker(worker)
        self._schedule_round()

    def on_worker_revoked(self, worker: "Worker", t: float) -> None:
        self.context.shuffle_manager.remove_outputs_on(worker.worker_id)
        doomed = [rt for rt in self.running.values() if rt.worker_id == worker.worker_id]
        obs = self.context.obs
        for rt in doomed:
            self.env.events.cancel(rt.completion_event)
            del self.running[rt.spec.key]
            self._note_task_left(rt)
            self.stats.tasks_lost += 1
            if obs.enabled:
                obs.metrics.inc("scheduler.tasks_lost")
                obs.bus.emit(self._task_span(rt, t, "lost"))
        self.busy.pop(worker.worker_id, None)
        self._ckpt_busy.pop(worker.worker_id, None)
        # Lost in-flight tasks may not touch any tracked state (a result
        # task holding no blocks), so the cached ready lists cannot rely on
        # change events alone after a revocation.
        self._drop_ready_lists()
        self._schedule_round()

    def on_worker_terminated(self, worker: "Worker", t: float) -> None:
        # Deliberate shutdown loses local state exactly like a revocation;
        # dropping the outputs keeps the shuffle missing-sets truthful
        # (queries against a dead worker already answered "missing").
        self.context.shuffle_manager.remove_outputs_on(worker.worker_id)
        self._drop_ready_lists()

    def _register_worker(self, worker: "Worker") -> None:
        if worker.block_manager is None:
            worker.block_manager = BlockManager(
                worker, index=self.context.block_index, obs=self.context.obs
            )
        else:
            if worker.block_manager.index is None:
                worker.block_manager.index = self.context.block_index
            if worker.block_manager.obs is None:
                worker.block_manager.obs = self.context.obs
        if worker.obs is None:
            worker.obs = self.context.obs
        self.context.shuffle_manager.register_worker(worker)
        self.busy.setdefault(worker.worker_id, 0)

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def add_pool(
        self,
        name: str,
        policy: str = "fifo",
        weight: float = 1.0,
        priority: str = "batch",
    ) -> Pool:
        """Create (or reconfigure) a scheduling pool, keeping live counters."""
        existing = self.pools.get(name)
        if existing is not None:
            Pool(name, policy=policy, weight=weight, priority=priority)  # validate
            existing.policy = policy
            existing.weight = weight
            existing.priority = priority
            return existing
        pool = Pool(name, policy=policy, weight=weight, priority=priority)
        self.pools[name] = pool
        return pool

    def get_pool(self, name: str) -> Pool:
        """The named pool, auto-created with defaults if unknown."""
        pool = self.pools.get(name)
        if pool is None:
            pool = Pool(name)
            self.pools[name] = pool
        return pool

    def set_scheduling_policy(self, policy: str) -> None:
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r} "
                f"(expected one of {SCHEDULING_POLICIES})"
            )
        self.scheduling_policy = policy

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    @property
    def active_jobs(self) -> List[JobHandle]:
        """Handles for every job currently in flight, in submission order."""
        return [JobHandle(self, job) for job in self._jobs.values()]

    def submit_job(
        self,
        rdd: "RDD",
        func: Callable[[List[Any]], Any],
        pool: Optional[str] = None,
        name: Optional[str] = None,
        on_done: Optional[Callable[[JobHandle], None]] = None,
    ) -> JobHandle:
        """Submit an action without blocking; returns a :class:`JobHandle`.

        The job joins the in-flight set and competes for slots from the next
        scheduling round.  ``on_done`` (if given) fires once, with the
        handle, inside the completion round that retires the job.
        """
        if pool is None:
            pool = getattr(self.context, "current_job_pool", DEFAULT_POOL)
        pool_obj = self.get_pool(pool)
        job_id = self._next_job_id
        self._next_job_id += 1
        job = _JobState(
            rdd,
            func,
            job_id=job_id,
            pool=pool_obj,
            name=name,
            submitted_at=self.env.now,
            on_done=(lambda state: on_done(JobHandle(self, state))) if on_done else None,
        )
        self.stats.jobs_submitted += 1
        pool_obj.jobs_submitted += 1
        self._jobs[job_id] = job
        if len(self._jobs) > self.stats.concurrent_jobs_peak:
            self.stats.concurrent_jobs_peak = len(self._jobs)
        if job.is_done:
            # Zero-partition action: nothing to dispatch.
            self._retire(job)
        else:
            self._schedule_round()
        return JobHandle(self, job)

    def run_job(
        self,
        rdd: "RDD",
        func: Callable[[List[Any]], Any],
        pool: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[Any]:
        """Run an action over every partition of ``rdd``; blocks in sim time.

        Submit + wait: single-job runs are bit-identical to the seed's
        blocking loop, and nested calls (an action issued from inside an
        event callback while another job waits) now multiplex instead of
        raising ``concurrent jobs are not supported``.
        """
        return self.submit_job(rdd, func, pool=pool, name=name).wait()

    def _retire(self, job: _JobState) -> None:
        """Remove a completed job from the in-flight set and notify."""
        job.finished = True
        job.finished_at = self.env.now
        self._jobs.pop(job.job_id, None)
        job.ready_list = None
        if job.pool is not None:
            job.pool.jobs_finished += 1
        self.stats.jobs_completed += 1
        self._emit_job_span(job, "complete")
        if job.on_done is not None:
            callback, job.on_done = job.on_done, None
            callback(job)

    def _abandon_job(self, job: _JobState) -> None:
        """Drop an incomplete job whose waiter is unwinding with an error."""
        if job.finished:
            return
        job.finished = True
        job.failed = True
        job.finished_at = self.env.now
        self._jobs.pop(job.job_id, None)
        job.ready_list = None
        if job.pool is not None:
            job.pool.jobs_finished += 1
        self.stats.jobs_failed += 1
        self._emit_job_span(job, "failed")

    def _emit_job_span(self, job: _JobState, status: str) -> None:
        obs = self.context.obs
        if not obs.enabled:
            return
        obs.bus.emit(SpanEvent(
            kind="job",
            name=job.name,
            start=job.submitted_at,
            end=self.env.now,
            job_id=job.job_id,
            pool=job.pool.name if job.pool is not None else None,
            status=status,
            attrs={"tasks": self.tasks_completed_by_job.get(job.job_id, 0)},
        ))

    def _task_span(self, running: RunningTask, end: float, status: str) -> SpanEvent:
        spec = running.spec
        rdd = spec.dep.rdd if spec.kind == TaskKind.SHUFFLE_MAP else spec.rdd
        job = running.job
        return SpanEvent(
            kind="task",
            name=f"{spec.kind.value} rdd{rdd.rdd_id}[{spec.partition}]",
            start=running.started_at,
            end=end,
            worker=running.worker_id,
            job_id=job.job_id if job is not None else None,
            pool=job.pool.name if job is not None and job.pool is not None else None,
            status=status,
            attrs={
                "task_kind": spec.kind.value,
                "rdd": rdd.rdd_id,
                "partition": spec.partition,
            },
        )

    def _drop_ready_lists(self) -> None:
        """Invalidate every in-flight job's memoised ready list."""
        for job in self._jobs.values():
            job.ready_list = None

    def _note_task_left(self, running: RunningTask) -> None:
        """Per-job/per-pool accounting when a task leaves ``self.running``."""
        job = running.job
        if job is None:
            return
        job.running_tasks = max(0, job.running_tasks - 1)
        if job.pool is not None:
            job.pool.running_tasks = max(0, job.pool.running_tasks - 1)

    # ------------------------------------------------------------------
    # Checkpoint task management (driven by the fault-tolerance manager)
    # ------------------------------------------------------------------
    def enqueue_checkpoint(self, spec: TaskSpec) -> bool:
        """Queue an asynchronous checkpoint write; dedupes by partition."""
        if spec.kind != TaskKind.CHECKPOINT:
            raise ValueError("enqueue_checkpoint requires a CHECKPOINT spec")
        if spec.key in self._checkpoint_queue or spec.key in self.running:
            return False
        if self.context.checkpoints.has_partition(spec.rdd, spec.partition):
            return False
        self._checkpoint_queue[spec.key] = spec
        return True

    def enqueue_checkpoints_for(self, rdd: "RDD") -> int:
        """Queue writes for every partition of ``rdd`` reachable in the cache.

        Partitions not currently cached anywhere are skipped — they will be
        captured the next time a task computes them.
        """
        queued = 0
        for partition in range(rdd.num_partitions):
            if self.context.checkpoints.has_partition(rdd, partition):
                continue
            found = self.context.find_block(rdd, partition, prefer=None)
            if found is None:
                continue
            data, nbytes, holder, _tier = found
            spec = TaskSpec(
                TaskKind.CHECKPOINT,
                rdd,
                partition,
                data=data,
                nbytes=nbytes,
                preferred_worker_id=holder.worker_id,
            )
            if self.enqueue_checkpoint(spec):
                queued += 1
        if queued:
            self._schedule_round()
        return queued

    # ------------------------------------------------------------------
    # Scheduling rounds
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Public pump: run scheduling rounds until the frontier is drained.

        The supported surface for drivers that interleave event stepping
        with scheduling (the job server's blocking ``run_query``, client
        drive loops, system baselines, tests).  Safe to call at any time:
        re-entrant calls coalesce into the innermost active round exactly
        like internal ``_schedule_round`` callers, and a pump with nothing
        ready is a cheap no-op round.
        """
        self._schedule_round()

    def _schedule_round(self) -> None:
        if self._in_round:
            self._round_pending = True
            return
        self._in_round = True
        try:
            while True:
                self._round_pending = False
                self._run_one_round()
                if not self._round_pending:
                    break
        finally:
            self._in_round = False

    def _run_one_round(self) -> None:
        self.stats.scheduling_rounds += 1
        with self.timers.section("schedule_round"):
            ckpt_specs, job_specs = self._ready_specs()
            if self.context.executor.speculative:
                with self.timers.section("kernel_prefetch"):
                    self._prefetch_kernels(job_specs)
            depth = len(ckpt_specs) + sum(len(s) for _j, s in job_specs)
            if depth > self.stats.ready_queue_peak:
                self.stats.ready_queue_peak = depth
            # Checkpoint writes take the next free slots (Flint prioritises
            # bounding recomputation over marginal task latency).
            for spec in ckpt_specs:
                if spec.key in self.running:
                    # Dispatched by a nested round (fault-injection path).
                    continue
                worker = self._pick_worker(spec)
                if worker is None:
                    # Only the per-worker checkpoint-stream cap is
                    # exhausted; compute slots may still be free for
                    # job tasks.
                    continue
                self._dispatch(spec, worker)
            for job, spec in self._iter_job_specs(job_specs):
                if spec.key in self.running:
                    continue
                worker = self._pick_worker(spec)
                if worker is None:
                    break
                self._dispatch(spec, worker, job)

    def _prefetch_kernels(self, job_specs: List[Tuple[_JobState, List[TaskSpec]]]) -> None:
        """Stage this round's ready frontier onto the executor backend.

        Each new ready spec gets its pure body built from side-effect-free
        peeks of current driver state and executed as one parallel batch;
        results wait in ``_kernels`` for their dispatch to validate and
        consume.  Staging is speculative and invisible: it touches no
        simulated state, no counters the inline plane maintains, and a
        kernel that cannot be built, shipped, or validated simply leaves
        its task on the inline path.
        """
        ready_keys: Set[Tuple] = set()
        candidates: List[TaskSpec] = []
        for _job, specs in job_specs:
            for spec in specs:
                key = spec.key
                if key in ready_keys:
                    continue
                ready_keys.add(key)
                if key not in self.running and key not in self._kernels:
                    candidates.append(spec)
        if self._kernels:
            # A spec that left every frontier (dispatched, satisfied, or its
            # job retired) will never consume its kernel — drop it.
            for key in [k for k in self._kernels if k not in ready_keys]:
                del self._kernels[key]
        payloads = []
        for spec in candidates:
            payload = build_task_payload(self.context, spec)
            if payload is not None:
                payloads.append(payload)
        if not payloads:
            return
        staged = 0
        wall = 0.0
        for payload, result in zip(payloads, self.context.executor.run_batch(payloads)):
            if result is None:
                continue
            self._kernels[payload.key] = TaskKernel.from_result(payload, result)
            staged += 1
            wall += result.wall_seconds
        self.stats.kernels_offloaded += staged
        obs = self.context.obs
        if obs.enabled and staged:
            obs.metrics.inc("executor.kernels_offloaded", staged)
            obs.metrics.observe("executor.kernel_wall_seconds", wall)

    def _ready_specs(self) -> Tuple[List[TaskSpec], List[Tuple[_JobState, List[TaskSpec]]]]:
        """Pending checkpoint writes plus each job's ready frontier."""
        ckpt_specs: List[TaskSpec] = []
        for key, spec in list(self._checkpoint_queue.items()):
            if key not in self.running:
                ckpt_specs.append(spec)
        job_specs: List[Tuple[_JobState, List[TaskSpec]]] = []
        for job in list(self._jobs.values()):
            specs = self._specs_for_job(job)
            if specs:
                job_specs.append((job, specs))
        return ckpt_specs, job_specs

    def _specs_for_job(self, job: _JobState) -> List[TaskSpec]:
        if not self.incremental:
            return self._ready_job_specs_scan(job)
        if job.ready_list is None:
            with self.timers.section("ready_rebuild"):
                job.ready_list = self._build_ready_list(job)
            self.stats.readiness_rebuilds += 1
        # Between rebuilds only three things change a spec's candidacy:
        # it gets dispatched (now in ``running``; a fresh walk would skip
        # it without expanding anything, since ready specs contribute no
        # children), its result arrives (the walk would not push its root),
        # or its map output registers (the walk never visits available
        # maps).  Each of those transitions pops the spec from the frontier
        # dict at the event itself — ``_dispatch``, result delivery in
        # ``_on_task_done``, and ``_on_shuffle_event`` — so the surviving
        # dict *is* the walk's answer and a round just copies it.
        #
        # The pops are sound because every transition is monotone while the
        # list is valid: results never unset, availability only flips off
        # via a loss event, and a dispatched task either completes or dies
        # on a path that drops every ready list (revocation, termination,
        # straggler, abandoned dispatch, shuffle loss).  A sibling job's
        # identical map spec is popped by the same dispatch — if that task
        # is lost, the list drop restores both jobs' copies.
        return list(job.ready_list.values())

    def _iter_job_specs(
        self, job_specs: List[Tuple[_JobState, List[TaskSpec]]]
    ) -> Iterator[Tuple[_JobState, TaskSpec]]:
        """Yield ``(job, spec)`` in slot-allocation order under the root policy.

        ``fifo`` (and any single-job round) preserves the seed's exact
        dispatch order: jobs in submission order, each frontier in walk
        order.  ``fair`` interleaves dispatches by weighted max-min share —
        every yield goes to the pool with the smallest
        ``running_tasks / weight`` (interactive pools strictly first, pool
        name as the deterministic tiebreak), then to a job inside that pool
        by its intra-pool policy.  Shares count this round's tentative
        allocations, so a single round spreads free slots rather than
        handing them all to the first-sorted pool.
        """
        if self.scheduling_policy == "fifo" or len(job_specs) <= 1:
            for job, specs in job_specs:
                for spec in specs:
                    yield job, spec
            return
        pool_alloc: Dict[str, int] = {}
        job_alloc: Dict[int, int] = {}
        entries: List[List[Any]] = []
        for job, specs in job_specs:
            pool = job.pool if job.pool is not None else self.get_pool(DEFAULT_POOL)
            pool_alloc.setdefault(pool.name, pool.running_tasks)
            job_alloc[job.job_id] = job.running_tasks
            entries.append([job, pool, specs, 0])

        def share_key(entry: List[Any]) -> Tuple:
            job, pool = entry[0], entry[1]
            if pool.policy == "fair":
                intra = (job_alloc[job.job_id], job.job_id)
            else:
                intra = (job.job_id, 0)
            return (
                pool.priority_rank,
                pool_alloc[pool.name] / pool.weight,
                pool.name,
                intra,
            )

        while entries:
            entry = min(entries, key=share_key)
            job, pool, specs, idx = entry
            spec = specs[idx]
            entry[3] += 1
            if entry[3] >= len(specs):
                entries.remove(entry)
            pool_alloc[pool.name] += 1
            job_alloc[job.job_id] += 1
            yield job, spec

    def _build_ready_list(self, job: _JobState) -> Dict[Tuple, TaskSpec]:
        """The seed's depth-first frontier walk over incremental resolves.

        Enumeration order is kept bit-identical to the legacy walk: RESULT
        roots pushed in partition order (popped descending), running specs
        pruned without expansion, ``visited`` dedupe by task key.  Returns
        an insertion-ordered dict so later candidacy transitions pop specs
        by key in O(1) (see ``_specs_for_job``).
        """
        ready: Dict[Tuple, TaskSpec] = {}
        visited: Set[Tuple] = set()
        running = self.running
        sm = self.context.shuffle_manager
        stack: List[TaskSpec] = [
            s for s in job.root_specs if not job.has_result(s.partition)
        ]
        while stack:
            spec = stack.pop()
            key = spec.key
            if key in visited:
                continue
            visited.add(key)
            if key in running:
                continue
            if spec.kind == TaskKind.SHUFFLE_MAP:
                # Cached needed lists may be stale supersets (benign shrink
                # events leave them in place); an already-available map is
                # one the legacy walk would never have pushed — skipping it
                # here, without expanding it, restores the exact legacy walk.
                if sm.map_output_available(spec.dep.shuffle_id, spec.partition):
                    continue
                target = spec.dep.rdd
            else:
                target = spec.rdd
            is_ready, needed = self._resolve_inc(target, spec.partition)
            if is_ready:
                ready[key] = spec
            else:
                stack.extend(needed)
        return ready

    def _pop_from_ready_lists(self, key: Tuple) -> None:
        """Retire a spec from every job's memoised frontier.

        Map-task keys are job-agnostic, so one job's dispatch or output
        registration satisfies every sibling's copy of the spec; result
        keys embed the job id and only ever hit their owner's dict.
        """
        for job in self._jobs.values():
            ready = job.ready_list
            if ready is not None:
                ready.pop(key, None)

    def _ready_job_specs_scan(self, job: _JobState) -> List[TaskSpec]:
        """Legacy mode: recompute the frontier from scratch (seed behaviour)."""
        specs: List[TaskSpec] = []
        cache: Dict[Tuple[int, int], Tuple[bool, List[TaskSpec]]] = {}
        visited: Set[Tuple] = set()
        stack: List[TaskSpec] = [
            s for s in job.root_specs if not job.has_result(s.partition)
        ]
        while stack:
            spec = stack.pop()
            if spec.key in visited:
                continue
            visited.add(spec.key)
            if spec.key in self.running:
                continue
            target = spec.dep.rdd if spec.kind == TaskKind.SHUFFLE_MAP else spec.rdd
            ready, needed = self._resolve(target, spec.partition, cache)
            if ready:
                specs.append(spec)
            else:
                stack.extend(needed)
        return specs

    def _resolve(
        self,
        rdd: "RDD",
        partition: int,
        cache: Dict[Tuple[int, int], Tuple[bool, List[TaskSpec]]],
    ) -> Tuple[bool, List[TaskSpec]]:
        """Can ``(rdd, partition)`` be produced right now?  (Legacy resolver.)

        Returns ``(ready, needed_map_tasks)``: not-ready partitions name the
        shuffle-map tasks (transitively) blocking them.  The cache lives for
        one scheduling round, and readiness leaves are answered by the
        original worker scans / per-map probes — this is the seed resolver,
        kept as the reference the incremental engine is tested against.
        """
        key = (rdd.rdd_id, partition)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if self.context.block_exists_scan(rdd, partition) or self.context.checkpoints.has_partition(
            rdd, partition
        ):
            result = (True, [])
            cache[key] = result
            return result
        ready = True
        needed: List[TaskSpec] = []
        for dep in rdd.dependencies:
            if isinstance(dep, ShuffleDependency):
                missing = self.context.shuffle_manager.missing_maps_by_probe(dep)
                if missing:
                    ready = False
                    needed.extend(
                        TaskSpec(TaskKind.SHUFFLE_MAP, dep.rdd, m, dep=dep) for m in missing
                    )
            elif isinstance(dep, NarrowDependency):
                for parent_partition in dep.parents_of(partition):
                    sub_ready, sub_needed = self._resolve(dep.rdd, parent_partition, cache)
                    ready = ready and sub_ready
                    needed.extend(sub_needed)
            else:  # pragma: no cover - no other dependency kinds exist
                raise EngineError(f"unknown dependency type {type(dep).__name__}")
        result = (ready, needed)
        cache[key] = result
        return result

    def _map_spec(self, dep: ShuffleDependency, map_id: int) -> TaskSpec:
        sk = (dep.shuffle_id, map_id)
        spec = self._map_specs.get(sk)
        if spec is None:
            spec = TaskSpec(TaskKind.SHUFFLE_MAP, dep.rdd, map_id, dep=dep)
            self._map_specs[sk] = spec
        return spec

    def _missing_map_specs(self, dep: ShuffleDependency) -> List[TaskSpec]:
        """Interned specs for a shuffle's currently-missing map outputs.

        Every reducer of an incomplete shuffle resolves to the same needed
        list, so it is built once per shuffle output epoch instead of once
        per resolve (a wide stage used to pay maps × reducers ``_map_spec``
        calls during a rebuild).  Valid exactly while the epoch matches:
        registrations and losses both bump it.
        """
        sm = self.context.shuffle_manager
        sid = dep.shuffle_id
        epoch = sm.output_epoch(sid)
        cached = self._missing_spec_lists.get(sid)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        specs = [self._map_spec(dep, m) for m in sm.missing_maps(dep)]
        self._missing_spec_lists[sid] = (epoch, specs)
        return specs

    def _resolve_inc(self, rdd: "RDD", partition: int) -> Tuple[bool, List[TaskSpec]]:
        """Persistent-cache twin of :meth:`_resolve`.

        Identical decision logic, but answers live across scheduling rounds
        in ``_resolve_cache``, leaves are O(1) lookups (block-location index,
        shuffle missing-sets), and every consult is recorded as a reverse
        edge so change events invalidate exactly the decisions they affect.
        """
        key = (rdd.rdd_id, partition)
        cached = self._resolve_cache.get(key)
        if cached is not None:
            self.stats.resolve_cache_hits += 1
            return cached
        self.stats.resolve_cache_misses += 1
        self._rdd_index[rdd.rdd_id] = rdd
        if self.context.block_exists(rdd, partition) or self.context.checkpoints.has_partition(
            rdd, partition
        ):
            result = (True, [])
            self._resolve_cache[key] = result
            return result
        ready = True
        needed: List[TaskSpec] = []
        for dep in rdd.dependencies:
            if isinstance(dep, ShuffleDependency):
                self._shuffle_dependents.setdefault(dep.shuffle_id, set()).add(key)
                if self.context.shuffle_manager.has_missing(dep.shuffle_id):
                    ready = False
                    needed.extend(self._missing_map_specs(dep))
            elif isinstance(dep, NarrowDependency):
                for parent_partition in dep.parents_of(partition):
                    self._dependents.setdefault((dep.rdd.rdd_id, parent_partition), set()).add(key)
                    sub_ready, sub_needed = self._resolve_inc(dep.rdd, parent_partition)
                    ready = ready and sub_ready
                    needed.extend(sub_needed)
            else:  # pragma: no cover - no other dependency kinds exist
                raise EngineError(f"unknown dependency type {type(dep).__name__}")
        result = (ready, needed)
        self._resolve_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Incremental readiness: change events and targeted invalidation
    # ------------------------------------------------------------------
    def _on_block_event(self, block_id: str, added: bool) -> None:
        parsed = parse_block_id(block_id)
        if parsed is not None:
            self._invalidate_node(parsed)

    def _on_shuffle_event(self, shuffle_id: int, map_id: int, available: bool) -> None:
        if available:
            # The map spec is no longer a dispatch candidate for anyone —
            # exactly the condition the frontier filter used to re-check
            # every round.  Availability only flips back off via the loss
            # branch below, which drops every list outright.
            self._pop_from_ready_lists(
                (TaskKind.SHUFFLE_MAP.value, shuffle_id, map_id)
            )
            if self.context.shuffle_manager.has_missing(shuffle_id):
                # A registration that leaves the shuffle incomplete cannot
                # flip any dependant ready; it only shrinks their needed
                # lists, and both the rebuild walk and the dispatch filter
                # already skip available map specs.  The cached lists go
                # stale-but-superset, which ``_needed_unchanged`` treats as
                # benign.
                return
            for key in list(self._shuffle_dependents.get(shuffle_id, ())):
                self._invalidate_node(key)
            return
        # Loss events: the ready lists are not a pure function of the cached
        # answers (the walk also consulted map availability), so an
        # unchanged-answer repair cannot prove them valid.  Losses are rare
        # (evictions, revocations) — drop the lists unconditionally.
        for key in list(self._shuffle_dependents.get(shuffle_id, ())):
            self._invalidate_node(key)
        self._drop_ready_lists()

    def _on_checkpoint_event(self, rdd_id: int, partition: Optional[int], available: bool) -> None:
        if partition is not None:
            self._invalidate_node((rdd_id, partition))
            return
        # Whole-RDD deletion (checkpoint GC): every cached decision about
        # this RDD's partitions consulted the now-gone checkpoints.
        for key in [k for k in self._resolve_cache if k[0] == rdd_id]:
            self._invalidate_node(key)

    def _invalidate_node(self, key: Tuple[int, int]) -> None:
        """Drop one cached readiness decision and everything built on it.

        The walk stops at uncached nodes: a cached entry always implies the
        entries it consulted are cached (a resolve caches its inputs before
        itself, and invalidation pops a node's cached dependants in the same
        walk), so an uncached node has no cached dependants left to find.
        Dependency edges are never removed — a stale edge costs at most one
        spurious re-resolve, while a missing one would corrupt readiness.
        """
        if key not in self._resolve_cache:
            return
        stack = [key]
        while stack:
            k = stack.pop()
            old = self._resolve_cache.pop(k, None)
            if old is None:
                continue
            self.stats.readiness_invalidations += 1
            # Repair-and-compare: re-resolve in place (listeners fire after
            # the state change, so this sees fresh state; the node's own
            # dependencies are untouched by this dependants-upward walk).
            # If the answer is unchanged — same ready flag, same needed
            # specs pairwise-identical (valid: needed lists hold only
            # _map_specs-interned objects) — nothing built on it can have
            # changed either, so the cascade and the ready list both stand.
            rdd = self._rdd_index.get(k[0])
            if rdd is not None:
                new = self._resolve_inc(rdd, k[1])
                if new[0] == old[0] and self._needed_unchanged(new[1], old[1]):
                    continue
            self._drop_ready_lists()
            stack.extend(self._dependents.get(k, ()))

    def _needed_unchanged(self, new: List[TaskSpec], old: List[TaskSpec]) -> bool:
        """Is ``new`` exactly ``old``, or ``old`` minus now-available maps?

        Pairwise identity is valid because needed lists hold only
        ``_map_specs``-interned objects.  The gap-tolerant direction is sound
        because the rebuild walk skips available map specs without expanding
        them — pushing the superset list produces the identical walk.  Any
        other difference (growth, reorder, unavailable gap) returns False
        and the caller nukes the ready list.
        """
        if len(new) == len(old):
            return all(x is y for x, y in zip(new, old))
        sm = self.context.shuffle_manager
        i = 0
        n = len(new)
        for s in old:
            if i < n and s is new[i]:
                i += 1
            elif not sm.map_output_available(s.dep.shuffle_id, s.partition):
                return False
        return i == n

    def _pick_worker(self, spec: TaskSpec) -> Optional["Worker"]:
        live = self.cluster.live_workers()
        candidates = [w for w in live if self.busy.get(w.worker_id, 0) < w.slots]
        if spec.kind == TaskKind.CHECKPOINT:
            candidates = [
                w
                for w in candidates
                if self._ckpt_busy.get(w.worker_id, 0) < self.max_checkpoint_tasks_per_worker
            ]
        if not candidates:
            return None
        if spec.preferred_worker_id is not None:
            for worker in candidates:
                if worker.worker_id == spec.preferred_worker_id:
                    return worker
        # Least-loaded, with a rotation so equal loads spread evenly.
        self._dispatch_rotation += 1
        offset = self._dispatch_rotation % len(candidates)
        rotated = candidates[offset:] + candidates[:offset]
        return min(rotated, key=lambda w: self.busy.get(w.worker_id, 0) / w.slots)

    # ------------------------------------------------------------------
    # Dispatch and completion
    # ------------------------------------------------------------------
    def _dispatch(self, spec: TaskSpec, worker: "Worker", job: Optional[_JobState] = None) -> None:
        self.busy[worker.worker_id] = self.busy.get(worker.worker_id, 0) + 1
        if spec.kind == TaskKind.CHECKPOINT:
            self._ckpt_busy[worker.worker_id] = self._ckpt_busy.get(worker.worker_id, 0) + 1
            self._checkpoint_queue.pop(spec.key, None)
        target_id = job.rdd.rdd_id if job is not None else None
        kernel = self._kernels.pop(spec.key, None) if self._kernels else None
        runtime = TaskRuntime(self.context, worker, target_id, kernel=kernel)
        result = None
        buckets = None
        try:
            if spec.kind == TaskKind.RESULT:
                data = runtime.iterator(spec.rdd, spec.partition)
                result = spec.func(data)
                if isinstance(result, list):
                    runtime.charge(
                        self.context.cost_model.driver_transfer_time(
                            len(result) * spec.rdd.record_size
                        )
                    )
            elif spec.kind == TaskKind.SHUFFLE_MAP:
                buckets = self._execute_map(spec, runtime)
            elif spec.kind == TaskKind.CHECKPOINT:
                runtime.charge(self.env.dfs.write_duration(spec.nbytes))
        except ShuffleFetchFailure:
            # A map output this task depends on vanished between the
            # readiness decision and the fetch (an injected revocation of
            # the serving worker, exactly Spark's FetchFailed path).  Abandon
            # the dispatch; the lost maps are already back in the missing
            # sets, so the next round reruns them before retrying this task.
            self._abandon_dispatch(spec, worker)
            return
        duration = self.context.cost_model.task_overhead + runtime.time_charged
        inj = self.context.fault_injector
        if inj is not None:
            duration = inj.scale_task_duration(spec, worker, duration)
        running = RunningTask(
            spec=spec,
            worker_id=worker.worker_id,
            started_at=self.env.now,
            duration=duration,
            result=result,
            pending_puts=runtime.pending_puts,
            map_buckets=buckets,
            computed=runtime.computed,
            job=job,
        )
        running.completion_event = self.env.schedule_in(
            duration, "task_done", running, callback=self._on_task_done
        )
        self.running[spec.key] = running
        self._pop_from_ready_lists(spec.key)
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.inc("scheduler.tasks_dispatched")
        if job is not None:
            if job.first_dispatch_at is None:
                job.first_dispatch_at = self.env.now
                if obs.enabled and job.pool is not None:
                    obs.metrics.observe(
                        f"pool.queue_delay.{job.pool.name}",
                        self.env.now - job.submitted_at,
                    )
            job.running_tasks += 1
            if job.pool is not None:
                job.pool.running_tasks += 1
        if inj is not None:
            # Mid-stage / mid-checkpoint-write injection point: the task is
            # in flight, so a revocation fired here loses exactly this work.
            inj.on_task_dispatched(spec, worker)

    def _abandon_dispatch(self, spec: TaskSpec, worker: "Worker") -> None:
        """Roll back a dispatch whose data plane failed before completion."""
        self.stats.fetch_failures += 1
        if worker.worker_id in self.busy:
            self.busy[worker.worker_id] = max(0, self.busy[worker.worker_id] - 1)
        if spec.kind == TaskKind.CHECKPOINT and worker.worker_id in self._ckpt_busy:
            self._ckpt_busy[worker.worker_id] = max(0, self._ckpt_busy[worker.worker_id] - 1)
        self._drop_ready_lists()
        self._schedule_round()

    def _execute_map(self, spec: TaskSpec, runtime: TaskRuntime) -> List[List[Any]]:
        dep = spec.dep
        records = runtime.iterator(dep.rdd, spec.partition)
        n_buckets = dep.num_reduce_partitions
        partitioner = dep.partitioner
        # ``num_reduce_partitions`` is the partitioner's own partition
        # count, so a plain HashPartitioner's bucket choice can be inlined
        # into the per-record loops (no function call per record).
        hashed = type(partitioner) is HashPartitioner
        pf = partitioner.partition_for
        if dep.map_side_combine:
            create, merge_value, _merge_combiners = dep.aggregator
            # Combine into one table, then distribute: the partitioner runs
            # once per distinct key instead of once per record, and tiny
            # buckets skip the sort.  Within a bucket the insertion order
            # (first key occurrence) and merged values are exactly the
            # per-bucket-table walk's, and the stable sort preserves it for
            # hash ties — the buckets are bit-identical to the seed's.
            combined: Dict[Any, Any] = {}
            get = combined.get
            for key, value in records:
                prev = get(key, _ABSENT)
                combined[key] = (
                    create(value) if prev is _ABSENT else merge_value(prev, value)
                )
            tables: List[List[Any]] = [[] for _ in range(n_buckets)]
            if hashed:
                for item in combined.items():
                    key = item[0]
                    if type(key) is int:
                        tables[(key & 0x7FFFFFFF) % n_buckets].append(item)
                    else:
                        tables[stable_hash(key) % n_buckets].append(item)
            else:
                for item in combined.items():
                    tables[pf(item[0])].append(item)
            buckets = [
                sorted(t, key=_combine_sort_key) if len(t) > 1 else t
                for t in tables
            ]
            out_records = len(combined)
        else:
            buckets = [[] for _ in range(n_buckets)]
            if hashed:
                for record in records:
                    key = record[0]
                    if type(key) is int:
                        buckets[(key & 0x7FFFFFFF) % n_buckets].append(record)
                    else:
                        buckets[stable_hash(key) % n_buckets].append(record)
            else:
                for record in records:
                    buckets[pf(record[0])].append(record)
            out_records = len(records)
        runtime.charge(self.context.cost_model.shuffle_write_time(out_records * dep.rdd.record_size))
        return buckets

    def _on_task_done(self, event) -> None:
        running: RunningTask = event.payload
        spec = running.spec
        self.running.pop(spec.key, None)
        self._note_task_left(running)
        worker = self.cluster.workers.get(running.worker_id)
        if worker is not None:
            self.busy[running.worker_id] = max(0, self.busy.get(running.worker_id, 1) - 1)
            if spec.kind == TaskKind.CHECKPOINT:
                self._ckpt_busy[running.worker_id] = max(
                    0, self._ckpt_busy.get(running.worker_id, 1) - 1
                )
        if worker is None or not worker.alive:
            # The completion event should have been cancelled at revocation;
            # treat a straggler as lost work.  Its spec left ``running``
            # with no change event fired, so a ready list memoised while it
            # ran is no longer faithful.
            self.stats.tasks_lost += 1
            obs = self.context.obs
            if obs.enabled:
                obs.metrics.inc("scheduler.tasks_lost")
                obs.bus.emit(self._task_span(running, self.env.now, "lost"))
            self._drop_ready_lists()
            self._schedule_round()
            return

        now = self.env.now
        self.stats.tasks_completed += 1
        self.stats.task_time_total += running.duration
        job = running.job
        if job is not None:
            self.tasks_completed_by_job[job.job_id] = (
                self.tasks_completed_by_job.get(job.job_id, 0) + 1
            )
            if job.pool is not None:
                job.pool.tasks_completed += 1
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.inc("scheduler.tasks_completed")
            obs.bus.emit(self._task_span(running, now, "complete"))

        for put in running.pending_puts:
            if put.rdd is not None and not put.rdd.persisted:
                # The RDD was unpersisted while this task was in flight
                # (a concurrent job's cache management); landing the block
                # anyway would leak storage no owner can ever drop.
                continue
            worker.block_manager.put(put.block_id, put.data, put.nbytes, put.spill)

        if spec.kind == TaskKind.SHUFFLE_MAP:
            self.stats.map_tasks += 1
            try:
                self.context.shuffle_manager.register_map_output(
                    spec.dep, spec.partition, worker, running.map_buckets, spec.dep.rdd.record_size
                )
            except DiskFullError as exc:
                raise EngineError(
                    f"worker {worker.worker_id} local disk full writing shuffle output"
                ) from exc
        elif spec.kind == TaskKind.RESULT:
            self.stats.result_tasks += 1
            job = running.job
            if job is not None and not job.finished:
                job.set_result(spec.partition, running.result)
                ready = job.ready_list
                if ready is not None:
                    ready.pop(spec.key, None)
        elif spec.kind == TaskKind.CHECKPOINT:
            self.stats.checkpoint_tasks += 1
            self.stats.checkpoint_time_total += running.duration
            registry = self.context.checkpoints
            try:
                registry.record_write(spec.rdd, spec.partition, spec.data, spec.nbytes, now)
            except CheckpointWriteError:
                # Durable write failed (injected DFS fault).  The partition
                # is still only volatile; re-queue the write so the frontier
                # eventually advances once the fault clears.
                self.stats.checkpoint_write_failures += 1
                self.enqueue_checkpoint(spec)
            else:
                ft = self.context.ft_manager
                if registry.is_fully_checkpointed(spec.rdd):
                    registry.gc_after_checkpoint(spec.rdd)
                    if ft is not None:
                        ft.on_rdd_checkpointed(spec.rdd, now)

        self._process_computed(running, worker, now)
        inj = self.context.fault_injector
        if inj is not None:
            # Task-boundary injection point: the task's effects (blocks,
            # shuffle outputs, results, checkpoints) have just landed.
            inj.on_task_completed(spec, worker)
        self._schedule_round()
        # Retire after the trailing round, matching the seed: its final
        # post-completion round still saw the job as active.
        job = running.job
        if job is not None and not job.finished and job.is_done:
            self._retire(job)

    def _process_computed(self, running: RunningTask, worker: "Worker", now: float) -> None:
        """Track materialisations and capture checkpoint payloads."""
        ft = self.context.ft_manager
        obs = self.context.obs
        newly_generated: List["RDD"] = []
        newly_materialised: List["RDD"] = []
        for cp in running.computed:
            if ft is not None:
                ft.on_partition_computed(cp, now)
            seen = self._seen_partitions.setdefault(cp.rdd.rdd_id, set())
            if not seen and cp.rdd.rdd_id not in self._generated:
                self._generated.add(cp.rdd.rdd_id)
                newly_generated.append(cp.rdd)
            if cp.partition in seen and obs.enabled:
                # This materialisation-point partition was computed before:
                # its earlier copy was lost (revocation, eviction) and
                # lineage just re-derived it — one tick of the Figure 3
                # recomputation storm.
                obs.metrics.inc("scheduler.recomputed_partitions")
                obs.bus.emit(SpanEvent(
                    kind="recompute",
                    name=f"recompute rdd{cp.rdd.rdd_id}[{cp.partition}]",
                    start=now,
                    worker=worker.worker_id,
                    status="instant",
                    attrs={"rdd": cp.rdd.rdd_id, "partition": cp.partition},
                ))
            seen.add(cp.partition)
            if (
                len(seen) >= cp.rdd.num_partitions
                and cp.rdd.rdd_id not in self._materialised
            ):
                self._materialised.add(cp.rdd.rdd_id)
                newly_materialised.append(cp.rdd)
        if ft is not None:
            # Generation first: marking an RDD as its first partition lands
            # lets every subsequent partition be captured as it is computed
            # (Flint's partition-level checkpointing, §4).
            for rdd in newly_generated:
                ft.on_rdd_generated(rdd, now)
            for rdd in newly_materialised:
                ft.on_rdd_materialized(rdd, now)
        registry = self.context.checkpoints
        for cp in running.computed:
            if cp.rdd.manual_checkpoint and not registry.is_marked(cp.rdd):
                registry.mark(cp.rdd)
            if registry.is_marked(cp.rdd) and not registry.has_partition(cp.rdd, cp.partition):
                self.enqueue_checkpoint(
                    TaskSpec(
                        TaskKind.CHECKPOINT,
                        cp.rdd,
                        cp.partition,
                        data=cp.data,
                        nbytes=cp.nbytes,
                        preferred_worker_id=worker.worker_id,
                    )
                )
