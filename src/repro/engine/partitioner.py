"""Partitioners for keyed (shuffle) operations.

Hashing must be deterministic across processes and runs, so we avoid
Python's salted ``hash`` for strings and use a small stable hash instead.
"""

from __future__ import annotations

import zlib
from typing import Any


def stable_hash(key: Any) -> int:
    """A deterministic, process-independent hash for common key types."""
    # Exact-type fast path: int keys dominate the shuffle hot loop (vertex
    # ids, cluster ids, user/item ids).  ``type is`` excludes bool, whose
    # branch below returns the same value anyway (int(True) == 1 & mask).
    if type(key) is int:
        return key & 0x7FFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, float):
        return zlib.crc32(repr(key).encode("utf-8"))
    if isinstance(key, tuple):
        h = 0x345678
        for item in key:
            h = (h * 1000003) ^ stable_hash(item)
        return h & 0x7FFFFFFF
    if key is None:
        return 0
    return zlib.crc32(repr(key).encode("utf-8"))


class HashPartitioner:
    """Maps keys to ``num_partitions`` buckets by stable hash."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = int(num_partitions)

    def partition_for(self, key: Any) -> int:
        """Bucket index for ``key`` in ``[0, num_partitions)``."""
        if type(key) is int:  # inline the dominant stable_hash branch
            return (key & 0x7FFFFFFF) % self.num_partitions
        return stable_hash(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashPartitioner) and other.num_partitions == self.num_partitions

    def __hash__(self) -> int:
        return hash(("HashPartitioner", self.num_partitions))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashPartitioner({self.num_partitions})"
