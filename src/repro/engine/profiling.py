"""Lightweight wall-clock timers for engine hot paths.

The scheduler (and any future subsystem) brackets its hot sections with
``SectionTimers`` so perf work can see where driver-side wall-clock goes
without attaching a profiler.  Timing is off by default — a disabled timer
is a single attribute check on the hot path — and is enabled either
programmatically or via the ``FLINT_PROFILE=1`` environment variable.

Usage::

    timers = SectionTimers(enabled=True)
    with timers.section("schedule_round"):
        ...
    timers.report()  # {"schedule_round": {"calls": 1100, "seconds": 0.41}}
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator


def profiling_enabled_by_env() -> bool:
    """True when ``FLINT_PROFILE`` requests engine section timing."""
    return os.environ.get("FLINT_PROFILE", "") not in ("", "0", "false")


class SectionTimers:
    """Named wall-clock accumulators with near-zero disabled overhead."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time one entry of a named section (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._seconds[name] = self._seconds.get(name, 0.0) + dt
            self._calls[name] = self._calls.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Accumulate an externally measured duration."""
        if not self.enabled:
            return
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    def report(self) -> Dict[str, Dict[str, float]]:
        """Accumulated ``{section: {calls, seconds}}`` (empty when disabled)."""
        return {
            name: {"calls": self._calls.get(name, 0), "seconds": secs}
            for name, secs in sorted(self._seconds.items())
        }

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()
