"""Concrete RDD implementations.

Every subclass implements ``compute(split, runtime)`` as a *pure* function of
its parents' records (reached through ``runtime.iterator``, which resolves
caches, checkpoints, and shuffle outputs).  Purity is what makes lineage
recomputation after a revocation return byte-identical results — an invariant
the property-based tests hammer on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.columnar import ColumnarBatch
from repro.engine.dependencies import (
    OneToOneDependency,
    RangeDependency,
    ShuffleDependency,
)
from repro.engine.partitioner import HashPartitioner, stable_hash
from repro.engine.rdd import RDD
from repro.engine.sizeof import estimate_record_size
from repro.simulation.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext
    from repro.engine.scheduler import TaskRuntime

#: Missing-key sentinel for the aggregation merge loops (one dict lookup
#: per record instead of a membership probe plus a read).
_ABSENT = object()


def _record_hash_key(kv):
    """``stable_hash`` of a pair's key, with the int fast path inlined."""
    k = kv[0]
    if type(k) is int:
        return k & 0x7FFFFFFF
    return stable_hash(k)


class ParallelCollectionRDD(RDD):
    """Source RDD from driver-side data, split into even slices."""

    def __init__(
        self,
        context: "FlintContext",
        data: List[Any],
        num_partitions: int,
        record_size: Optional[int] = None,
    ):
        if record_size is None and data:
            record_size = estimate_record_size(data)
        super().__init__(context, [], num_partitions, record_size, name="parallelize")
        self._slices = self._slice(list(data), num_partitions)

    @staticmethod
    def _slice(data: List[Any], n: int) -> List[List[Any]]:
        length = len(data)
        return [data[(i * length) // n : ((i + 1) * length) // n] for i in range(n)]

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        return list(self._slices[split])


class GeneratedRDD(RDD):
    """Source RDD whose partitions come from a deterministic generator.

    Models reading input from stable storage (S3/HDFS): the generator stands
    in for the stored bytes, and ``compute_multiplier`` captures the fetch +
    deserialise + repartition cost the paper observes when interactive state
    must be rebuilt from source (§5.4).
    """

    def __init__(
        self,
        context: "FlintContext",
        generator: Callable[[int], List[Any]],
        num_partitions: int,
        record_size: Optional[int] = None,
        compute_multiplier: float = 2.0,
        name: str = "source",
    ):
        super().__init__(
            context, [], num_partitions, record_size, compute_multiplier, name=name
        )
        self._generator = generator

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        return list(self._generator(split))

    def source_kernel(self, split: int) -> Callable[[], List[Any]]:
        """Picklable zero-arg closure producing this partition's records.

        Captures only the generator and the split — never ``self`` — so the
        executor plane can run the source read out of process.
        """
        gen = self._generator

        def kernel() -> List[Any]:
            return list(gen(split))

        return kernel


class MappedRDD(RDD):
    """One-to-one record transformation."""

    supports_fusion = True

    def __init__(
        self,
        parent: RDD,
        fn: Callable[[Any], Any],
        compute_multiplier: float = 1.0,
        batch_fn: Optional[Callable] = None,
    ):
        super().__init__(
            parent.context,
            [OneToOneDependency(parent)],
            parent.num_partitions,
            compute_multiplier=compute_multiplier,
            name="map",
        )
        self._fn = fn
        self._batch_fn = batch_fn

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return self.compute_fused(runtime.iterator(parent, split), split)

    def compute_fused(self, records: Any, split: int) -> List[Any]:
        return [self._fn(x) for x in records]

    def batch_kernel(self, split: int) -> Optional[Callable]:
        return self._batch_fn

    def fused_kernel(self, split: int) -> Callable[[Any], List[Any]]:
        """Picklable ``records -> records`` twin of :meth:`compute_fused`.

        Every fusable class colocates its kernel with ``compute_fused`` so
        any drift between the two bodies is visible in one diff hunk (and
        caught by the pickling-parity tests).
        """
        fn = self._fn

        def kernel(records: Any) -> List[Any]:
            return [fn(x) for x in records]

        return kernel


class FilteredRDD(RDD):
    """Keeps records matching a predicate."""

    supports_fusion = True

    def __init__(
        self,
        parent: RDD,
        predicate: Callable[[Any], bool],
        batch_fn: Optional[Callable] = None,
    ):
        super().__init__(
            parent.context, [OneToOneDependency(parent)], parent.num_partitions, name="filter"
        )
        self._predicate = predicate
        self._batch_fn = batch_fn
        self.partitioner = parent.partitioner

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return self.compute_fused(runtime.iterator(parent, split), split)

    def compute_fused(self, records: Any, split: int) -> List[Any]:
        return [x for x in records if self._predicate(x)]

    def fused_kernel(self, split: int) -> Callable[[Any], List[Any]]:
        predicate = self._predicate

        def kernel(records: Any) -> List[Any]:
            return [x for x in records if predicate(x)]

        return kernel

    def batch_kernel(self, split: int) -> Optional[Callable]:
        if self._batch_fn is None:
            return None
        mask_fn = self._batch_fn

        def kernel(batch: ColumnarBatch) -> ColumnarBatch:
            # select() validates the mask (bool, batch-length) and raises
            # ColumnarUnsupported itself on a shape mismatch.
            return batch.select(np.asarray(mask_fn(batch)))

        return kernel


class FlatMappedRDD(RDD):
    """Maps each record to an iterable and flattens."""

    supports_fusion = True

    def __init__(
        self,
        parent: RDD,
        fn: Callable[[Any], Any],
        compute_multiplier: float = 1.0,
        batch_fn: Optional[Callable] = None,
    ):
        super().__init__(
            parent.context,
            [OneToOneDependency(parent)],
            parent.num_partitions,
            compute_multiplier=compute_multiplier,
            name="flatMap",
        )
        self._fn = fn
        self._batch_fn = batch_fn

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return self.compute_fused(runtime.iterator(parent, split), split)

    def compute_fused(self, records: Any, split: int) -> List[Any]:
        out: List[Any] = []
        extend = out.extend
        fn = self._fn
        for x in records:
            extend(fn(x))
        return out

    def fused_kernel(self, split: int) -> Callable[[Any], List[Any]]:
        fn = self._fn

        def kernel(records: Any) -> List[Any]:
            out: List[Any] = []
            extend = out.extend
            for x in records:
                extend(fn(x))
            return out

        return kernel

    def batch_kernel(self, split: int) -> Optional[Callable]:
        return self._batch_fn


class MapPartitionsRDD(RDD):
    """Applies a function to an entire partition at once."""

    supports_fusion = True

    def __init__(
        self,
        parent: RDD,
        fn: Callable[[List[Any]], List[Any]],
        compute_multiplier: float = 1.0,
        batch_fn: Optional[Callable] = None,
    ):
        super().__init__(
            parent.context,
            [OneToOneDependency(parent)],
            parent.num_partitions,
            compute_multiplier=compute_multiplier,
            name="mapPartitions",
        )
        self._fn = fn
        self._batch_fn = batch_fn

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return self.compute_fused(runtime.iterator(parent, split), split)

    def compute_fused(self, records: Any, split: int) -> List[Any]:
        # The user function gets a private list copy, exactly as unfused:
        # it may mutate its argument, and ``records`` can be a cached
        # partition the block manager still owns.
        return list(self._fn(list(records)))

    def fused_kernel(self, split: int) -> Callable[[Any], List[Any]]:
        fn = self._fn

        def kernel(records: Any) -> List[Any]:
            return list(fn(list(records)))

        return kernel

    def batch_kernel(self, split: int) -> Optional[Callable]:
        return self._batch_fn


class PartitionIndexedRDD(RDD):
    """Tags each record with a deterministic ``(partition, index)`` key.

    Used by ``repartition`` so the redistribution is a pure function of the
    data — recomputation after a failure lands every record in the same
    reduce bucket it originally went to.
    """

    supports_fusion = True

    def __init__(self, parent: RDD):
        super().__init__(
            parent.context, [OneToOneDependency(parent)], parent.num_partitions, name="indexKey"
        )

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return self.compute_fused(runtime.iterator(parent, split), split)

    def compute_fused(self, records: Any, split: int) -> List[Any]:
        return [((split, i), x) for i, x in enumerate(records)]

    def fused_kernel(self, split: int) -> Callable[[Any], List[Any]]:
        def kernel(records: Any) -> List[Any]:
            return [((split, i), x) for i, x in enumerate(records)]

        return kernel

    def batch_kernel(self, split: int) -> Optional[Callable]:
        # Built-in: prepend a ((split, i), ·) key column pair — pure array
        # construction, valid for any columnarisable payload schema.
        def kernel(batch: ColumnarBatch) -> ColumnarBatch:
            n = batch.length
            part = np.full(n, split, dtype=np.int64)
            idx = np.arange(n, dtype=np.int64)
            return ColumnarBatch(
                ("tuple", (("tuple", ("i8", "i8")), batch.schema)),
                ((part, idx), batch.data),
                n,
            )

        return kernel


class ZipWithIndexRDD(RDD):
    """Pairs records with global indices from precomputed partition offsets."""

    supports_fusion = True

    def __init__(self, parent: RDD, offsets: List[int]):
        if len(offsets) != parent.num_partitions:
            raise ValueError("need one offset per partition")
        super().__init__(
            parent.context, [OneToOneDependency(parent)], parent.num_partitions,
            name="zipWithIndex",
        )
        self._offsets = list(offsets)

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return self.compute_fused(runtime.iterator(parent, split), split)

    def compute_fused(self, records: Any, split: int) -> List[Any]:
        base = self._offsets[split]
        return [(x, base + i) for i, x in enumerate(records)]

    def fused_kernel(self, split: int) -> Callable[[Any], List[Any]]:
        base = self._offsets[split]

        def kernel(records: Any) -> List[Any]:
            return [(x, base + i) for i, x in enumerate(records)]

        return kernel

    def batch_kernel(self, split: int) -> Optional[Callable]:
        base = self._offsets[split]

        def kernel(batch: ColumnarBatch) -> ColumnarBatch:
            idx = np.arange(base, base + batch.length, dtype=np.int64)
            return ColumnarBatch(
                ("tuple", (batch.schema, "i8")), (batch.data, idx), batch.length
            )

        return kernel


class SampledRDD(RDD):
    """Deterministic Bernoulli sampling (seeded per partition)."""

    supports_fusion = True

    def __init__(self, parent: RDD, fraction: float, seed: int = 0):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        super().__init__(
            parent.context, [OneToOneDependency(parent)], parent.num_partitions, name="sample"
        )
        self._fraction = fraction
        self._seed = seed

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return self.compute_fused(runtime.iterator(parent, split), split)

    def compute_fused(self, records: Any, split: int) -> List[Any]:
        # Seeded by (user seed, partition) only — not the RDD id — so the
        # same pipeline built twice samples identically.
        rng = SeededRNG(self._seed, f"sample-{split}")
        if type(records) is not list:
            records = list(records)
        if not records:
            return []
        mask = rng.random(len(records)) < self._fraction
        return [x for x, keep in zip(records, mask) if keep]

    def fused_kernel(self, split: int) -> Callable[[Any], List[Any]]:
        fraction = self._fraction
        seed = self._seed

        def kernel(records: Any) -> List[Any]:
            rng = SeededRNG(seed, f"sample-{split}")
            if type(records) is not list:
                records = list(records)
            if not records:
                return []
            mask = rng.random(len(records)) < fraction
            return [x for x, keep in zip(records, mask) if keep]

        return kernel

    def batch_kernel(self, split: int) -> Optional[Callable]:
        # Built-in: the same seeded RNG draws the same mask over the same
        # record count, so the selected subset is identical to the row plane.
        fraction = self._fraction
        seed = self._seed

        def kernel(batch: ColumnarBatch) -> ColumnarBatch:
            rng = SeededRNG(seed, f"sample-{split}")
            mask = np.asarray(rng.random(batch.length) < fraction)
            return batch.select(mask)

        return kernel


class UnionRDD(RDD):
    """Concatenation of several RDDs via range dependencies.

    Fuses as an identity stage: each output partition maps to exactly one
    parent partition through its :class:`RangeDependency`, so a narrow chain
    can run straight through a union without a materialisation stop.
    """

    supports_fusion = True

    def __init__(self, context: "FlintContext", parents: List[RDD]):
        if not parents:
            raise ValueError("union of zero RDDs")
        deps = []
        offset = 0
        for parent in parents:
            deps.append(RangeDependency(parent, 0, offset, parent.num_partitions))
            offset += parent.num_partitions
        super().__init__(context, deps, offset, name="union")

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        for dep in self.dependencies:
            parents = dep.parents_of(split)
            if parents:
                return self.compute_fused(runtime.iterator(dep.rdd, parents[0]), split)
        raise IndexError(f"partition {split} out of range for union")

    def compute_fused(self, records: Any, split: int) -> List[Any]:
        return list(records)

    def fused_kernel(self, split: int) -> Callable[[Any], List[Any]]:
        def kernel(records: Any) -> List[Any]:
            return list(records)

        return kernel

    def batch_kernel(self, split: int) -> Optional[Callable]:
        # Identity: columns are immutable by convention, so the same batch
        # passes through (the row twin's list() copy exists only to protect
        # cached rows from downstream mutation, which columns cannot see).
        def kernel(batch: ColumnarBatch) -> ColumnarBatch:
            return batch

        return kernel


class ShuffledRDD(RDD):
    """Reduce side of a hash shuffle, with optional aggregation.

    With an aggregator (reduceByKey/combineByKey) values are merged map-side
    into combiners and merged again here; without one (partitionBy) the
    records pass through bucketed but untouched.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: HashPartitioner,
        aggregator: Optional[Tuple[Callable, Callable, Callable]] = None,
        map_side_combine: bool = False,
    ):
        dep = ShuffleDependency(parent, partitioner, aggregator, map_side_combine)
        super().__init__(
            parent.context, [dep], partitioner.num_partitions, name="shuffle"
        )
        self.partitioner = partitioner

    @property
    def shuffle_dependency(self) -> ShuffleDependency:
        return self.dependencies[0]

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        dep = self.shuffle_dependency
        buckets = runtime.shuffle_fetch(dep, split)
        if dep.aggregator is None:
            out: List[Any] = []
            for bucket in buckets:
                out.extend(bucket)
            return out
        create, merge_value, merge_combiners = dep.aggregator
        merged: Dict[Any, Any] = {}
        get = merged.get
        if dep.map_side_combine:
            # Map side already produced combiners.
            for bucket in buckets:
                for key, value in bucket:
                    prev = get(key, _ABSENT)
                    merged[key] = (
                        value if prev is _ABSENT else merge_combiners(prev, value)
                    )
        else:
            for bucket in buckets:
                for key, value in bucket:
                    prev = get(key, _ABSENT)
                    merged[key] = (
                        create(value) if prev is _ABSENT else merge_value(prev, value)
                    )
        return sorted(merged.items(), key=_record_hash_key)

    def merge_kernel(self) -> Callable[[List[List[Any]]], List[Any]]:
        """Picklable ``buckets -> records`` twin of the merge in :meth:`compute`.

        Captures the aggregator functions and the combine flag — not the
        dependency or ``self`` — so the reduce-side merge can run out of
        process over driver-peeked buckets.
        """
        dep = self.shuffle_dependency
        aggregator = dep.aggregator
        map_side_combine = dep.map_side_combine

        def kernel(buckets: List[List[Any]]) -> List[Any]:
            if aggregator is None:
                out: List[Any] = []
                for bucket in buckets:
                    out.extend(bucket)
                return out
            create, merge_value, merge_combiners = aggregator
            merged: Dict[Any, Any] = {}
            get = merged.get
            if map_side_combine:
                for bucket in buckets:
                    for key, value in bucket:
                        prev = get(key, _ABSENT)
                        merged[key] = (
                            value if prev is _ABSENT else merge_combiners(prev, value)
                        )
            else:
                for bucket in buckets:
                    for key, value in bucket:
                        prev = get(key, _ABSENT)
                        merged[key] = (
                            create(value) if prev is _ABSENT else merge_value(prev, value)
                        )
            return sorted(merged.items(), key=_record_hash_key)

        return kernel


class CoGroupedRDD(RDD):
    """Groups two (or more) keyed RDDs by key: ``(k, ([vs_0], [vs_1], ...))``.

    As in Spark, a parent already hash-partitioned by the same partitioner
    contributes through a *narrow* dependency — its partition ``p`` holds
    exactly the keys of output partition ``p`` — so iterative joins against
    a pre-partitioned dataset (PageRank's ``links``) shuffle only the small
    side.
    """

    def __init__(self, context: "FlintContext", parents: List[RDD], partitioner: HashPartitioner):
        if len(parents) < 2:
            raise ValueError("cogroup needs at least two parents")
        deps: List = []
        for parent in parents:
            if parent.partitioner == partitioner:
                deps.append(OneToOneDependency(parent))
            else:
                deps.append(ShuffleDependency(parent, partitioner, aggregator=None))
        super().__init__(context, deps, partitioner.num_partitions, name="cogroup")
        self.partitioner = partitioner

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        n = len(self.dependencies)
        # Group tuples are built up-front (not converted from lists at the
        # end), so the result is one sort over the table itself.  The
        # two-sided case — every ``cogroup``/``join`` the engine itself
        # creates — constructs its group pair as a literal.
        table: Dict[Any, Tuple[List[Any], ...]] = {}
        get = table.get
        for side, dep in enumerate(self.dependencies):
            if isinstance(dep, ShuffleDependency):
                sources = runtime.shuffle_fetch(dep, split)
            else:
                sources = (runtime.iterator(dep.rdd, split),)
            if n == 2:
                for records in sources:
                    for key, value in records:
                        groups = get(key)
                        if groups is None:
                            groups = table[key] = ([], [])
                        groups[side].append(value)
            else:
                for records in sources:
                    for key, value in records:
                        groups = get(key)
                        if groups is None:
                            groups = table[key] = tuple([] for _ in range(n))
                        groups[side].append(value)
        return sorted(table.items(), key=_record_hash_key)

    def merge_kernel(self) -> Callable[[List[List[List[Any]]]], List[Any]]:
        """Picklable twin of :meth:`compute`'s merge over pre-fetched sides.

        Takes ``sides``: one list of record-lists per dependency, in
        dependency order (a narrow side contributes a single record list, a
        shuffle side one list per map output) — exactly the ``sources``
        sequence the inline merge walks.
        """
        n = len(self.dependencies)

        def kernel(sides: List[List[List[Any]]]) -> List[Any]:
            table: Dict[Any, Tuple[List[Any], ...]] = {}
            get = table.get
            for side, sources in enumerate(sides):
                if n == 2:
                    for records in sources:
                        for key, value in records:
                            groups = get(key)
                            if groups is None:
                                groups = table[key] = ([], [])
                            groups[side].append(value)
                else:
                    for records in sources:
                        for key, value in records:
                            groups = get(key)
                            if groups is None:
                                groups = table[key] = tuple([] for _ in range(n))
                            groups[side].append(value)
            return sorted(table.items(), key=_record_hash_key)

        return kernel
