"""Concrete RDD implementations.

Every subclass implements ``compute(split, runtime)`` as a *pure* function of
its parents' records (reached through ``runtime.iterator``, which resolves
caches, checkpoints, and shuffle outputs).  Purity is what makes lineage
recomputation after a revocation return byte-identical results — an invariant
the property-based tests hammer on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.engine.dependencies import (
    OneToOneDependency,
    RangeDependency,
    ShuffleDependency,
)
from repro.engine.partitioner import HashPartitioner, stable_hash
from repro.engine.rdd import RDD
from repro.engine.sizeof import estimate_record_size
from repro.simulation.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext
    from repro.engine.scheduler import TaskRuntime


class ParallelCollectionRDD(RDD):
    """Source RDD from driver-side data, split into even slices."""

    def __init__(
        self,
        context: "FlintContext",
        data: List[Any],
        num_partitions: int,
        record_size: Optional[int] = None,
    ):
        if record_size is None and data:
            record_size = estimate_record_size(data)
        super().__init__(context, [], num_partitions, record_size, name="parallelize")
        self._slices = self._slice(list(data), num_partitions)

    @staticmethod
    def _slice(data: List[Any], n: int) -> List[List[Any]]:
        length = len(data)
        return [data[(i * length) // n : ((i + 1) * length) // n] for i in range(n)]

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        return list(self._slices[split])


class GeneratedRDD(RDD):
    """Source RDD whose partitions come from a deterministic generator.

    Models reading input from stable storage (S3/HDFS): the generator stands
    in for the stored bytes, and ``compute_multiplier`` captures the fetch +
    deserialise + repartition cost the paper observes when interactive state
    must be rebuilt from source (§5.4).
    """

    def __init__(
        self,
        context: "FlintContext",
        generator: Callable[[int], List[Any]],
        num_partitions: int,
        record_size: Optional[int] = None,
        compute_multiplier: float = 2.0,
        name: str = "source",
    ):
        super().__init__(
            context, [], num_partitions, record_size, compute_multiplier, name=name
        )
        self._generator = generator

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        return list(self._generator(split))


class MappedRDD(RDD):
    """One-to-one record transformation."""

    def __init__(self, parent: RDD, fn: Callable[[Any], Any], compute_multiplier: float = 1.0):
        super().__init__(
            parent.context,
            [OneToOneDependency(parent)],
            parent.num_partitions,
            compute_multiplier=compute_multiplier,
            name="map",
        )
        self._fn = fn

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return [self._fn(x) for x in runtime.iterator(parent, split)]


class FilteredRDD(RDD):
    """Keeps records matching a predicate."""

    def __init__(self, parent: RDD, predicate: Callable[[Any], bool]):
        super().__init__(
            parent.context, [OneToOneDependency(parent)], parent.num_partitions, name="filter"
        )
        self._predicate = predicate
        self.partitioner = parent.partitioner

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return [x for x in runtime.iterator(parent, split) if self._predicate(x)]


class FlatMappedRDD(RDD):
    """Maps each record to an iterable and flattens."""

    def __init__(self, parent: RDD, fn: Callable[[Any], Any], compute_multiplier: float = 1.0):
        super().__init__(
            parent.context,
            [OneToOneDependency(parent)],
            parent.num_partitions,
            compute_multiplier=compute_multiplier,
            name="flatMap",
        )
        self._fn = fn

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        out: List[Any] = []
        for x in runtime.iterator(parent, split):
            out.extend(self._fn(x))
        return out


class MapPartitionsRDD(RDD):
    """Applies a function to an entire partition at once."""

    def __init__(
        self, parent: RDD, fn: Callable[[List[Any]], List[Any]], compute_multiplier: float = 1.0
    ):
        super().__init__(
            parent.context,
            [OneToOneDependency(parent)],
            parent.num_partitions,
            compute_multiplier=compute_multiplier,
            name="mapPartitions",
        )
        self._fn = fn

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return list(self._fn(list(runtime.iterator(parent, split))))


class PartitionIndexedRDD(RDD):
    """Tags each record with a deterministic ``(partition, index)`` key.

    Used by ``repartition`` so the redistribution is a pure function of the
    data — recomputation after a failure lands every record in the same
    reduce bucket it originally went to.
    """

    def __init__(self, parent: RDD):
        super().__init__(
            parent.context, [OneToOneDependency(parent)], parent.num_partitions, name="indexKey"
        )

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        return [((split, i), x) for i, x in enumerate(runtime.iterator(parent, split))]


class ZipWithIndexRDD(RDD):
    """Pairs records with global indices from precomputed partition offsets."""

    def __init__(self, parent: RDD, offsets: List[int]):
        if len(offsets) != parent.num_partitions:
            raise ValueError("need one offset per partition")
        super().__init__(
            parent.context, [OneToOneDependency(parent)], parent.num_partitions,
            name="zipWithIndex",
        )
        self._offsets = list(offsets)

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        base = self._offsets[split]
        return [(x, base + i) for i, x in enumerate(runtime.iterator(parent, split))]


class SampledRDD(RDD):
    """Deterministic Bernoulli sampling (seeded per partition)."""

    def __init__(self, parent: RDD, fraction: float, seed: int = 0):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        super().__init__(
            parent.context, [OneToOneDependency(parent)], parent.num_partitions, name="sample"
        )
        self._fraction = fraction
        self._seed = seed

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        parent = self.dependencies[0].rdd
        # Seeded by (user seed, partition) only — not the RDD id — so the
        # same pipeline built twice samples identically.
        rng = SeededRNG(self._seed, f"sample-{split}")
        records = list(runtime.iterator(parent, split))
        if not records:
            return []
        mask = rng.random(len(records)) < self._fraction
        return [x for x, keep in zip(records, mask) if keep]


class UnionRDD(RDD):
    """Concatenation of several RDDs via range dependencies."""

    def __init__(self, context: "FlintContext", parents: List[RDD]):
        if not parents:
            raise ValueError("union of zero RDDs")
        deps = []
        offset = 0
        for parent in parents:
            deps.append(RangeDependency(parent, 0, offset, parent.num_partitions))
            offset += parent.num_partitions
        super().__init__(context, deps, offset, name="union")

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        for dep in self.dependencies:
            parents = dep.parents_of(split)
            if parents:
                return list(runtime.iterator(dep.rdd, parents[0]))
        raise IndexError(f"partition {split} out of range for union")


class ShuffledRDD(RDD):
    """Reduce side of a hash shuffle, with optional aggregation.

    With an aggregator (reduceByKey/combineByKey) values are merged map-side
    into combiners and merged again here; without one (partitionBy) the
    records pass through bucketed but untouched.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: HashPartitioner,
        aggregator: Optional[Tuple[Callable, Callable, Callable]] = None,
        map_side_combine: bool = False,
    ):
        dep = ShuffleDependency(parent, partitioner, aggregator, map_side_combine)
        super().__init__(
            parent.context, [dep], partitioner.num_partitions, name="shuffle"
        )
        self.partitioner = partitioner

    @property
    def shuffle_dependency(self) -> ShuffleDependency:
        return self.dependencies[0]

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        dep = self.shuffle_dependency
        buckets = runtime.shuffle_fetch(dep, split)
        if dep.aggregator is None:
            out: List[Any] = []
            for bucket in buckets:
                out.extend(bucket)
            return out
        create, merge_value, merge_combiners = dep.aggregator
        merged: Dict[Any, Any] = {}
        for bucket in buckets:
            for key, value in bucket:
                if dep.map_side_combine:
                    # Map side already produced combiners.
                    if key in merged:
                        merged[key] = merge_combiners(merged[key], value)
                    else:
                        merged[key] = value
                else:
                    if key in merged:
                        merged[key] = merge_value(merged[key], value)
                    else:
                        merged[key] = create(value)
        return sorted(merged.items(), key=lambda kv: stable_hash(kv[0]))


class CoGroupedRDD(RDD):
    """Groups two (or more) keyed RDDs by key: ``(k, ([vs_0], [vs_1], ...))``.

    As in Spark, a parent already hash-partitioned by the same partitioner
    contributes through a *narrow* dependency — its partition ``p`` holds
    exactly the keys of output partition ``p`` — so iterative joins against
    a pre-partitioned dataset (PageRank's ``links``) shuffle only the small
    side.
    """

    def __init__(self, context: "FlintContext", parents: List[RDD], partitioner: HashPartitioner):
        if len(parents) < 2:
            raise ValueError("cogroup needs at least two parents")
        deps: List = []
        for parent in parents:
            if parent.partitioner == partitioner:
                deps.append(OneToOneDependency(parent))
            else:
                deps.append(ShuffleDependency(parent, partitioner, aggregator=None))
        super().__init__(context, deps, partitioner.num_partitions, name="cogroup")
        self.partitioner = partitioner

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        n = len(self.dependencies)
        table: Dict[Any, List[List[Any]]] = {}

        def absorb(side: int, records) -> None:
            for key, value in records:
                groups = table.get(key)
                if groups is None:
                    groups = [[] for _ in range(n)]
                    table[key] = groups
                groups[side].append(value)

        for side, dep in enumerate(self.dependencies):
            if isinstance(dep, ShuffleDependency):
                for bucket in runtime.shuffle_fetch(dep, split):
                    absorb(side, bucket)
            else:
                absorb(side, runtime.iterator(dep.rdd, split))
        return sorted(
            ((k, tuple(groups)) for k, groups in table.items()),
            key=lambda kv: stable_hash(kv[0]),
        )
