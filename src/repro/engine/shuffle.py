"""Hash shuffle machinery.

Map tasks bucket their output by the shuffle's partitioner and write the
buckets to their worker's *local* disk — which means a revocation destroys
those map outputs and forces the map tasks to re-run, the behaviour behind
the paper's shuffle-sensitive results (PageRank in Figures 7/8).  The
``ShuffleManager`` is the driver-side MapOutputTracker: it knows which map
outputs exist and where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.engine.dependencies import ShuffleDependency
from repro.storage.local_disk import DiskFullError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.worker import Worker


@dataclass
class MapStatus:
    """Location and per-reduce-bucket sizes of one map task's output."""

    worker_id: str
    disk_key: str
    bucket_bytes: List[int]

    @property
    def total_bytes(self) -> int:
        return sum(self.bucket_bytes)


class ShuffleFetchFailure(RuntimeError):
    """A reduce task found a map output missing (its worker died)."""

    def __init__(self, shuffle_id: int, missing_maps: List[int]):
        super().__init__(f"shuffle {shuffle_id} missing map outputs {missing_maps}")
        self.shuffle_id = shuffle_id
        self.missing_maps = missing_maps


class ShuffleManager:
    """Tracks map outputs for every shuffle in the application."""

    def __init__(self):
        # shuffle_id -> map_partition -> MapStatus
        self._outputs: Dict[int, Dict[int, MapStatus]] = {}
        self._workers: Dict[str, "Worker"] = {}
        self.bytes_written = 0
        self.bytes_fetched_remote = 0
        self.bytes_fetched_local = 0

    def register_worker(self, worker: "Worker") -> None:
        self._workers[worker.worker_id] = worker

    @staticmethod
    def _disk_key(shuffle_id: int, map_id: int) -> str:
        return f"shuffle/{shuffle_id}/map_{map_id}"

    # ------------------------------------------------------------------
    def register_map_output(
        self,
        dep: ShuffleDependency,
        map_id: int,
        worker: "Worker",
        buckets: List[List[Any]],
        record_size: int,
    ) -> MapStatus:
        """Store a map task's buckets on ``worker`` and record their location."""
        if len(buckets) != dep.num_reduce_partitions:
            raise ValueError(
                f"expected {dep.num_reduce_partitions} buckets, got {len(buckets)}"
            )
        bucket_bytes = [len(b) * record_size for b in buckets]
        key = self._disk_key(dep.shuffle_id, map_id)
        total = sum(bucket_bytes)
        try:
            worker.local_disk.put(key, buckets, total)
        except DiskFullError:
            # Old shuffle files are always recoverable through lineage, so a
            # full disk evicts them oldest-first (Spark's ContextCleaner
            # plays the analogous role via RDD garbage collection).
            self._evict_local_state(worker, needed=total, keep_key=key)
            worker.local_disk.put(key, buckets, total)
        status = MapStatus(worker.worker_id, key, bucket_bytes)
        self._outputs.setdefault(dep.shuffle_id, {})[map_id] = status
        self.bytes_written += status.total_bytes
        return status

    def has_map_output(self, shuffle_id: int, map_id: int) -> bool:
        status = self._outputs.get(shuffle_id, {}).get(map_id)
        if status is None:
            return False
        worker = self._workers.get(status.worker_id)
        return worker is not None and worker.alive and worker.local_disk.has(status.disk_key)

    def missing_maps(self, dep: ShuffleDependency) -> List[int]:
        """Map partitions whose output is absent or lost."""
        return [
            m for m in range(dep.num_map_partitions) if not self.has_map_output(dep.shuffle_id, m)
        ]

    def is_complete(self, dep: ShuffleDependency) -> bool:
        return not self.missing_maps(dep)

    def fetch(
        self, dep: ShuffleDependency, reduce_id: int, to_worker: "Worker"
    ) -> Tuple[List[List[Any]], int, int]:
        """Gather bucket ``reduce_id`` from every map output.

        Returns ``(buckets, local_bytes, remote_bytes)`` so the caller can
        charge network time for the remote portion.

        Raises:
            ShuffleFetchFailure: when any map output has been lost.
        """
        missing = self.missing_maps(dep)
        if missing:
            raise ShuffleFetchFailure(dep.shuffle_id, missing)
        buckets: List[List[Any]] = []
        local_bytes = 0
        remote_bytes = 0
        statuses = self._outputs[dep.shuffle_id]
        for map_id in range(dep.num_map_partitions):
            status = statuses[map_id]
            worker = self._workers[status.worker_id]
            all_buckets = worker.local_disk.get(status.disk_key)
            buckets.append(all_buckets[reduce_id])
            nbytes = status.bucket_bytes[reduce_id]
            if status.worker_id == to_worker.worker_id:
                local_bytes += nbytes
            else:
                remote_bytes += nbytes
        self.bytes_fetched_local += local_bytes
        self.bytes_fetched_remote += remote_bytes
        return buckets, local_bytes, remote_bytes

    def _evict_local_state(self, worker: "Worker", needed: int, keep_key: str) -> None:
        """Free local-disk space by dropping recomputable state.

        Shuffle files go first (oldest shuffle id first), then cache spill;
        both regenerate through lineage if ever needed again.
        """
        shuffle_keys = sorted(
            (k for k in worker.local_disk.keys() if k.startswith("shuffle/") and k != keep_key),
            key=lambda k: int(k.split("/")[1]),
        )
        spill_keys = [k for k in worker.local_disk.keys() if k.startswith("spill/")]
        for key in shuffle_keys + spill_keys:
            if worker.local_disk.free_bytes >= needed:
                return
            worker.local_disk.delete(key)
            if key.startswith("shuffle/"):
                _prefix, shuffle_id, map_part = key.split("/")
                map_id = int(map_part.split("_")[1])
                self._outputs.get(int(shuffle_id), {}).pop(map_id, None)

    def remove_outputs_on(self, worker_id: str) -> int:
        """Forget map outputs located on a dead worker; returns count lost."""
        lost = 0
        for statuses in self._outputs.values():
            doomed = [m for m, s in statuses.items() if s.worker_id == worker_id]
            for m in doomed:
                del statuses[m]
                lost += 1
        return lost

    def output_bytes(self, dep: ShuffleDependency) -> int:
        """Total bytes currently registered for a shuffle."""
        return sum(s.total_bytes for s in self._outputs.get(dep.shuffle_id, {}).values())
