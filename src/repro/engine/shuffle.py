"""Hash shuffle machinery.

Map tasks bucket their output by the shuffle's partitioner and write the
buckets to their worker's *local* disk — which means a revocation destroys
those map outputs and forces the map tasks to re-run, the behaviour behind
the paper's shuffle-sensitive results (PageRank in Figures 7/8).  The
``ShuffleManager`` is the driver-side MapOutputTracker: it knows which map
outputs exist and where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Set, Tuple

from repro.engine.dependencies import ShuffleDependency
from repro.engine.profiling import SectionTimers, profiling_enabled_by_env
from repro.obs import SpanEvent
from repro.storage.local_disk import DiskFullError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.worker import Worker


@dataclass
class MapStatus:
    """Location and per-reduce-bucket sizes of one map task's output."""

    worker_id: str
    disk_key: str
    bucket_bytes: List[int]

    @property
    def total_bytes(self) -> int:
        return sum(self.bucket_bytes)


@dataclass
class FetchPlan:
    """Precomputed fetch layout for one complete shuffle.

    Built once per (shuffle, output-epoch) and reused by every reduce task:
    ``bucket_lists[map_id]`` is the map output's on-disk bucket list, and the
    byte totals are pre-aggregated so a fetch resolves its local/remote split
    with two list reads instead of an O(maps) status walk.  Any output
    mutation (register, eviction, worker loss) bumps the shuffle's epoch,
    invalidating the plan.
    """

    epoch: int
    # map_id -> that map output's full bucket list (one entry per reducer).
    bucket_lists: List[List[List[Any]]]
    # reduce_id -> total bytes across all map outputs.
    reduce_bytes: List[int]
    # worker_id -> (reduce_id -> bytes served from that worker).
    worker_bytes: Dict[str, List[int]]


class ShuffleFetchFailure(RuntimeError):
    """A reduce task found a map output missing (its worker died)."""

    def __init__(self, shuffle_id: int, missing_maps: List[int]):
        super().__init__(f"shuffle {shuffle_id} missing map outputs {missing_maps}")
        self.shuffle_id = shuffle_id
        self.missing_maps = missing_maps


class ShuffleManager:
    """Tracks map outputs for every shuffle in the application."""

    def __init__(self, obs=None):
        #: Observability hook (attribute-wired by the engine context);
        #: None keeps the fetch/register hot paths branch-free.
        self.obs = obs
        # shuffle_id -> map_partition -> MapStatus
        self._outputs: Dict[int, Dict[int, MapStatus]] = {}
        self._workers: Dict[str, "Worker"] = {}
        # shuffle_id -> set of map partitions whose output is currently
        # absent.  Maintained on register/evict/revoke so ``missing_maps``
        # is O(|missing|) and ``is_complete`` is O(1) — the seed re-probed
        # every map partition's worker on each call.
        self._missing: Dict[int, Set[int]] = {}
        self._num_maps: Dict[int, int] = {}
        # worker_id -> {(shuffle_id, map_id)} it currently serves, so loss
        # of a worker is handled in O(outputs it owned), not O(all outputs).
        self._owned: Dict[str, Set[Tuple[int, int]]] = {}
        # shuffle_id -> maintained total registered bytes, so
        # ``output_bytes`` is O(1) instead of summing every MapStatus.
        self._total_bytes: Dict[int, int] = {}
        # shuffle_id -> output-mutation epoch / cached FetchPlan.  The plan
        # is valid only while its epoch matches; every register/evict/loss
        # bumps the epoch (see :class:`FetchPlan`).
        self._plan_epochs: Dict[int, int] = {}
        self._plans: Dict[int, FetchPlan] = {}
        self.plans_built = 0
        self.plan_hits = 0
        self.bytes_written = 0
        self.bytes_fetched_remote = 0
        self.bytes_fetched_local = 0
        self.missing_queries = 0
        #: Callbacks ``(shuffle_id, map_id, available: bool)`` fired whenever
        #: a map output appears or is lost (the incremental scheduler's
        #: readiness-invalidation hook).
        self._listeners: List[Callable[[int, int, bool], None]] = []
        #: Fault-injection point: when set, ``on_shuffle_fetch`` fires at the
        #: top of every :meth:`fetch`, before the missing-map check — so an
        #: injected revocation of a serving worker surfaces as the genuine
        #: :class:`ShuffleFetchFailure` recovery path.
        self.fault_injector = None
        #: ``FLINT_PROFILE=1`` section timing for the fetch/register hot
        #: paths (see :meth:`FlintContext.profile_report`).
        self.timers = SectionTimers(enabled=profiling_enabled_by_env())

    def add_listener(self, listener: Callable[[int, int, bool], None]) -> None:
        self._listeners.append(listener)

    def _notify(self, shuffle_id: int, map_id: int, available: bool) -> None:
        for listener in self._listeners:
            listener(shuffle_id, map_id, available)

    def _ensure_tracked(self, dep: ShuffleDependency) -> Set[int]:
        missing = self._missing.get(dep.shuffle_id)
        if missing is None:
            missing = set(range(dep.num_map_partitions))
            self._missing[dep.shuffle_id] = missing
            self._num_maps[dep.shuffle_id] = dep.num_map_partitions
        return missing

    def register_worker(self, worker: "Worker") -> None:
        if worker.worker_id not in self._workers:
            # Any death path (revocation, termination, direct kill) must
            # mark the worker's outputs lost or the missing-sets go stale.
            worker.add_death_listener(self._on_worker_death)
        self._workers[worker.worker_id] = worker

    def _on_worker_death(self, worker: "Worker") -> None:
        self.remove_outputs_on(worker.worker_id)

    @staticmethod
    def _disk_key(shuffle_id: int, map_id: int) -> str:
        return f"shuffle/{shuffle_id}/map_{map_id}"

    def _invalidate_plan(self, shuffle_id: int) -> None:
        """Bump the shuffle's output epoch, retiring any cached fetch plan."""
        self._plan_epochs[shuffle_id] = self._plan_epochs.get(shuffle_id, 0) + 1

    def output_epoch(self, shuffle_id: int) -> int:
        """Monotone version of the shuffle's output set.

        Bumped on every register, eviction, and loss — so any derived
        structure (fetch plans, the scheduler's missing-spec lists) is
        valid exactly while the epoch it was built at still matches.
        """
        return self._plan_epochs.get(shuffle_id, 0)

    # ------------------------------------------------------------------
    def register_map_output(
        self,
        dep: ShuffleDependency,
        map_id: int,
        worker: "Worker",
        buckets: List[List[Any]],
        record_size: int,
    ) -> MapStatus:
        """Store a map task's buckets on ``worker`` and record their location."""
        if len(buckets) != dep.num_reduce_partitions:
            raise ValueError(
                f"expected {dep.num_reduce_partitions} buckets, got {len(buckets)}"
            )
        with self.timers.section("shuffle_register"):
            bucket_bytes = [len(b) * record_size for b in buckets]
            key = self._disk_key(dep.shuffle_id, map_id)
            total = sum(bucket_bytes)
            missing = self._ensure_tracked(dep)
            try:
                worker.local_disk.put(key, buckets, total)
            except DiskFullError:
                # Old shuffle files are always recoverable through lineage,
                # so a full disk evicts them oldest-first (Spark's
                # ContextCleaner plays the analogous role via RDD GC).
                self._evict_local_state(worker, needed=total, keep_key=key)
                worker.local_disk.put(key, buckets, total)
            status = MapStatus(worker.worker_id, key, bucket_bytes)
            sid = dep.shuffle_id
            statuses = self._outputs.setdefault(sid, {})
            old = statuses.get(map_id)
            if old is not None and old.worker_id != worker.worker_id:
                owned = self._owned.get(old.worker_id)
                if owned is not None:
                    owned.discard((sid, map_id))
            statuses[map_id] = status
            self._invalidate_plan(sid)
            self._total_bytes[sid] = (
                self._total_bytes.get(sid, 0)
                + total
                - (old.total_bytes if old is not None else 0)
            )
            self._owned.setdefault(worker.worker_id, set()).add((sid, map_id))
            missing.discard(map_id)
            self.bytes_written += total
            obs = self.obs
            if obs is not None and obs.enabled:
                obs.metrics.inc("shuffle.bytes_written", total)
                if not missing:
                    obs.bus.emit(SpanEvent(
                        kind="stage",
                        name=f"shuffle-{dep.shuffle_id}-maps-complete",
                        start=obs.now(),
                        status="instant",
                        attrs={
                            "shuffle_id": dep.shuffle_id,
                            "num_maps": dep.num_map_partitions,
                        },
                    ))
            self._notify(dep.shuffle_id, map_id, True)
            return status

    def has_map_output(self, shuffle_id: int, map_id: int) -> bool:
        status = self._outputs.get(shuffle_id, {}).get(map_id)
        if status is None:
            return False
        worker = self._workers.get(status.worker_id)
        return worker is not None and worker.alive and worker.local_disk.has(status.disk_key)

    def missing_maps(self, dep: ShuffleDependency) -> List[int]:
        """Map partitions whose output is absent or lost.

        O(|missing|·log) from the maintained missing set — no per-map worker
        probes (``has_map_output`` remains available for point queries).
        """
        self.missing_queries += 1
        missing = self._missing.get(dep.shuffle_id)
        if missing is None:
            missing = self._ensure_tracked(dep)
        if not missing:
            return []
        return sorted(missing)

    def missing_maps_by_probe(self, dep: ShuffleDependency) -> List[int]:
        """Reference per-map probe implementation of :meth:`missing_maps`.

        The original O(maps) worker-probe loop.  The legacy scheduler mode
        uses it, and the equivalence tests hold the maintained missing set
        to exactly its answers.
        """
        self.missing_queries += 1
        return [
            m for m in range(dep.num_map_partitions) if not self.has_map_output(dep.shuffle_id, m)
        ]

    def is_complete(self, dep: ShuffleDependency) -> bool:
        return not self._ensure_tracked(dep)

    def map_output_available(self, shuffle_id: int, map_id: int) -> bool:
        """O(1) point query against the maintained missing set."""
        missing = self._missing.get(shuffle_id)
        return missing is not None and map_id not in missing

    def has_missing(self, shuffle_id: int) -> bool:
        """O(1): does the shuffle still lack any map output?

        An untracked shuffle counts as missing everything (nothing has been
        registered for it yet).
        """
        missing = self._missing.get(shuffle_id)
        return missing is None or bool(missing)

    def fetch(
        self, dep: ShuffleDependency, reduce_id: int, to_worker: "Worker"
    ) -> Tuple[List[List[Any]], int, int]:
        """Gather bucket ``reduce_id`` from every map output.

        Returns ``(buckets, local_bytes, remote_bytes)`` so the caller can
        charge network time for the remote portion.

        Raises:
            ShuffleFetchFailure: when any map output has been lost.
        """
        with self.timers.section("shuffle_fetch"):
            if self.fault_injector is not None:
                self.fault_injector.on_shuffle_fetch(dep, reduce_id, to_worker)
            # Inline missing_maps: the happy path needs only the emptiness
            # check, and the query counter must tick exactly as before.
            self.missing_queries += 1
            missing = self._missing.get(dep.shuffle_id)
            if missing is None:
                missing = self._ensure_tracked(dep)
            if missing:
                raise ShuffleFetchFailure(dep.shuffle_id, sorted(missing))
            plan = self._fetch_plan(dep)
            buckets = [all_buckets[reduce_id] for all_buckets in plan.bucket_lists]
            total = plan.reduce_bytes[reduce_id]
            served = plan.worker_bytes.get(to_worker.worker_id)
            local_bytes = served[reduce_id] if served is not None else 0
            remote_bytes = total - local_bytes
            self.bytes_fetched_local += local_bytes
            self.bytes_fetched_remote += remote_bytes
            obs = self.obs
            if obs is not None and obs.enabled:
                obs.metrics.inc("shuffle.bytes_fetched_local", local_bytes)
                obs.metrics.inc("shuffle.bytes_fetched_remote", remote_bytes)
                obs.bus.emit(SpanEvent(
                    kind="shuffle-fetch",
                    name=f"shuffle-{dep.shuffle_id}-reduce-{reduce_id}",
                    start=obs.now(),
                    worker=to_worker.worker_id,
                    status="instant",
                    attrs={
                        "shuffle_id": dep.shuffle_id,
                        "reduce_id": reduce_id,
                        "local_bytes": local_bytes,
                        "remote_bytes": remote_bytes,
                    },
                ))
            return buckets, local_bytes, remote_bytes

    def peek_reduce_buckets(
        self, dep: ShuffleDependency, reduce_id: int
    ) -> Optional[List[List[Any]]]:
        """One reduce bucket from every map output, with *no* side effects.

        The executor plane stages speculative reduce merges from this.  It
        bypasses :meth:`fetch` entirely: no fault-injection hook, no missing
        query counter, no byte accounting, no fetch-plan build — the real
        ``fetch`` replays all of that at consume time so the simulation stays
        bit-identical.  Returns None unless every map output is present on a
        live worker (``LocalDisk.get`` is counter-free, so reads here are
        invisible).
        """
        missing = self._missing.get(dep.shuffle_id)
        if missing is None or missing:
            return None
        statuses = self._outputs.get(dep.shuffle_id)
        if statuses is None:
            return None
        buckets: List[List[Any]] = []
        for map_id in range(dep.num_map_partitions):
            status = statuses.get(map_id)
            if status is None:
                return None
            worker = self._workers.get(status.worker_id)
            if worker is None or not worker.alive or not worker.local_disk.has(status.disk_key):
                return None
            buckets.append(worker.local_disk.get(status.disk_key)[reduce_id])
        return buckets

    def _fetch_plan(self, dep: ShuffleDependency) -> FetchPlan:
        """The cached :class:`FetchPlan` for a complete shuffle.

        Only called after the missing-map check passes, so every map output
        is present.  Rebuilt when the shuffle's output epoch has moved.
        """
        sid = dep.shuffle_id
        epoch = self._plan_epochs.get(sid, 0)
        plan = self._plans.get(sid)
        if plan is not None and plan.epoch == epoch:
            self.plan_hits += 1
            return plan
        self.plans_built += 1
        statuses = self._outputs[sid]
        n_reduce = dep.num_reduce_partitions
        bucket_lists: List[List[List[Any]]] = []
        reduce_bytes = [0] * n_reduce
        worker_bytes: Dict[str, List[int]] = {}
        for map_id in range(dep.num_map_partitions):
            status = statuses[map_id]
            worker = self._workers[status.worker_id]
            bucket_lists.append(worker.local_disk.get(status.disk_key))
            served = worker_bytes.get(status.worker_id)
            if served is None:
                served = worker_bytes[status.worker_id] = [0] * n_reduce
            bb = status.bucket_bytes
            for r in range(n_reduce):
                nbytes = bb[r]
                reduce_bytes[r] += nbytes
                served[r] += nbytes
        plan = FetchPlan(epoch, bucket_lists, reduce_bytes, worker_bytes)
        self._plans[sid] = plan
        return plan

    def _evict_local_state(self, worker: "Worker", needed: int, keep_key: str) -> None:
        """Free local-disk space by dropping recomputable state.

        Shuffle files go first (oldest shuffle id first), then cache spill;
        both regenerate through lineage if ever needed again.
        """
        shuffle_keys = sorted(
            (k for k in worker.local_disk.keys() if k.startswith("shuffle/") and k != keep_key),
            key=lambda k: int(k.split("/")[1]),
        )
        spill_keys = [k for k in worker.local_disk.keys() if k.startswith("spill/")]
        for key in shuffle_keys + spill_keys:
            if worker.local_disk.free_bytes >= needed:
                return
            worker.local_disk.delete(key)
            if key.startswith("shuffle/"):
                _prefix, shuffle_id, map_part = key.split("/")
                sid = int(shuffle_id)
                map_id = int(map_part.split("_")[1])
                popped = self._outputs.get(sid, {}).pop(map_id, None)
                if popped is not None:
                    owned = self._owned.get(popped.worker_id)
                    if owned is not None:
                        owned.discard((sid, map_id))
                    self._invalidate_plan(sid)
                    self._total_bytes[sid] = self._total_bytes.get(sid, 0) - popped.total_bytes
                    self._mark_lost(sid, map_id)
            elif worker.block_manager is not None:
                # Cache spill evicted behind the block manager's back: keep
                # the driver-side block-location index truthful.
                worker.block_manager.note_spill_deleted(key[len("spill/"):])

    def _mark_lost(self, shuffle_id: int, map_id: int) -> None:
        missing = self._missing.get(shuffle_id)
        if missing is not None and map_id not in missing:
            missing.add(map_id)
            self._notify(shuffle_id, map_id, False)

    def remove_outputs_on(self, worker_id: str) -> int:
        """Forget map outputs located on a dead worker; returns count lost.

        O(outputs the worker owned) via the ownership sets — the seed
        scanned every shuffle's full status table.
        """
        lost = 0
        owned = self._owned.pop(worker_id, None)
        if not owned:
            return 0
        for shuffle_id, map_id in sorted(owned):
            statuses = self._outputs.get(shuffle_id)
            if statuses is None:
                continue
            status = statuses.get(map_id)
            if status is not None and status.worker_id == worker_id:
                del statuses[map_id]
                self._invalidate_plan(shuffle_id)
                self._total_bytes[shuffle_id] = (
                    self._total_bytes.get(shuffle_id, 0) - status.total_bytes
                )
                self._mark_lost(shuffle_id, map_id)
                lost += 1
        return lost

    def output_bytes(self, dep: ShuffleDependency) -> int:
        """Total bytes currently registered for a shuffle (O(1), maintained)."""
        return self._total_bytes.get(dep.shuffle_id, 0)

    def output_bytes_by_scan(self, dep: ShuffleDependency) -> int:
        """Reference O(maps) implementation of :meth:`output_bytes`.

        The equivalence tests hold the maintained counter to exactly its
        answers, mirroring :meth:`missing_maps_by_probe`.
        """
        return sum(s.total_bytes for s in self._outputs.get(dep.shuffle_id, {}).values())

    # ------------------------------------------------------------------
    # Truth accessors for the fault-injection invariant checker
    # ------------------------------------------------------------------
    def tracked_shuffles(self) -> List[Tuple[int, int]]:
        """``(shuffle_id, num_map_partitions)`` for every tracked shuffle."""
        return sorted((sid, self._num_maps[sid]) for sid in self._missing)

    def missing_set(self, shuffle_id: int) -> Set[int]:
        """Copy of the maintained missing-map set for one shuffle."""
        return set(self._missing.get(shuffle_id, ()))

    def serving_workers(self, shuffle_id: int) -> List[str]:
        """Ids of live workers currently holding this shuffle's map outputs."""
        out = set()
        for status in self._outputs.get(shuffle_id, {}).values():
            worker = self._workers.get(status.worker_id)
            if worker is not None and worker.alive:
                out.add(status.worker_id)
        return sorted(out)
