"""Scheduler pools: fair-share slot allocation across concurrent jobs.

Modelled on Spark's FairScheduler.  Every job is submitted into a named
:class:`Pool`; the scheduler's root policy decides how CPU slots are shared
*between* jobs each scheduling round:

- ``fifo`` (the default, and the seed's effective behaviour): jobs take
  slots strictly in submission order — a query submitted mid-batch waits
  for the batch frontier to drain.
- ``fair``: weighted max-min sharing.  Each dispatch goes to the pool with
  the smallest ``running_tasks / weight`` share, ``interactive`` pools
  strictly ahead of ``batch`` pools, then to a job inside that pool by the
  pool's own intra-pool policy (``fifo`` by submission order, ``fair`` by
  per-job running count).

Pools are lightweight accounting objects — admission control (queue bounds,
concurrency caps) lives in :class:`repro.server.JobServer`, which sits on
top of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

POOL_POLICIES = ("fifo", "fair")
PRIORITY_CLASSES = ("interactive", "batch")

#: Root scheduling policies accepted by :class:`TaskScheduler`.
SCHEDULING_POLICIES = ("fifo", "fair")

DEFAULT_POOL = "default"


@dataclass
class Pool:
    """One scheduling pool: a weight, a priority class, and live accounting.

    Args:
        name: pool identifier (jobs are submitted by pool name).
        policy: intra-pool job ordering — ``fifo`` (submission order) or
            ``fair`` (least-running job first).
        weight: fair-share weight relative to sibling pools.
        priority: ``interactive`` pools dispatch strictly before ``batch``
            pools under the fair root policy (the paper's short-query-over-
            long-batch case, §5 Fig 9).
    """

    name: str
    policy: str = "fifo"
    weight: float = 1.0
    priority: str = "batch"
    # Live accounting, maintained by the scheduler.
    running_tasks: int = field(default=0, compare=False)
    jobs_submitted: int = field(default=0, compare=False)
    jobs_finished: int = field(default=0, compare=False)
    tasks_completed: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.policy not in POOL_POLICIES:
            raise ValueError(
                f"unknown pool policy {self.policy!r} (expected one of {POOL_POLICIES})"
            )
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority class {self.priority!r} "
                f"(expected one of {PRIORITY_CLASSES})"
            )
        if self.weight <= 0:
            raise ValueError("pool weight must be positive")

    @property
    def priority_rank(self) -> int:
        """Interactive pools sort strictly before batch pools."""
        return 0 if self.priority == "interactive" else 1

    @property
    def active_jobs(self) -> int:
        return self.jobs_submitted - self.jobs_finished
