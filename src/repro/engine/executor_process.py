"""Process-pool executor backend (``FLINT_EXECUTOR=process``).

Kernels cross the process boundary as pickled blobs (see
:mod:`repro.engine.closure`): the driver serialises each
:class:`~repro.engine.executor.KernelTask`, a forked worker deserialises,
runs :func:`~repro.engine.executor.run_kernel`, and ships the pickled
:class:`~repro.engine.task.TaskResult` back.  Any per-kernel failure —
unpicklable closure, worker-side exception — degrades that one task to the
inline path; the pool never takes the driver down.

Pools are process-global and lazy: the first parallel batch forks them, and
every subsequent context reuses them (a simulation suite builds thousands of
contexts; forking per context would dominate wall clock).  ``fork`` start
method keeps workers cheap and is available on every Linux CI host.
"""

from __future__ import annotations

import atexit
import multiprocessing
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import closure
from repro.engine.executor import ExecutorBackend, TaskPayload, run_kernel
from repro.engine.task import TaskResult

_POOLS: Dict[int, Any] = {}


def _shared_pool(worker_count: int):
    pool = _POOLS.get(worker_count)
    if pool is None:
        ctx = multiprocessing.get_context("fork")
        pool = ctx.Pool(processes=worker_count)
        _POOLS[worker_count] = pool
    return pool


@atexit.register
def _drain_pools() -> None:  # pragma: no cover - interpreter shutdown
    for pool in _POOLS.values():
        pool.terminate()
    _POOLS.clear()


def _run_blob(blob: bytes) -> Tuple[bool, bytes]:
    """Worker-side entry point: blob in, pickled result (or error repr) out.

    Must stay module-level (the pool pickles it by reference) and must never
    raise — a raising worker callable poisons ``map`` for the whole batch.
    """
    try:
        result = run_kernel(closure.loads(blob))
        return True, closure.dumps(result)
    except Exception as exc:  # noqa: BLE001 - report, don't poison the batch
        return False, repr(exc).encode("utf-8", "replace")


def _run_job(blob: bytes) -> Tuple[bool, bytes]:
    """Worker-side entry for coarse job fan-out (benchmark sweeps)."""
    try:
        fn, item = closure.loads(blob)
        return True, closure.dumps(fn(item))
    except Exception as exc:  # noqa: BLE001
        return False, repr(exc).encode("utf-8", "replace")


class ProcessExecutor(ExecutorBackend):
    """Fan kernels across a shared pool of forked worker processes."""

    name = "process"
    speculative = True

    def run_batch(self, payloads: List[TaskPayload]) -> List[Optional[TaskResult]]:
        if not payloads:
            return []
        blobs: List[Optional[bytes]] = []
        for payload in payloads:
            try:
                blobs.append(closure.dumps(payload.task))
            except Exception:  # noqa: BLE001 - unpicklable kernel -> inline
                blobs.append(None)
        shippable = [b for b in blobs if b is not None]
        replies = iter(
            _shared_pool(self.worker_count).map(_run_blob, shippable)
            if shippable
            else []
        )
        out: List[Optional[TaskResult]] = []
        for blob in blobs:
            if blob is None:
                out.append(None)
                continue
            ok, body = next(replies)
            out.append(closure.loads(body) if ok else None)
        return out

    def map_jobs(self, fn, items: List[Any]) -> List[Any]:
        if not items:
            return []
        blobs = [closure.dumps((fn, item)) for item in items]
        results: List[Any] = []
        for ok, body in _shared_pool(self.worker_count).map(_run_job, blobs):
            if not ok:
                raise RuntimeError(
                    f"executor job failed in worker: {body.decode('utf-8', 'replace')}"
                )
            results.append(closure.loads(body))
        return results
