"""Driver-side block-location index (Spark's BlockManagerMaster).

The seed engine answered "where is partition (rdd, p) cached?" by scanning
every live worker's :class:`~repro.engine.block_manager.BlockManager` — an
O(workers) probe sitting under the scheduler's innermost readiness loop.
This index keeps the authoritative ``block_id -> {worker_id: Worker}``
mapping on the driver, maintained synchronously by the per-worker block
managers on every put / evict / drop / revocation, so existence checks are
one dict lookup and location queries are O(#holders) (almost always 1).

Listeners (the incremental scheduler) are notified on every add/remove so
cached readiness decisions can be invalidated exactly when a block appears
or disappears, instead of being recomputed every scheduling round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.worker import Worker


def parse_block_id(block_id: str) -> Optional[Tuple[int, int]]:
    """``rdd_<id>_<partition>`` -> ``(rdd_id, partition)``, else None."""
    parts = block_id.split("_")
    if len(parts) != 3 or parts[0] != "rdd":
        return None
    try:
        return int(parts[1]), int(parts[2])
    except ValueError:
        return None


@dataclass
class BlockIndexStats:
    """Counters proving the index is doing the lookups the scans used to."""

    adds: int = 0
    removals: int = 0
    lookups: int = 0
    worker_purges: int = 0


class BlockLocationIndex:
    """``block_id -> {worker_id: Worker}`` with change notification."""

    def __init__(self):
        self._locations: Dict[str, Dict[str, "Worker"]] = {}
        self._by_worker: Dict[str, set] = {}
        self.stats = BlockIndexStats()
        #: Callbacks ``(block_id, added: bool)`` fired on every change.
        self._listeners: List[Callable[[str, bool], None]] = []

    def add_listener(self, listener: Callable[[str, bool], None]) -> None:
        self._listeners.append(listener)

    def _notify(self, block_id: str, added: bool) -> None:
        for listener in self._listeners:
            listener(block_id, added)

    # ------------------------------------------------------------------
    def add(self, block_id: str, worker: "Worker") -> None:
        """Record that ``worker`` now holds ``block_id`` (memory or spill)."""
        holders = self._locations.setdefault(block_id, {})
        if worker.worker_id in holders:
            return
        holders[worker.worker_id] = worker
        self._by_worker.setdefault(worker.worker_id, set()).add(block_id)
        self.stats.adds += 1
        self._notify(block_id, True)

    def remove(self, block_id: str, worker_id: str) -> None:
        """Record that ``worker_id`` no longer holds ``block_id``."""
        holders = self._locations.get(block_id)
        if holders is None or worker_id not in holders:
            return
        del holders[worker_id]
        if not holders:
            del self._locations[block_id]
        blocks = self._by_worker.get(worker_id)
        if blocks is not None:
            blocks.discard(block_id)
        self.stats.removals += 1
        self._notify(block_id, False)

    def purge_worker(self, worker_id: str) -> int:
        """Drop every entry held by one worker (revocation); returns count."""
        blocks = self._by_worker.pop(worker_id, None)
        if not blocks:
            return 0
        self.stats.worker_purges += 1
        purged = 0
        for block_id in list(blocks):
            holders = self._locations.get(block_id)
            if holders is not None and holders.pop(worker_id, None) is not None:
                if not holders:
                    del self._locations[block_id]
                self.stats.removals += 1
                purged += 1
                self._notify(block_id, False)
        return purged

    # ------------------------------------------------------------------
    def exists(self, block_id: str) -> bool:
        """True when any live worker holds the block — one dict lookup."""
        self.stats.lookups += 1
        holders = self._locations.get(block_id)
        if not holders:
            return False
        return any(w.alive for w in holders.values())

    def holders(self, block_id: str) -> List["Worker"]:
        """Live holders of a block in join (worker-id) order."""
        self.stats.lookups += 1
        holders = self._locations.get(block_id)
        if not holders:
            return []
        live = [w for w in holders.values() if w.alive]
        # Worker ids are zero-padded creation-ordered strings, so lexical
        # order reproduces the join-order scan of the seed implementation.
        live.sort(key=lambda w: w.worker_id)
        return live

    def peek_holders(self, block_id: str) -> List["Worker"]:
        """Live holders in join order with *no* lookup accounting.

        The executor plane's payload staging must be invisible to the
        index's counters (``lookups`` proves the scheduler's own probe
        volume); the authoritative :meth:`holders` call still happens on
        the simulated data path.
        """
        holders = self._locations.get(block_id)
        if not holders:
            return []
        live = [w for w in holders.values() if w.alive]
        live.sort(key=lambda w: w.worker_id)
        return live

    def blocks_on(self, worker_id: str) -> List[str]:
        """Block ids currently attributed to one worker (diagnostics)."""
        return sorted(self._by_worker.get(worker_id, ()))

    def __len__(self) -> int:
        return len(self._locations)
