"""Lineage graph traversal.

The lineage DAG is implicit in each RDD's dependency list; this module gives
the checkpointing policy the traversals it needs: ancestor enumeration (for
checkpoint garbage collection), shuffle discovery, and depth metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from repro.engine.dependencies import NarrowDependency, ShuffleDependency

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rdd import RDD


def fusion_edge(node: "RDD", split: int):
    """The sole contributing ``(parent, parent_partition)`` of a narrow node.

    Returns None — a fusion boundary — when the node has no parents, any
    shuffle input, or more than one contributing parent partition (e.g. a
    cogroup with two narrow sides).  Range dependencies (union) contribute
    at most one parent partition each, so a union fuses through whichever
    side covers ``split``.

    Shared by the scheduler's fused data plane and the executor plane's
    payload builder, which must walk chains identically.
    """
    edge = None
    for dep in node.dependencies:
        if not isinstance(dep, NarrowDependency):
            return None
        parents_list = dep.parents_of(split)
        if not parents_list:
            continue
        if edge is not None or len(parents_list) > 1:
            return None
        edge = (dep.rdd, parents_list[0])
    return edge


def parents(rdd: "RDD") -> List["RDD"]:
    """Direct lineage parents of an RDD."""
    return [dep.rdd for dep in rdd.dependencies]


def ancestors(rdd: "RDD") -> List["RDD"]:
    """All transitive ancestors (excluding ``rdd``), deduplicated, BFS order."""
    seen: Set[int] = {rdd.rdd_id}
    order: List["RDD"] = []
    frontier = parents(rdd)
    while frontier:
        nxt: List["RDD"] = []
        for node in frontier:
            if node.rdd_id in seen:
                continue
            seen.add(node.rdd_id)
            order.append(node)
            nxt.extend(parents(node))
        frontier = nxt
    return order


def shuffle_dependencies(rdd: "RDD") -> List[ShuffleDependency]:
    """Every shuffle dependency in the lineage of ``rdd`` (including its own)."""
    deps: List[ShuffleDependency] = []
    for node in [rdd] + ancestors(rdd):
        for dep in node.dependencies:
            if isinstance(dep, ShuffleDependency):
                deps.append(dep)
    return deps


def lineage_depth(rdd: "RDD") -> int:
    """Longest parent chain length (a source RDD has depth 1)."""
    cache = {}

    def depth(node: "RDD") -> int:
        if node.rdd_id in cache:
            return cache[node.rdd_id]
        ps = parents(node)
        result = 1 if not ps else 1 + max(depth(p) for p in ps)
        cache[node.rdd_id] = result
        return result

    return depth(rdd)


def is_ancestor(candidate: "RDD", of: "RDD") -> bool:
    """True when ``candidate`` appears in the lineage of ``of``."""
    return any(a.rdd_id == candidate.rdd_id for a in ancestors(of))
