"""Thread-pool executor backend (``FLINT_EXECUTOR=async``).

Runs kernels on an in-process :class:`~concurrent.futures.ThreadPoolExecutor`
— no fork cost, shared memory — while still enforcing the full serialisation
contract: every kernel and result round-trips through
:func:`repro.engine.closure.dumps` / ``loads`` exactly as the process
backend would ship them.  That makes ``async`` the cheap picklability canary
(CI can prove closures are process-safe without paying for processes) and a
usable speedup wherever kernels release the GIL.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional

from repro.engine import closure
from repro.engine.executor import ExecutorBackend, TaskPayload, run_kernel
from repro.engine.task import TaskResult


def _run_payload(payload: TaskPayload) -> Optional[TaskResult]:
    try:
        blob = closure.dumps(payload.task)
        result = run_kernel(closure.loads(blob))
        return closure.loads(closure.dumps(result))
    except Exception:  # noqa: BLE001 - any failure degrades to inline
        return None


class AsyncExecutor(ExecutorBackend):
    """Thread-pool kernels with a mandatory pickle round trip."""

    name = "async"
    speculative = True

    def __init__(self, worker_count: int = 1):
        super().__init__(worker_count)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.worker_count, thread_name_prefix="flint-exec"
            )
        return self._pool

    def run_batch(self, payloads: List[TaskPayload]) -> List[Optional[TaskResult]]:
        if not payloads:
            return []
        return list(self._ensure_pool().map(_run_payload, payloads))

    def map_jobs(self, fn, items: List[Any]) -> List[Any]:
        if not items:
            return []
        return list(self._ensure_pool().map(fn, items))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
