"""Timing cost model for simulated task execution.

All durations charged to the simulation clock flow through this model, so
experiments can be re-calibrated in one place.  Defaults approximate the
paper's testbed (r3.large: 2 VCPUs, ~1 Gbit network, HDFS on EBS):

* compute: a core streams ~50 MB/s of (virtual) record bytes through a
  narrow-transformation pipeline;
* network: ~120 MB/s between workers (shuffle fetch, remote cache reads);
* DFS: see :class:`repro.storage.dfs.DFSConfig`.

Record sizes are *virtual*: workloads process modest real record counts but
declare paper-scale per-record byte hints, so memory pressure, checkpoint
times, and shuffle volumes match the paper's gigabyte regimes without
gigabytes of host RAM.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Rates used to convert work into simulated seconds.

    Attributes:
        compute_bandwidth: virtual bytes/sec one CPU slot processes through a
            transformation of multiplier 1.0.
        network_bandwidth: bytes/sec for worker-to-worker transfers.
        local_read_bandwidth: bytes/sec reading spilled blocks from local SSD.
        task_overhead: fixed per-task cost (scheduling, deserialisation).
        shuffle_write_factor: extra compute charge per shuffle-output byte
            (serialisation + partitioning), as a fraction of compute cost.
        driver_bandwidth: bytes/sec for shipping action results to the driver.
    """

    compute_bandwidth: float = 50e6
    network_bandwidth: float = 120e6
    local_read_bandwidth: float = 300e6
    task_overhead: float = 0.05
    shuffle_write_factor: float = 0.3
    driver_bandwidth: float = 200e6

    def compute_time(self, nbytes: float, multiplier: float = 1.0) -> float:
        """Seconds of CPU to process ``nbytes`` virtual bytes."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes * multiplier / self.compute_bandwidth

    def network_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` between two workers."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.network_bandwidth

    def local_read_time(self, nbytes: float) -> float:
        """Seconds to read ``nbytes`` back from local spill."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.local_read_bandwidth

    def shuffle_write_time(self, nbytes: float) -> float:
        """Extra seconds charged on the map side per shuffle output byte."""
        return self.compute_time(nbytes, self.shuffle_write_factor)

    def driver_transfer_time(self, nbytes: float) -> float:
        """Seconds to ship an action result partition to the driver."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.driver_bandwidth
