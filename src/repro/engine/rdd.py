"""Resilient Distributed Datasets.

An RDD is an immutable, partitioned dataset defined by its lineage: either a
source (driver data or generated input) or a deterministic transformation of
parent RDDs.  RDDs are lazy — transformations build the lineage graph, and
only actions (``collect``, ``count``, ...) trigger execution through the
context's scheduler.  Lost partitions are recomputed from lineage, from the
youngest cached ancestor, or from the youngest *checkpointed* ancestor — the
mechanism Flint's policies drive.
"""

from __future__ import annotations

import functools
import operator
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.engine.dependencies import (
    Dependency,
)
from repro.engine.partitioner import HashPartitioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext
    from repro.engine.scheduler import TaskRuntime

#: Fallback virtual record size (bytes) when nothing better is known.
DEFAULT_RECORD_SIZE = 100


class RDD:
    """Base class for all RDDs.

    Args:
        context: owning :class:`~repro.engine.context.FlintContext`.
        dependencies: lineage edges to parent RDDs.
        num_partitions: partition count of this dataset.
        record_size: virtual bytes per record for time/memory accounting;
            inherited from the first parent when not given.
        compute_multiplier: relative CPU cost of producing one record of this
            RDD (1.0 = the cost model's base streaming rate).
        name: debug label shown in plans and logs.
    """

    def __init__(
        self,
        context: "FlintContext",
        dependencies: List[Dependency],
        num_partitions: int,
        record_size: Optional[int] = None,
        compute_multiplier: float = 1.0,
        name: Optional[str] = None,
    ):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.context = context
        self.rdd_id = context._next_rdd_id()
        self.dependencies = dependencies
        self.num_partitions = int(num_partitions)
        self._record_size = record_size
        #: Memoised inherited record size: ``(sizing_epoch, value)``.  The
        #: context-wide epoch bumps on any ``set_record_size`` so stale
        #: entries self-invalidate without a graph walk.
        self._record_size_memo: Optional[Tuple[int, int]] = None
        self.compute_multiplier = float(compute_multiplier)
        self.name = name or type(self).__name__
        self.persisted = False
        self.disk_persist = False
        self.manual_checkpoint = False
        # Set for post-shuffle RDDs so joins can avoid redundant shuffles.
        self.partitioner: Optional[HashPartitioner] = None
        #: How many lineage edges point at this RDD.  An RDD consumed by
        #: more than one dependant must stay a fusion boundary: the unfused
        #: path memoises (and charges) it once per task, which fusion can
        #: only reproduce by resolving it through ``TaskRuntime.iterator``.
        self.dependents = 0
        for dep in dependencies:
            dep.rdd.dependents += 1
        context._register_rdd(self)

    # ------------------------------------------------------------------
    # Core contract
    # ------------------------------------------------------------------
    #: True for operators that can run as a stage of a fused narrow chain:
    #: :meth:`compute_fused` consumes the parent's already-resolved records
    #: instead of re-entering ``runtime.iterator``.  Sources and shuffle
    #: consumers stay False — they are pipeline breakers by construction.
    supports_fusion = False

    def compute(self, split: int, runtime: "TaskRuntime") -> List[Any]:
        """Produce the records of partition ``split`` (pure, deterministic)."""
        raise NotImplementedError

    def compute_fused(self, records: Any, split: int) -> List[Any]:
        """Produce partition ``split`` from the parent's record stream.

        Fused form of :meth:`compute` for single-narrow-parent operators:
        ``records`` is an iterable of the (sole contributing) parent
        partition's records, already resolved by the task runtime.  Must
        return exactly what ``compute`` would — the fused and unfused data
        planes are held bit-identical by the equivalence tests.
        """
        raise NotImplementedError

    def batch_kernel(self, split: int) -> Optional[Callable]:
        """Vectorised ``ColumnarBatch -> ColumnarBatch`` twin, or None.

        The columnar plane lowers a fused chain to batch kernels only when
        *every* stage provides one; None (the default) keeps the stage — and
        therefore any chain through it — on the row plane.  A kernel must be
        picklable (it ships with executor-plane payloads) and must satisfy
        the bit-identity contract: applied to the columnarised parent
        records it produces exactly ``compute_fused``'s records, in order,
        with the same record count (charges replay from batch lengths).  It
        may raise :class:`~repro.engine.columnar.ColumnarUnsupported` when
        the runtime schema does not fit — the chain falls back to rows.
        """
        return None

    @property
    def is_source(self) -> bool:
        """True for lineage roots backed by stable input."""
        return not self.dependencies

    @property
    def record_size(self) -> int:
        """Virtual bytes per record (own hint, else inherited, else default).

        Inherited answers are memoised per RDD against the context's sizing
        epoch: lineage chains grow one node per transformation, so without
        the memo every charge on a late-iteration RDD re-walks the whole
        graph back to its source.
        """
        if self._record_size is not None:
            return self._record_size
        ctx = self.context
        memo = self._record_size_memo
        if memo is not None and memo[0] == ctx.sizing_epoch:
            ctx.record_size_memo_hits += 1
            return memo[1]
        ctx.record_size_memo_misses += 1
        if self.dependencies:
            value = self.dependencies[0].rdd.record_size
        else:
            value = DEFAULT_RECORD_SIZE
        self._record_size_memo = (ctx.sizing_epoch, value)
        return value

    def set_record_size(self, nbytes: int) -> "RDD":
        """Override the virtual record size hint (returns self for chaining)."""
        if nbytes <= 0:
            raise ValueError("record size must be positive")
        self._record_size = int(nbytes)
        # Descendants may have memoised the old inherited value.
        self.context.sizing_epoch += 1
        return self

    def set_name(self, name: str) -> "RDD":
        self.name = name
        return self

    def partition_bytes(self, record_count: int) -> int:
        """Virtual size of a partition holding ``record_count`` records."""
        return max(1, record_count) * self.record_size

    # ------------------------------------------------------------------
    # Persistence and checkpointing controls
    # ------------------------------------------------------------------
    def persist(self, use_disk: bool = False) -> "RDD":
        """Keep computed partitions in the distributed memory cache.

        ``use_disk=False`` is Spark's default MEMORY_ONLY level: partitions
        evicted under memory pressure are dropped and recomputed from
        lineage.  ``use_disk=True`` (MEMORY_AND_DISK) spills evictions to
        the worker's local SSD instead.
        """
        self.persisted = True
        self.disk_persist = use_disk
        return self

    def cache(self) -> "RDD":
        """Alias for :meth:`persist` (Spark's default memory level)."""
        return self.persist()

    def unpersist(self) -> "RDD":
        """Stop caching and drop existing cached partitions."""
        self.persisted = False
        self.context.drop_cached_rdd(self)
        return self

    def checkpoint(self) -> "RDD":
        """Manually mark this RDD for checkpointing (Spark's explicit API).

        Flint normally drives checkpointing automatically; this is the
        programmer-facing escape hatch the paper's §3 describes.
        """
        self.manual_checkpoint = True
        return self

    @property
    def is_checkpointed(self) -> bool:
        """True once all partitions are durably checkpointed."""
        return self.context.checkpoints.is_fully_checkpointed(self)

    # ------------------------------------------------------------------
    # Transformations (lazy)
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        compute_multiplier: float = 1.0,
        batch_fn: Optional[Callable] = None,
    ) -> "RDD":
        """Apply ``fn`` to every record.

        ``batch_fn``, when given, is the columnar plane's vectorised twin
        (``ColumnarBatch -> ColumnarBatch``); it must produce exactly the
        records ``fn`` would, in order (see :meth:`batch_kernel`).
        """
        from repro.engine import transformations as t

        return t.MappedRDD(self, fn, compute_multiplier, batch_fn=batch_fn)

    def filter(
        self,
        predicate: Callable[[Any], bool],
        batch_fn: Optional[Callable] = None,
    ) -> "RDD":
        """Keep records where ``predicate`` is true.

        ``batch_fn``, when given, maps a ``ColumnarBatch`` to a boolean
        NumPy mask (True = keep) that must agree with ``predicate`` on
        every record.
        """
        from repro.engine import transformations as t

        return t.FilteredRDD(self, predicate, batch_fn=batch_fn)

    def flat_map(
        self,
        fn: Callable[[Any], Any],
        compute_multiplier: float = 1.0,
        batch_fn: Optional[Callable] = None,
    ) -> "RDD":
        """Apply ``fn`` and flatten the resulting iterables.

        ``batch_fn`` is the vectorised twin over whole batches (output
        length is free — flattening is the kernel's business).
        """
        from repro.engine import transformations as t

        return t.FlatMappedRDD(self, fn, compute_multiplier, batch_fn=batch_fn)

    def map_partitions(
        self,
        fn: Callable[[List[Any]], List[Any]],
        compute_multiplier: float = 1.0,
        batch_fn: Optional[Callable] = None,
    ) -> "RDD":
        """Apply ``fn`` to each whole partition.

        ``batch_fn`` is the vectorised twin over the columnarised
        partition.
        """
        from repro.engine import transformations as t

        return t.MapPartitionsRDD(self, fn, compute_multiplier, batch_fn=batch_fn)

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs (no dedup), preserving partition counts."""
        from repro.engine import transformations as t

        return t.UnionRDD(self.context, [self, other])

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Deterministic Bernoulli sample of the records."""
        from repro.engine import transformations as t

        return t.SampledRDD(self, fraction, seed)

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        """Remove duplicate records (requires a shuffle)."""
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, b: a, num_partitions)
            .map(lambda kv: kv[0])
        )

    def key_by(self, fn: Callable[[Any], Any]) -> "RDD":
        """Turn records into ``(fn(record), record)`` pairs."""
        return self.map(lambda x: (fn(x), x))

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def map_values(
        self, fn: Callable[[Any], Any], batch_fn: Optional[Callable] = None
    ) -> "RDD":
        """Map over pair values, preserving keys and partitioning.

        ``batch_fn`` is a full ``ColumnarBatch -> ColumnarBatch`` twin of
        the *pair* transform (it sees keys too — preserving them is its
        contract, mirroring the row lambda below).
        """
        from repro.engine import transformations as t

        rdd = t.MappedRDD(self, lambda kv: (kv[0], fn(kv[1])), batch_fn=batch_fn)
        rdd.partitioner = self.partitioner
        return rdd

    def flat_map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        """Flat-map over pair values, preserving keys and partitioning."""
        from repro.engine import transformations as t

        rdd = t.FlatMappedRDD(self, lambda kv: [(kv[0], v) for v in fn(kv[1])])
        rdd.partitioner = self.partitioner
        return rdd

    # -- shuffles ----------------------------------------------------------
    def _default_partitions(self, num_partitions: Optional[int]) -> int:
        return num_partitions or self.num_partitions

    def combine_by_key(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """The general keyed aggregation primitive (with map-side combine)."""
        from repro.engine import transformations as t

        partitioner = HashPartitioner(self._default_partitions(num_partitions))
        return t.ShuffledRDD(
            self, partitioner, (create_combiner, merge_value, merge_combiners), map_side_combine=True
        )

    def reduce_by_key(self, fn: Callable[[Any, Any], Any], num_partitions: Optional[int] = None) -> "RDD":
        """Merge values per key with an associative function."""
        return self.combine_by_key(lambda v: v, fn, fn, num_partitions)

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        """Group values per key into lists (no map-side combine, as in Spark)."""
        return self.combine_by_key(
            lambda v: [v],
            lambda acc, v: acc + [v],
            lambda a, b: a + b,
            num_partitions,
        )

    def partition_by(self, partitioner: HashPartitioner) -> "RDD":
        """Repartition pair records by key without aggregation."""
        from repro.engine import transformations as t

        return t.ShuffledRDD(self, partitioner, aggregator=None)

    def repartition(self, num_partitions: int) -> "RDD":
        """Redistribute records evenly across ``num_partitions``.

        Records are keyed by their (partition, index) position so the
        redistribution is deterministic under recomputation.
        """
        from repro.engine import transformations as t

        indexed = t.PartitionIndexedRDD(self)
        shuffled = t.ShuffledRDD(indexed, HashPartitioner(num_partitions), aggregator=None)
        return shuffled.map(lambda kv: kv[1])

    def aggregate_by_key(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Aggregate pair values per key with a zero element.

        ``zero`` must be immutable (or treated as such by ``seq_fn``): it is
        shared across keys, exactly as in Spark.
        """
        return self.combine_by_key(
            lambda v: seq_fn(zero, v), seq_fn, comb_fn, num_partitions
        )

    def subtract(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Records of this RDD absent from ``other`` (keeps duplicates)."""

        def emit(kv):
            value, (mine, theirs) = kv
            return [] if theirs else [value] * len(mine)

        keyed_self = self.map(lambda x: (x, 1))
        keyed_other = other.map(lambda x: (x, 1))
        return keyed_self.cogroup(keyed_other, num_partitions).flat_map(emit)

    def intersection(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Distinct records present in both RDDs."""

        def emit(kv):
            value, (mine, theirs) = kv
            return [value] if mine and theirs else []

        keyed_self = self.map(lambda x: (x, 1))
        keyed_other = other.map(lambda x: (x, 1))
        return keyed_self.cogroup(keyed_other, num_partitions).flat_map(emit)

    def sort_by(
        self,
        key_fn: Callable[[Any], Any],
        ascending: bool = True,
        num_partitions: int = 1,
    ) -> "RDD":
        """Globally sorted records (single output partition by default).

        Note: unlike Spark's sampled range partitioner, multi-partition
        output here is sorted only *within* partitions.
        """
        shuffled = self.repartition(num_partitions)
        return shuffled.map_partitions(
            lambda records: sorted(records, key=key_fn, reverse=not ascending)
        )

    def zip_with_index(self) -> "RDD":
        """Pair each record with its global index.

        As in Spark, this triggers a job to learn partition sizes before the
        transformation is usable.
        """
        from repro.engine import transformations as t

        sizes = self.context.run_job(self, len)
        offsets = []
        total = 0
        for size in sizes:
            offsets.append(total)
            total += size
        return t.ZipWithIndexRDD(self, offsets)

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Group both RDDs' values per key into ``(key, (vs_self, vs_other))``."""
        from repro.engine import transformations as t

        partitioner = HashPartitioner(self._default_partitions(num_partitions))
        return t.CoGroupedRDD(self.context, [self, other], partitioner)

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Inner join on keys."""

        def emit(kv):
            _key, (left, right) = kv
            return [(kv[0], (lv, rv)) for lv in left for rv in right]

        joined = self.cogroup(other, num_partitions).flat_map(emit)
        return joined

    def left_outer_join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Left outer join; missing right values appear as None."""

        def emit(kv):
            key, (left, right) = kv
            if not right:
                return [(key, (lv, None)) for lv in left]
            return [(key, (lv, rv)) for lv in left for rv in right]

        return self.cogroup(other, num_partitions).flat_map(emit)

    # ------------------------------------------------------------------
    # Actions (eager — trigger a job)
    # ------------------------------------------------------------------
    def collect(self) -> List[Any]:
        """Materialise every record at the driver."""
        parts = self.context.run_job(self, lambda records: records)
        out: List[Any] = []
        for part in parts:
            out.extend(part)
        return out

    def count(self) -> int:
        """Number of records."""
        return sum(self.context.run_job(self, len))

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Reduce all records with an associative binary function."""
        parts = [p for p in self.context.run_job(self, lambda rs: rs) if p]
        partials = [functools.reduce(fn, p) for p in parts]
        if not partials:
            raise ValueError("reduce of an empty RDD")
        return functools.reduce(fn, partials)

    def fold(self, zero: Any, fn: Callable[[Any, Any], Any]) -> Any:
        """Fold with a zero element (applied per partition, then combined)."""
        partials = self.context.run_job(self, lambda rs: functools.reduce(fn, rs, zero))
        return functools.reduce(fn, partials, zero)

    def sum(self) -> Any:
        """Sum of the records."""
        return self.fold(0, operator.add)

    def take(self, n: int) -> List[Any]:
        """First ``n`` records in partition order."""
        if n <= 0:
            return []
        out: List[Any] = []
        for part in self.context.run_job(self, lambda rs: rs):
            out.extend(part)
            if len(out) >= n:
                break
        return out[:n]

    def first(self) -> Any:
        taken = self.take(1)
        if not taken:
            raise ValueError("first() on an empty RDD")
        return taken[0]

    def top(self, n: int, key: Optional[Callable[[Any], Any]] = None) -> List[Any]:
        """The ``n`` largest records (per-partition heaps merged at driver)."""
        import heapq

        if n <= 0:
            return []
        partials = self.context.run_job(
            self, lambda records: heapq.nlargest(n, records, key=key)
        )
        merged: List[Any] = []
        for part in partials:
            merged.extend(part)
        return heapq.nlargest(n, merged, key=key)

    def max(self) -> Any:
        """Largest record."""
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self) -> Any:
        """Smallest record."""
        return self.reduce(lambda a, b: a if a <= b else b)

    def mean(self) -> float:
        """Arithmetic mean of numeric records."""
        total, count = self.aggregate_stats()[:2]
        if count == 0:
            raise ValueError("mean of an empty RDD")
        return total / count

    def aggregate_stats(self) -> Tuple[float, int, float]:
        """``(sum, count, sum_of_squares)`` in one pass (Spark's StatCounter)."""

        def partial(records):
            s = c = sq = 0.0
            for x in records:
                s += x
                c += 1
                sq += x * x
            return s, int(c), sq

        total, count, squares = 0.0, 0, 0.0
        for s, c, sq in self.context.run_job(self, partial):
            total += s
            count += c
            squares += sq
        return total, count, squares

    def stdev(self) -> float:
        """Population standard deviation of numeric records."""
        total, count, squares = self.aggregate_stats()
        if count == 0:
            raise ValueError("stdev of an empty RDD")
        mean = total / count
        variance = max(0.0, squares / count - mean * mean)
        return variance ** 0.5

    def count_by_key(self) -> Dict[Any, int]:
        """Count records per key (pair RDDs)."""

        def partial(records):
            counts: Dict[Any, int] = {}
            for key, _value in records:
                counts[key] = counts.get(key, 0) + 1
            return counts

        merged: Dict[Any, int] = {}
        for counts in self.context.run_job(self, partial):
            for key, c in counts.items():
                merged[key] = merged.get(key, 0) + c
        return merged

    def lookup(self, key: Any) -> List[Any]:
        """All values for ``key`` (pair RDDs)."""
        return [v for k, v in self.collect() if k == key]

    # ------------------------------------------------------------------
    def __reduce__(self):
        """RDDs never cross a process boundary — refuse to pickle.

        A task kernel that (transitively) captures an RDD would otherwise
        drag the whole driver object graph — context, cluster, event queue —
        into its blob.  Executor-plane closures must capture plain data and
        pure functions only: use ``fused_kernel()`` / ``merge_kernel()`` /
        ``source_kernel()``, which extract exactly what the transform needs.
        """
        raise TypeError(
            f"{type(self).__name__} (id={self.rdd_id}) is driver-side state and "
            "cannot be pickled; ship work through fused_kernel()/merge_kernel()/"
            "source_kernel() closures instead"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}(id={self.rdd_id}, partitions={self.num_partitions})"
