"""RDD dependencies: the edges of the lineage graph.

Narrow dependencies (each child partition reads a bounded set of parent
partitions) are pipelined within a task; shuffle dependencies are
materialisation barriers that split the lineage into stages, exactly as in
Spark's DAG scheduler.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.engine.partitioner import HashPartitioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rdd import RDD

_shuffle_ids = itertools.count()


class Dependency:
    """Base class; holds the parent RDD."""

    def __init__(self, rdd: "RDD"):
        self.rdd = rdd


class NarrowDependency(Dependency):
    """A dependency where child partition ``p`` needs specific parent partitions."""

    def parents_of(self, partition: int) -> List[int]:
        """Parent partition indices required by child partition ``partition``."""
        raise NotImplementedError


class OneToOneDependency(NarrowDependency):
    """Child partition ``p`` reads exactly parent partition ``p`` (map/filter)."""

    def parents_of(self, partition: int) -> List[int]:
        return [partition]


class RangeDependency(NarrowDependency):
    """A contiguous slice mapping, used by union.

    Child partitions ``[out_start, out_start + length)`` map one-to-one onto
    parent partitions ``[in_start, in_start + length)``.
    """

    def __init__(self, rdd: "RDD", in_start: int, out_start: int, length: int):
        super().__init__(rdd)
        self.in_start = in_start
        self.out_start = out_start
        self.length = length

    def parents_of(self, partition: int) -> List[int]:
        if self.out_start <= partition < self.out_start + self.length:
            return [partition - self.out_start + self.in_start]
        return []


class ShuffleDependency(Dependency):
    """A wide dependency: every child partition reads all parent partitions.

    Attributes:
        partitioner: assigns each map-side record's key to a reduce bucket.
        map_side_combine: when an aggregator is present, values are combined
            on the map side before shuffle write (reduceByKey semantics).
        aggregator: (create_combiner, merge_value, merge_combiners) triple, or
            None for a raw repartition (partitionBy/groupByKey handles
            grouping reduce-side).
    """

    def __init__(
        self,
        rdd: "RDD",
        partitioner: HashPartitioner,
        aggregator: Optional[Tuple[Callable, Callable, Callable]] = None,
        map_side_combine: bool = False,
    ):
        super().__init__(rdd)
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.map_side_combine = map_side_combine and aggregator is not None
        self.shuffle_id = next(_shuffle_ids)

    @property
    def num_map_partitions(self) -> int:
        """How many map tasks feed this shuffle."""
        return self.rdd.num_partitions

    @property
    def num_reduce_partitions(self) -> int:
        return self.partitioner.num_partitions
