"""Checkpoint registry: partition-level RDD checkpoints in the DFS.

Flint modifies Spark to checkpoint at *partition* granularity (§4): as each
task finishes a partition of a marked RDD, an asynchronous write task ships
it to HDFS.  The registry tracks which partitions are durably written, serves
them during recomputation, and garbage-collects checkpoints made unreachable
when a descendant RDD is checkpointed (§4, "Checkpoint Garbage Collection").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.engine import lineage
from repro.engine.profiling import SectionTimers, profiling_enabled_by_env
from repro.obs import SpanEvent
from repro.storage.dfs import DistributedFileSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rdd import RDD


class CheckpointWriteError(RuntimeError):
    """A durable checkpoint write failed (injected DFS I/O fault)."""

    def __init__(self, rdd_id: int, partition: int):
        super().__init__(f"checkpoint write failed for rdd {rdd_id} partition {partition}")
        self.rdd_id = rdd_id
        self.partition = partition


class CheckpointRegistry:
    """Driver-side record of checkpointed RDD partitions."""

    def __init__(self, dfs: DistributedFileSystem, obs=None):
        self.dfs = dfs
        #: Observability hook (attribute-wired by the engine context);
        #: None keeps the write/GC paths branch-free.
        self.obs = obs
        self._marked: Set[int] = set()
        self._written: Dict[int, Set[int]] = {}
        self._num_partitions: Dict[int, int] = {}
        self.bytes_written = 0
        self.partitions_written = 0
        self.gc_deleted = 0
        #: Callbacks ``(rdd_id, partition | None, available: bool)`` fired
        #: when a checkpoint lands or is deleted (partition None = whole
        #: RDD).  The incremental scheduler hooks readiness invalidation in.
        self._listeners: List[Callable[[int, Optional[int], bool], None]] = []
        #: Fault-injection point: consulted at the top of ``record_write``;
        #: returning True makes the write raise :class:`CheckpointWriteError`
        #: before any state mutates (the scheduler re-queues the task).
        self.write_failure_hook: Optional[Callable[[int, int], bool]] = None
        #: ``FLINT_PROFILE=1`` section timing for the write/GC paths
        #: (see :meth:`FlintContext.profile_report`).
        self.timers = SectionTimers(enabled=profiling_enabled_by_env())

    def add_listener(self, listener: Callable[[int, Optional[int], bool], None]) -> None:
        self._listeners.append(listener)

    def _notify(self, rdd_id: int, partition: Optional[int], available: bool) -> None:
        for listener in self._listeners:
            listener(rdd_id, partition, available)

    @staticmethod
    def path_for(rdd_id: int, partition: int) -> str:
        return f"ckpt/rdd_{rdd_id}/part_{partition}"

    @staticmethod
    def rdd_prefix(rdd_id: int) -> str:
        return f"ckpt/rdd_{rdd_id}/"

    # ------------------------------------------------------------------
    def mark(self, rdd: "RDD") -> None:
        """Flag an RDD so its partitions are checkpointed as they appear."""
        self._marked.add(rdd.rdd_id)
        self._num_partitions[rdd.rdd_id] = rdd.num_partitions

    def unmark(self, rdd: "RDD") -> None:
        self._marked.discard(rdd.rdd_id)

    def is_marked(self, rdd: "RDD") -> bool:
        return rdd.rdd_id in self._marked

    def has_partition(self, rdd: "RDD", partition: int) -> bool:
        """True when this partition's checkpoint is durably in the DFS."""
        return self.dfs.exists(self.path_for(rdd.rdd_id, partition))

    def is_fully_checkpointed(self, rdd: "RDD") -> bool:
        written = self._written.get(rdd.rdd_id, set())
        return len(written) >= rdd.num_partitions and all(
            self.dfs.exists(self.path_for(rdd.rdd_id, p)) for p in range(rdd.num_partitions)
        )

    def record_write(self, rdd: "RDD", partition: int, data, nbytes: int, t: float) -> None:
        """Store one partition durably (called when the write task finishes).

        Raises:
            CheckpointWriteError: when the installed fault hook fails the
                write; nothing is mutated in that case.
        """
        with self.timers.section("checkpoint_write"):
            if self.write_failure_hook is not None and self.write_failure_hook(
                rdd.rdd_id, partition
            ):
                raise CheckpointWriteError(rdd.rdd_id, partition)
            self.dfs.put(self.path_for(rdd.rdd_id, partition), data, nbytes, t)
            self._written.setdefault(rdd.rdd_id, set()).add(partition)
            self._num_partitions.setdefault(rdd.rdd_id, rdd.num_partitions)
            self.bytes_written += nbytes
            self.partitions_written += 1
            obs = self.obs
            if obs is not None and obs.enabled:
                obs.metrics.inc("checkpoint.bytes_written", nbytes)
                obs.metrics.inc("checkpoint.partitions_written")
                obs.bus.emit(SpanEvent(
                    kind="checkpoint-write",
                    name=f"ckpt rdd{rdd.rdd_id}[{partition}]",
                    start=t,
                    status="instant",
                    attrs={"rdd": rdd.rdd_id, "partition": partition, "nbytes": nbytes},
                ))
            self._notify(rdd.rdd_id, partition, True)

    def discard_partition(self, rdd: "RDD", partition: int) -> bool:
        """Delete one partition's checkpoint (system-snapshot epoch resets).

        Routing deletes through the registry keeps change listeners (and so
        the scheduler's cached readiness decisions) consistent with the DFS.
        """
        deleted = self.dfs.delete(self.path_for(rdd.rdd_id, partition))
        if deleted:
            written = self._written.get(rdd.rdd_id)
            if written is not None:
                written.discard(partition)
            self._notify(rdd.rdd_id, partition, False)
        return deleted

    def read_partition(self, rdd: "RDD", partition: int):
        """Fetch a checkpointed partition's records."""
        return self.dfs.get(self.path_for(rdd.rdd_id, partition))

    def peek_partition(self, rdd: "RDD", partition: int):
        """Counter-free read of a checkpointed partition (or None).

        Used by the executor plane to stage payloads; the simulated read
        (DFS latency charge + read accounting) replays at consume time.
        """
        return self.dfs.peek(self.path_for(rdd.rdd_id, partition))

    def partition_nbytes(self, rdd: "RDD", partition: int) -> int:
        return self.dfs.size_of(self.path_for(rdd.rdd_id, partition))

    def written_partitions(self) -> Dict[int, Set[int]]:
        """Snapshot of the registry's record: ``rdd_id -> written partitions``.

        The invariant checker compares this against what the DFS actually
        holds, so the copy is deliberate — callers must not see (or mutate)
        live internals.
        """
        return {rid: set(parts) for rid, parts in self._written.items() if parts}

    def expected_partitions(self, rdd_id: int) -> Optional[int]:
        """Partition count recorded for an RDD, or None if never seen."""
        return self._num_partitions.get(rdd_id)

    # ------------------------------------------------------------------
    def checkpointed_rdd_ids(self) -> List[int]:
        """Ids of RDDs with at least one durable partition."""
        return sorted(
            rid
            for rid, parts in self._written.items()
            if any(self.dfs.exists(self.path_for(rid, p)) for p in parts)
        )

    def gc_after_checkpoint(self, rdd: "RDD") -> int:
        """Delete ancestor checkpoints made redundant by checkpointing ``rdd``.

        Checkpointing an RDD terminates its lineage: ancestors can no longer
        be reached through it, so their checkpoints (if any) are garbage once
        this RDD is fully durable.  Returns the number of partitions deleted.
        """
        if not self.is_fully_checkpointed(rdd):
            return 0
        deleted = 0
        with self.timers.section("checkpoint_gc"):
            for ancestor in lineage.ancestors(rdd):
                # A persisted ancestor is still *live*: the program holds a
                # reference and may branch new lineage from it (KMeans keeps
                # iterating over its cached points), so its checkpoint is
                # not redundant yet.  Unpersist makes it collectable.
                if ancestor.persisted:
                    continue
                if ancestor.rdd_id in self._written:
                    deleted += self.dfs.delete_prefix(self.rdd_prefix(ancestor.rdd_id))
                    self._written.pop(ancestor.rdd_id, None)
                    self._marked.discard(ancestor.rdd_id)
                    self._notify(ancestor.rdd_id, None, False)
            self.gc_deleted += deleted
            obs = self.obs
            if deleted and obs is not None and obs.enabled:
                obs.metrics.inc("checkpoint.gc_deleted", deleted)
                obs.bus.emit(SpanEvent(
                    kind="checkpoint-gc",
                    name=f"gc after rdd{rdd.rdd_id}",
                    start=obs.now(),
                    status="instant",
                    attrs={"rdd": rdd.rdd_id, "deleted": deleted},
                ))
        return deleted

    @property
    def stored_bytes(self) -> int:
        """Bytes of checkpoints currently retained in the DFS."""
        return sum(
            nbytes for path, nbytes in self.dfs.items() if path.startswith("ckpt/")
        )
