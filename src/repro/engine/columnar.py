"""Columnar partition representation for the fused data plane.

``FLINT_COLUMNAR`` (default on) lets the fused-chain compiler lower a
narrow chain to *vectorised batch kernels* operating on arrays-of-columns
instead of streaming records one at a time through Python closures.  The
representation lives strictly *inside* one fused-chain execution:

- **Plane boundary rule.** Everything observable — block-manager puts,
  checkpoint payloads, shuffle buckets, memoised partitions, action results
  — is always *row* form (plain Python lists of records).  A chain converts
  rows → columns on entry, runs its batch kernels, and converts back on
  exit.  The block manager enforces this (it refuses ColumnarBatch
  payloads).
- **Bit-identity rule.** ``to_records(from_records(rows))`` must equal
  ``rows`` exactly — same Python types (``int`` stays ``int``, ``float``
  stays ``float``), same values, same nesting.  ``from_records`` therefore
  *refuses* (returns None) anything it cannot round-trip: empty partitions,
  ragged tuples, mixed-type columns, bools, ints outside int64, and any
  non-numeric leaf.  Refusal is never an error — the chain silently falls
  back to the row plane.

A batch is a schema tree plus a column tree mirroring it:

- scalar leaf ``"i8"`` / ``"f8"`` → one NumPy array (int64 / float64);
- ``("tuple", (child, ...))`` → a tuple of child columns (records are
  fixed-arity tuples);
- ``("list", child)`` → ragged column: ``(counts, child_column)`` where
  ``counts[j]`` is record ``j``'s list length and the child column holds
  the concatenated elements.  Lists nest (PageRank's cogrouped adjacency
  lists are list-of-list-of-int).

Batch kernels may raise :class:`ColumnarUnsupported` when the runtime
schema does not fit them; the runtime counts a fallback and re-runs the
chain on the row plane, so a kernel only ever has to be *correct or
refuse*, never general.
"""

from __future__ import annotations

import os
from itertools import chain as _chain
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ColumnarBatch",
    "ColumnarUnsupported",
    "columnar_enabled_by_env",
    "from_records",
]


def columnar_enabled_by_env() -> bool:
    """``FLINT_COLUMNAR`` parsed like ``FLINT_FUSION``: default on."""
    return os.environ.get("FLINT_COLUMNAR", "on").lower() not in (
        "off", "0", "false",
    )


class ColumnarUnsupported(Exception):
    """A batch kernel cannot apply to this batch's schema.

    Raised *by kernels* (never by the conversion layer) when the runtime
    schema differs from the shape they were written for.  The runtime
    treats it exactly like a conversion refusal: count a fallback, run the
    chain on the row plane.
    """


class _Refuse(Exception):
    """Internal: these records cannot be columnarised (not an error)."""


#: Singleton sets for the C-speed exact-type scans in :func:`_build`.
_INT_ONLY = frozenset((int,))
_FLOAT_ONLY = frozenset((float,))
_TUPLE_ONLY = frozenset((tuple,))
_LIST_ONLY = frozenset((list,))


def _build(values: List[Any]) -> Tuple[Any, Any]:
    """Infer ``(schema, column)`` for one field across all records.

    Validates exact Python types as it goes — ``type(v) is int`` (which
    excludes ``bool``), ``type(v) is float`` — so the round trip can
    rebuild records bit-identically.  Raises :class:`_Refuse` on anything
    mixed, ragged, or non-numeric.
    """
    if not values:
        # A vacuous level (e.g. every list at this depth is empty): no
        # elements exist, so the leaf dtype is unobservable — any
        # placeholder round-trips exactly.
        return "f8", np.empty(0, dtype=np.float64)
    # All structural scans below run in C (``map`` feeding a set method):
    # the exact-type requirement — ``type(v) is int``, which excludes
    # ``bool`` and int subclasses — is what makes the ``np.array`` casts
    # coercion-free, so the checks must see every element.
    t0 = type(values[0])
    if t0 is int:
        if not _INT_ONLY.issuperset(map(type, values)):
            raise _Refuse
        try:
            return "i8", np.array(values, dtype=np.int64)
        except OverflowError as exc:  # int outside int64
            raise _Refuse from exc
    if t0 is float:
        if not _FLOAT_ONLY.issuperset(map(type, values)):
            raise _Refuse
        return "f8", np.array(values, dtype=np.float64)
    if t0 is tuple:
        arity = len(values[0])
        if not _TUPLE_ONLY.issuperset(map(type, values)):
            raise _Refuse
        if set(map(len, values)) != {arity}:
            raise _Refuse  # ragged arity
        children = [_build([v[i] for v in values]) for i in range(arity)]
        return (
            ("tuple", tuple(schema for schema, _ in children)),
            tuple(column for _, column in children),
        )
    if t0 is list:
        if not _LIST_ONLY.issuperset(map(type, values)):
            raise _Refuse
        counts = np.fromiter(map(len, values), dtype=np.int64, count=len(values))
        child_schema, child_column = _build(list(_chain.from_iterable(values)))
        return ("list", child_schema), (counts, child_column)
    raise _Refuse


def _emit(schema: Any, column: Any, n: int) -> List[Any]:
    """Rebuild the Python values of one field (inverse of :func:`_build`).

    ``ndarray.tolist`` already yields native ``int``/``float`` objects, so
    types round-trip exactly.
    """
    if schema == "i8" or schema == "f8":
        return column.tolist()
    if schema[0] == "tuple":
        parts = [
            _emit(child, col, n) for child, col in zip(schema[1], column)
        ]
        if not parts:
            return [() for _ in range(n)]
        return list(zip(*parts))
    counts, child_column = column
    flat = _emit(schema[1], child_column, int(counts.sum()))
    out: List[Any] = []
    start = 0
    for count in counts.tolist():
        out.append(flat[start : start + count])
        start += count
    return out


def _select(schema: Any, column: Any, mask: np.ndarray) -> Any:
    """Row subset of one column tree by boolean mask (order preserved)."""
    if schema == "i8" or schema == "f8":
        return column[mask]
    if schema[0] == "tuple":
        return tuple(
            _select(child, col, mask) for child, col in zip(schema[1], column)
        )
    counts, child_column = column
    child_mask = np.repeat(mask, counts)
    return counts[mask], _select(schema[1], child_column, child_mask)


class ColumnarBatch:
    """One partition's records as a schema tree of NumPy columns."""

    __slots__ = ("schema", "data", "length")

    def __init__(self, schema: Any, data: Any, length: int):
        self.schema = schema
        self.data = data
        self.length = int(length)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarBatch(schema={self.schema!r}, length={self.length})"

    def require(self, schema: Any) -> Any:
        """The column tree, if the schema matches; else kernel fallback."""
        if self.schema != schema:
            raise ColumnarUnsupported(
                f"batch schema {self.schema!r} != expected {schema!r}"
            )
        return self.data

    def select(self, mask: np.ndarray) -> "ColumnarBatch":
        """Keep records where ``mask`` is True, preserving order."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self.length,):
            raise ColumnarUnsupported(
                f"selection mask must be bool[{self.length}], "
                f"got {mask.dtype} {mask.shape}"
            )
        return ColumnarBatch(
            self.schema, _select(self.schema, self.data, mask), int(mask.sum())
        )

    def to_records(self) -> List[Any]:
        """Rows back out — bit-identical to what ``from_records`` consumed."""
        return _emit(self.schema, self.data, self.length)


def from_records(records: Sequence[Any]) -> Optional[ColumnarBatch]:
    """Columnarise a partition, or None when it must stay on the row plane.

    Refusals (all return None, never raise): empty input; mixed-type or
    ragged-arity columns; ``bool`` leaves (``bool`` is an ``int`` subclass
    but must round-trip as ``bool``); ints outside int64; any non-numeric
    leaf (strings, dicts, None, objects).
    """
    if type(records) is not list:
        records = list(records)
    if not records:
        return None
    try:
        schema, data = _build(records)
    except _Refuse:
        return None
    return ColumnarBatch(schema, data, len(records))
