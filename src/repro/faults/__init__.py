"""Deterministic fault injection, invariant checking, and chaos sweeps.

The subsystem has four layers:

- :mod:`repro.faults.plan` — the ``FaultPlan`` spec DSL (one replayable line
  per failure scenario);
- :mod:`repro.faults.injector` — executes a plan through the engine's
  injection points;
- :mod:`repro.faults.invariants` — the post-fault consistency checker;
- :mod:`repro.faults.harness` / :mod:`repro.faults.chaos` — reference-vs-
  faulted run orchestration and the seeded chaos driver CI runs.

Set ``FLINT_FAULT_PLAN=<spec>`` to inject a plan into any
:class:`~repro.engine.context.FlintContext` at construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.harness import (
    FaultRunReport,
    build_fault_context,
    run_reference,
    run_with_plan,
)
from repro.faults.injector import FaultInjector, FiredFault
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import FaultClause, FaultPlan, FaultPlanError, Trigger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext

__all__ = [
    "FaultClause",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRunReport",
    "FiredFault",
    "InvariantChecker",
    "InvariantViolation",
    "Trigger",
    "build_fault_context",
    "install_plan",
    "run_reference",
    "run_with_plan",
]


def install_plan(context: "FlintContext", spec: str) -> FaultInjector:
    """Parse ``spec`` and install its injector on ``context``.

    This is the ``FLINT_FAULT_PLAN`` entry point the context constructor
    calls; tests and tools can use it directly.
    """
    return FaultInjector(FaultPlan.parse(spec)).install(context)
