"""Run a workload under a fault plan and prove the engine recovered.

``run_with_plan`` executes one workload twice on identical deterministic
clusters: once failure-free (the reference) and once with the plan's faults
injected.  It asserts the faulted run's results are bit-identical to the
reference, runs the :class:`InvariantChecker` after every injected fault and
at job end, and reports everything in a :class:`FaultRunReport`.

A workload here is anything exposing ``load()`` (cache inputs) and ``run()``
(execute, returning a comparable result) — the same protocol the figure
benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Union

from repro.cluster.cluster import Cluster
from repro.cluster.environment import Environment
from repro.engine.context import FlintContext
from repro.engine.scheduler import EngineError
from repro.faults.injector import FaultInjector, FiredFault
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import FaultPlan
from repro.market.market import OnDemandMarket
from repro.market.provider import CloudProvider
from repro.obs import Observability

#: Non-revocable substrate: every failure comes from the plan, so the same
#: spec replays the same scenario event-for-event.
_MARKET_ID = "od/r3.large"
_PRICE = 0.175


def build_fault_context(
    num_workers: int = 6, seed: int = 0, mode: str = "incremental", trace: bool = False
) -> FlintContext:
    """A deterministic on-demand cluster for one fault-injection run.

    ``trace=True`` force-enables the observability layer (regardless of
    ``FLINT_TRACE``) so the run's event log can be attached to its report.
    """
    provider = CloudProvider([OnDemandMarket(_MARKET_ID, _PRICE)])
    env = Environment(provider, seed=seed)
    cluster = Cluster(env)
    obs = Observability(enabled=True) if trace else None
    ctx = FlintContext(env, cluster, scheduler_mode=mode, obs=obs)
    cluster.launch(_MARKET_ID, bid=_PRICE, count=num_workers)
    return ctx


@dataclass
class FaultRunReport:
    """Everything needed to judge (and replay) one fault-injection run."""

    spec: str
    mode: str
    results_match: bool
    faults_fired: List[FiredFault] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    checks_run: int = 0
    runtime: float = 0.0
    reference_runtime: float = 0.0
    results: Any = None
    reference_results: Any = None
    #: Flat event rows (``SpanEvent.to_dict``) from the faulted run when it
    #: was traced; empty otherwise.  Chaos failure reports carry these so a
    #: failing plan ships with its full timeline.
    event_log: List[dict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.results_match and not self.violations


def run_reference(
    workload_factory: Callable[[FlintContext], Any],
    mode: str = "incremental",
    num_workers: int = 6,
    seed: int = 0,
    checkpointing: bool = True,
    mttf: float = 1800.0,
) -> tuple:
    """The failure-free run; returns ``(results, simulated_runtime)``."""
    ctx = build_fault_context(num_workers, seed, mode)
    manager = _attach_manager(ctx, checkpointing, mttf)
    workload = workload_factory(ctx)
    workload.load()
    t0 = ctx.now
    results = workload.run()
    runtime = ctx.now - t0
    if manager is not None:
        manager.stop()
    return results, runtime


def _attach_manager(ctx: FlintContext, checkpointing: bool, mttf: float):
    if not checkpointing:
        return None
    from repro.core.ftmanager import FaultToleranceManager

    manager = FaultToleranceManager(ctx, lambda: mttf, min_tau=30.0)
    manager.start()
    return manager


def run_with_plan(
    workload_factory: Callable[[FlintContext], Any],
    plan: Union[str, FaultPlan],
    mode: str = "incremental",
    num_workers: int = 6,
    seed: int = 0,
    checkpointing: bool = True,
    mttf: float = 1800.0,
    reference: Optional[tuple] = None,
    raise_on_violation: bool = True,
    trace: bool = False,
) -> FaultRunReport:
    """Execute ``workload_factory`` under ``plan`` and verify every invariant.

    Args:
        plan: a spec string or parsed :class:`FaultPlan`.
        mode: scheduler mode for both runs (``FLINT_SCHEDULER`` values).
        checkpointing: attach the Flint fault-tolerance manager (fixed MTTF)
            so checkpoint-targeted faults have checkpoints to hit.
        reference: optional precomputed ``(results, runtime)`` — the chaos
            driver shares one failure-free run across hundreds of plans.
        raise_on_violation: raise :class:`InvariantViolation` on any failed
            invariant or result divergence; otherwise report and return.
        trace: force-enable tracing on the faulted run and attach its event
            log to the report (the chaos driver reruns failures this way).
    """
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    if reference is None:
        reference = run_reference(
            workload_factory, mode, num_workers, seed, checkpointing, mttf
        )
    ref_results, ref_runtime = reference

    ctx = build_fault_context(num_workers, seed, mode, trace=trace)
    checker = InvariantChecker(ctx)
    injector = FaultInjector(plan, checker).install(ctx)
    manager = _attach_manager(ctx, checkpointing, mttf)
    workload = workload_factory(ctx)
    results = None
    results_match = False
    runtime = 0.0
    try:
        workload.load()
        t0 = ctx.now
        results = workload.run()
        runtime = ctx.now - t0
    except EngineError as exc:
        # Deadlock means some task became permanently unschedulable — the
        # "no task permanently unschedulable" invariant, surfaced by the
        # scheduler itself.
        checker.violations.append(f"job-abort: task permanently unschedulable ({exc})")
    else:
        results_match = results == ref_results
        if not results_match:
            checker.violations.append(
                "job-end: results diverged from the failure-free run"
            )
    finally:
        if manager is not None:
            manager.stop()
    checker.check("job-end")

    report = FaultRunReport(
        spec=str(plan),
        mode=mode,
        results_match=results_match,
        faults_fired=injector.fired,
        violations=checker.violations,
        checks_run=checker.checks_run,
        runtime=runtime,
        reference_runtime=ref_runtime,
        results=results,
        reference_results=ref_results,
        event_log=[e.to_dict() for e in ctx.obs.bus.events] if ctx.obs.enabled else [],
    )
    if raise_on_violation and report.violations:
        raise InvariantViolation(
            [f"plan {report.spec!r} mode={mode}"] + report.violations
        )
    return report
