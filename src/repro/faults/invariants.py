"""Engine-wide consistency invariants, checked after every injected fault.

The checker is read-only: it cross-examines the driver-side trackers (block
location index, shuffle missing-sets, checkpoint registry, scheduler books)
against ground truth (per-worker block managers, local disks, the DFS) and
records every discrepancy as a violation string.  It subscribes to the
checkpoint registry's change feed so it can tell a *notified* checkpoint
deletion (GC, epoch discard — legal) from a silent one (a bug).

Invariants:

1. **Block index truth** — every indexed block exists on its live worker
   (no ghosts), every cached block is indexed (no leaks), and dead workers
   have no index entries.
2. **Shuffle missing-set truth** — the maintained missing-map set of every
   shuffle equals a fresh per-map probe of worker disks.
3. **Checkpoint registry truth** — every partition the registry claims is
   durable actually exists in the DFS, and the DFS holds exactly the
   checkpoints the registry announced (no silent appearance or loss).
4. **Checkpoint frontier monotonicity** — once an RDD is fully
   checkpointed it stays durable until a *notified* GC or discard removes
   it; the frontier never silently regresses.
5. **Scheduler books** — no task is running on a dead worker, per-worker
   busy counts equal the running-task census and never exceed slots, and
   nothing queued for checkpointing is simultaneously running.
6. **Job books** — no task runs on behalf of a retired or unknown job, and
   per-job / per-pool running-task counters equal the running census.
7. **Block ownership** — every cached RDD block belongs to a registered,
   still-persisted RDD: a finished or abandoned job may not leak blocks of
   unpersisted datasets into the shared cache.
8. **Trace books** (active only when tracing is enabled) — the event bus's
   completed/lost task spans reconcile *exactly* with the scheduler's own
   counters: totals, per-kind counts, per-pool completions, and per-job
   completions all agree with the books the scheduler keeps regardless of
   tracing.  Observation must never drift from the thing observed.

Result equivalence with the failure-free run (the sixth invariant) is
enforced by :mod:`repro.faults.harness`, which owns both runs.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.engine.block_index import parse_block_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext


class InvariantViolation(AssertionError):
    """One or more engine invariants failed under fault injection."""

    def __init__(self, violations: List[str]):
        super().__init__(
            f"{len(violations)} invariant violation(s):\n  " + "\n  ".join(violations)
        )
        self.violations = list(violations)


def _parse_ckpt_path(path: str) -> Optional[Tuple[int, int]]:
    """``ckpt/rdd_<id>/part_<p>`` -> ``(id, p)``, else None."""
    parts = path.split("/")
    if len(parts) != 3 or parts[0] != "ckpt":
        return None
    try:
        return int(parts[1][len("rdd_"):]), int(parts[2][len("part_"):])
    except ValueError:
        return None


class InvariantChecker:
    """Cross-checks one context's trackers against ground truth."""

    def __init__(self, ctx: "FlintContext"):
        self.ctx = ctx
        self.violations: List[str] = []
        self.checks_run = 0
        #: Checkpoints the registry has *announced* as durable and not yet
        #: announced as deleted — the notified view of the DFS.
        self._ckpt_live: Set[Tuple[int, int]] = set()
        #: RDD ids whose checkpoints were removed via a notified whole-RDD
        #: GC or a notified partition discard (legal frontier regressions).
        self._ckpt_removed: Set[int] = set()
        self._fully_seen: Set[int] = set()
        ctx.checkpoints.add_listener(self._on_checkpoint_event)

    # ------------------------------------------------------------------
    def _on_checkpoint_event(self, rdd_id: int, partition, available: bool) -> None:
        if available:
            self._ckpt_live.add((rdd_id, partition))
            return
        if partition is None:
            self._ckpt_live = {(r, p) for r, p in self._ckpt_live if r != rdd_id}
        else:
            self._ckpt_live.discard((rdd_id, partition))
        self._ckpt_removed.add(rdd_id)

    # ------------------------------------------------------------------
    def check(self, label: str = "") -> List[str]:
        """Run every invariant; returns (and accumulates) new violations."""
        self.checks_run += 1
        found: List[str] = []
        found.extend(self._check_block_index())
        found.extend(self._check_shuffle_truth())
        found.extend(self._check_checkpoints())
        found.extend(self._check_scheduler_books())
        found.extend(self._check_job_books())
        found.extend(self._check_block_ownership())
        found.extend(self._check_trace_books())
        if label:
            found = [f"{label}: {v}" for v in found]
        self.violations.extend(found)
        return found

    def raise_if_violated(self) -> None:
        if self.violations:
            raise InvariantViolation(self.violations)

    # ------------------------------------------------------------------
    def _check_block_index(self) -> List[str]:
        out: List[str] = []
        index = self.ctx.block_index
        spill_prefix = "spill/"
        for worker in self.ctx.cluster.workers.values():
            indexed = set(index.blocks_on(worker.worker_id))
            if not worker.alive:
                for block_id in sorted(indexed):
                    out.append(
                        f"ghost block {block_id!r} indexed on dead worker {worker.worker_id}"
                    )
                continue
            manager = worker.block_manager
            if manager is None:
                for block_id in sorted(indexed):
                    out.append(
                        f"block {block_id!r} indexed on worker {worker.worker_id} "
                        "which has no block manager"
                    )
                continue
            actual = set(manager.memory_block_ids())
            actual.update(
                key[len(spill_prefix):]
                for key in worker.local_disk.keys()
                if key.startswith(spill_prefix)
            )
            for block_id in sorted(indexed - actual):
                out.append(
                    f"ghost block {block_id!r}: indexed on live worker "
                    f"{worker.worker_id} but absent from its store"
                )
            for block_id in sorted(actual - indexed):
                out.append(
                    f"leaked block {block_id!r}: cached on worker "
                    f"{worker.worker_id} but missing from the location index"
                )
        return out

    def _check_shuffle_truth(self) -> List[str]:
        out: List[str] = []
        sm = self.ctx.shuffle_manager
        for shuffle_id, num_maps in sm.tracked_shuffles():
            maintained = sm.missing_set(shuffle_id)
            probed = {
                m for m in range(num_maps) if not sm.has_map_output(shuffle_id, m)
            }
            if maintained != probed:
                phantom = sorted(maintained - probed)
                stale = sorted(probed - maintained)
                detail = []
                if phantom:
                    detail.append(f"marked missing but present: {phantom}")
                if stale:
                    detail.append(f"lost but not marked missing: {stale}")
                out.append(
                    f"shuffle {shuffle_id} missing-set untruthful ({'; '.join(detail)})"
                )
        return out

    def _check_checkpoints(self) -> List[str]:
        out: List[str] = []
        registry = self.ctx.checkpoints
        dfs = self.ctx.env.dfs
        written = registry.written_partitions()
        for rdd_id, parts in sorted(written.items()):
            for partition in sorted(parts):
                if not dfs.exists(registry.path_for(rdd_id, partition)):
                    out.append(
                        f"checkpoint registry lists rdd {rdd_id} partition "
                        f"{partition} but the DFS does not hold it"
                    )
        # The notified view must match the DFS exactly: checkpoints may only
        # appear via record_write and disappear via a notified deletion.
        in_dfs = {
            parsed
            for path, _nbytes in dfs.items()
            if (parsed := _parse_ckpt_path(path)) is not None
        }
        for rdd_id, partition in sorted(self._ckpt_live - in_dfs):
            out.append(
                f"checkpoint rdd {rdd_id} partition {partition} vanished from "
                "the DFS without a registry deletion notification"
            )
        for rdd_id, partition in sorted(in_dfs - self._ckpt_live):
            out.append(
                f"checkpoint rdd {rdd_id} partition {partition} is in the DFS "
                "but was never announced by the registry"
            )
        # Frontier monotonicity: a fully-checkpointed RDD may only leave the
        # frontier through a notified GC/discard.
        fully_now = set()
        for rdd_id, parts in written.items():
            expected = registry.expected_partitions(rdd_id)
            if expected is not None and len(parts) >= expected:
                fully_now.add(rdd_id)
        for rdd_id in sorted(self._fully_seen - fully_now - self._ckpt_removed):
            out.append(
                f"checkpoint frontier regressed: rdd {rdd_id} was fully "
                "checkpointed but silently lost partitions"
            )
        self._fully_seen |= fully_now
        return out

    def _check_scheduler_books(self) -> List[str]:
        out: List[str] = []
        scheduler = self.ctx.scheduler
        workers = self.ctx.cluster.workers
        census: Counter = Counter()
        for key, running in scheduler.running.items():
            census[running.worker_id] += 1
            worker = workers.get(running.worker_id)
            if worker is None or not worker.alive:
                out.append(
                    f"task {key} still booked as running on dead worker "
                    f"{running.worker_id}"
                )
        for worker_id, busy in scheduler.busy.items():
            worker = workers.get(worker_id)
            if worker is None or not worker.alive:
                # A zero entry for a deliberately terminated worker is inert;
                # a non-zero one means lost tasks were never cleaned up.
                if busy != 0:
                    out.append(f"busy count {busy} retained for dead worker {worker_id}")
                continue
            if busy != census.get(worker_id, 0):
                out.append(
                    f"worker {worker_id} busy count {busy} != "
                    f"{census.get(worker_id, 0)} running tasks"
                )
            if not 0 <= busy <= worker.slots:
                out.append(
                    f"worker {worker_id} busy count {busy} outside [0, {worker.slots}]"
                )
        for key in scheduler._checkpoint_queue:
            if key in scheduler.running:
                out.append(f"checkpoint task {key} is both queued and running")
        return out

    def _check_job_books(self) -> List[str]:
        """Per-job and per-pool slot accounting under multiplexed jobs."""
        out: List[str] = []
        scheduler = self.ctx.scheduler
        jobs = scheduler._jobs
        job_census: Counter = Counter()
        pool_census: Counter = Counter()
        for key, running in scheduler.running.items():
            job = running.job
            if job is None:  # checkpoint write: job-agnostic by design
                continue
            if job.finished or jobs.get(job.job_id) is not job:
                out.append(
                    f"task {key} still running on behalf of retired job "
                    f"{job.name!r} (id {job.job_id})"
                )
                continue
            job_census[job.job_id] += 1
            if job.pool is not None:
                pool_census[job.pool.name] += 1
        for job in jobs.values():
            if job.running_tasks != job_census.get(job.job_id, 0):
                out.append(
                    f"job {job.name!r} books {job.running_tasks} running tasks "
                    f"but the census finds {job_census.get(job.job_id, 0)}"
                )
        for name, pool in scheduler.pools.items():
            if pool.running_tasks != pool_census.get(name, 0):
                out.append(
                    f"pool {name!r} books {pool.running_tasks} running tasks "
                    f"but the census finds {pool_census.get(name, 0)}"
                )
        return out

    def _check_trace_books(self) -> List[str]:
        """Emitted task spans must reconcile exactly with scheduler counters.

        Only active when the context's observability layer is enabled (the
        checker must have been constructed before the run so the bus holds
        the whole history).  The scheduler maintains its per-job and
        per-pool completion books unconditionally, so every span count has
        an independent ledger to agree with.
        """
        obs = getattr(self.ctx, "obs", None)
        if obs is None or not obs.enabled:
            return []
        out: List[str] = []
        scheduler = self.ctx.scheduler
        stats = scheduler.stats
        task_events = obs.bus.by_kind("task")
        completed = [e for e in task_events if e.status == "complete"]
        lost = [e for e in task_events if e.status == "lost"]
        if len(completed) != stats.tasks_completed:
            out.append(
                f"trace books: {len(completed)} completed task spans but the "
                f"scheduler counts {stats.tasks_completed} completions"
            )
        if len(lost) != stats.tasks_lost:
            out.append(
                f"trace books: {len(lost)} lost task spans but the scheduler "
                f"counts {stats.tasks_lost} lost tasks"
            )
        kind_census = Counter(e.attrs.get("task_kind") for e in completed)
        for kind, expected in (
            ("result", stats.result_tasks),
            ("shuffle_map", stats.map_tasks),
            ("checkpoint", stats.checkpoint_tasks),
        ):
            if kind_census.get(kind, 0) != expected:
                out.append(
                    f"trace books: {kind_census.get(kind, 0)} completed "
                    f"{kind!r} spans but the scheduler counts {expected}"
                )
        pool_census = Counter(
            e.pool for e in completed if e.job_id is not None and e.pool is not None
        )
        for name, pool in scheduler.pools.items():
            if pool_census.get(name, 0) != pool.tasks_completed:
                out.append(
                    f"trace books: pool {name!r} has {pool_census.get(name, 0)} "
                    f"completed spans but books {pool.tasks_completed} completions"
                )
        job_census = Counter(e.job_id for e in completed if e.job_id is not None)
        books = scheduler.tasks_completed_by_job
        for job_id in sorted(set(job_census) | set(books)):
            if job_census.get(job_id, 0) != books.get(job_id, 0):
                out.append(
                    f"trace books: job {job_id} has {job_census.get(job_id, 0)} "
                    f"completed spans but books {books.get(job_id, 0)} completions"
                )
        return out

    def _check_block_ownership(self) -> List[str]:
        """No job may leak cached blocks of unpersisted or unknown RDDs."""
        out: List[str] = []
        seen: Set[int] = set()
        for worker in self.ctx.cluster.live_workers():
            for block_id in self.ctx.block_index.blocks_on(worker.worker_id):
                parsed = parse_block_id(block_id)
                if parsed is None:
                    out.append(f"cached block {block_id!r} has no rdd_<id>_<p> form")
                    continue
                rdd_id, _partition = parsed
                if rdd_id in seen:
                    continue
                seen.add(rdd_id)
                rdd = self.ctx.rdd_by_id(rdd_id)
                if rdd is None:
                    out.append(
                        f"cached block {block_id!r} references unregistered rdd {rdd_id}"
                    )
                elif not rdd.persisted:
                    out.append(
                        f"block leak: rdd {rdd_id} ({rdd.name}) is cached on "
                        f"worker {worker.worker_id} but no longer persisted"
                    )
        return out
