"""Deterministic fault injector driven by a :class:`FaultPlan`.

The injector attaches to one :class:`~repro.engine.context.FlintContext`
through the engine's dedicated injection points (no monkeypatching):

- ``TaskScheduler`` calls :meth:`on_task_dispatched` when a task enters
  flight and :meth:`on_task_completed` at every task boundary, and routes
  every task duration through :meth:`scale_task_duration`;
- ``ShuffleManager.fetch`` calls :meth:`on_shuffle_fetch` before it touches
  any map output;
- ``CheckpointRegistry.record_write`` consults the installed
  ``write_failure_hook``;
- time triggers are plain simulator events.

Every firing is logged as a :class:`FiredFault`, and — when an
:class:`~repro.faults.invariants.InvariantChecker` is attached — a check is
scheduled immediately after the fault (same simulated instant, after the
current dispatch unwinds, so the checker never observes a half-applied
transition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.engine.task import TaskKind, TaskSpec
from repro.faults.plan import FaultClause, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.worker import Worker
    from repro.engine.context import FlintContext
    from repro.engine.dependencies import ShuffleDependency
    from repro.faults.invariants import InvariantChecker


@dataclass
class FiredFault:
    """One fault that actually happened, for reports and replay debugging."""

    time: float
    clause: FaultClause
    description: str
    victims: List[str] = field(default_factory=list)


class FaultInjector:
    """Executes a fault plan against one engine context."""

    def __init__(self, plan: FaultPlan, checker: Optional["InvariantChecker"] = None):
        self.plan = plan
        self.checker = checker
        self.fired: List[FiredFault] = []
        self.context: Optional["FlintContext"] = None
        self._task_completions = 0
        self._dispatches = 0
        self._ckpt_dispatches = 0
        self._ckpt_attempts = 0
        self._fetches = 0
        #: Clause indices that have already fired (one-shot clauses).
        self._done = set()
        #: Activated slow clauses as ``(clause, worker_id | None)``.
        self._slow_active: List[tuple] = []

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, context: "FlintContext") -> "FaultInjector":
        """Wire this injector into a context's injection points."""
        if self.context is not None:
            raise RuntimeError("injector is already installed")
        self.context = context
        context.fault_injector = self
        context.shuffle_manager.fault_injector = self
        if any(c.kind == "ckpt-fail" for c in self.plan.clauses):
            context.checkpoints.write_failure_hook = self._should_fail_checkpoint_write
        for idx, clause in enumerate(self.plan.clauses):
            if clause.trigger.kind == "time":
                context.env.schedule_at(
                    clause.trigger.value,
                    "fault",
                    clause,
                    callback=lambda ev, i=idx, c=clause: self._fire(i, c),
                )
        return self

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_task_dispatched(self, spec: TaskSpec, worker: "Worker") -> None:
        """A task just entered flight on ``worker``."""
        self._dispatches += 1
        self._fire_matching("dispatch", self._dispatches, worker=worker)
        if spec.kind == TaskKind.CHECKPOINT:
            self._ckpt_dispatches += 1
            self._fire_matching("ckpt", self._ckpt_dispatches, worker=worker)

    def on_task_completed(self, spec: TaskSpec, worker: "Worker") -> None:
        """A task's effects just landed (a task boundary)."""
        self._task_completions += 1
        self._fire_matching("task", self._task_completions, worker=worker)

    def on_shuffle_fetch(
        self, dep: "ShuffleDependency", reduce_id: int, to_worker: "Worker"
    ) -> None:
        """A reduce task is about to gather one bucket from all map outputs."""
        self._fetches += 1
        self._fire_matching("fetch", self._fetches, worker=to_worker, dep=dep)

    def scale_task_duration(self, spec: TaskSpec, worker: "Worker", duration: float) -> float:
        """Apply active straggler slowdowns to one task's duration."""
        for clause, worker_id in self._slow_active:
            if worker_id is None or worker_id == worker.worker_id:
                duration *= clause.factor
        return duration

    def _should_fail_checkpoint_write(self, rdd_id: int, partition: int) -> bool:
        self._ckpt_attempts += 1
        for idx, clause in enumerate(self.plan.clauses):
            if clause.kind != "ckpt-fail":
                continue
            start = int(clause.trigger.value)
            if start <= self._ckpt_attempts < start + clause.count:
                self._record(
                    clause,
                    f"failed checkpoint write #{self._ckpt_attempts} "
                    f"(rdd {rdd_id} partition {partition})",
                )
                return True
        return False

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _fire_matching(
        self,
        trigger_kind: str,
        counter: int,
        worker: Optional["Worker"] = None,
        dep: Optional["ShuffleDependency"] = None,
    ) -> None:
        for idx, clause in enumerate(self.plan.clauses):
            if idx in self._done or clause.kind == "ckpt-fail":
                continue
            trig = clause.trigger
            if trig.kind == trigger_kind and int(trig.value) == counter:
                self._fire(idx, clause, worker=worker, dep=dep)

    def _fire(
        self,
        idx: int,
        clause: FaultClause,
        worker: Optional["Worker"] = None,
        dep: Optional["ShuffleDependency"] = None,
    ) -> None:
        if idx in self._done:
            return
        self._done.add(idx)
        if clause.kind == "revoke":
            self._fire_revoke(clause, context_worker=worker)
        elif clause.kind == "warn":
            self._fire_warn(clause, context_worker=worker)
        elif clause.kind == "fetch-kill":
            self._fire_fetch_kill(clause, dep, to_worker=worker)
        elif clause.kind == "slow":
            self._fire_slow(clause, context_worker=worker)

    def _fire_revoke(self, clause: FaultClause, context_worker: Optional["Worker"]) -> None:
        victims = self._pick_victims(clause, context_worker)
        if not victims:
            return
        cluster = self.context.cluster
        ids = [w.worker_id for w in victims]
        if clause.warn is None:
            cluster.force_revoke(victims)
            self._record(clause, f"revoked {ids} with no warning", ids)
            self._replace(clause, victims)
            self._schedule_check(clause)
            return
        # Warned revocation: the warning fires now, the kill ``warn``
        # seconds later (< 120 models a delayed warning).
        for victim in victims:
            cluster.announce_warning(victim)
        self._record(clause, f"warned {ids}, kill in {clause.warn}s", ids)
        self._schedule_check(clause)

        def kill(event, victims=victims, clause=clause):
            alive = [w for w in victims if w.alive]
            if alive:
                cluster.force_revoke(alive)
                self._record(clause, f"revoked {[w.worker_id for w in alive]} after warning")
                self._replace(clause, alive)
                self._schedule_check(clause)

        self.context.env.schedule_in(clause.warn, "fault_kill", clause, callback=kill)

    def _fire_warn(self, clause: FaultClause, context_worker: Optional["Worker"]) -> None:
        victims = self._pick_victims(clause, context_worker)
        for victim in victims:
            self.context.cluster.announce_warning(victim)
        self._record(
            clause, f"false-alarm warning for {[w.worker_id for w in victims]}",
            [w.worker_id for w in victims],
        )
        self._schedule_check(clause)

    def _fire_fetch_kill(
        self, clause: FaultClause, dep: Optional["ShuffleDependency"], to_worker: Optional["Worker"]
    ) -> None:
        if dep is None:
            return
        sm = self.context.shuffle_manager
        exclude = to_worker.worker_id if to_worker is not None else None
        serving = [wid for wid in sm.serving_workers(dep.shuffle_id) if wid != exclude]
        victims = [
            self.context.cluster.workers[wid]
            for wid in serving[: clause.count]
            if self.context.cluster.workers[wid].alive
        ]
        if not victims:
            return
        ids = [w.worker_id for w in victims]
        self.context.cluster.force_revoke(victims)
        self._record(
            clause, f"killed map-output holders {ids} of shuffle {dep.shuffle_id} mid-fetch", ids
        )
        self._schedule_check(clause)

    def _fire_slow(self, clause: FaultClause, context_worker: Optional["Worker"]) -> None:
        worker_id: Optional[str] = None
        if clause.worker is not None:
            live = self.context.cluster.live_workers()
            if not live:
                return
            worker_id = live[clause.worker % len(live)].worker_id
        elif context_worker is not None and clause.trigger.kind in ("dispatch", "ckpt"):
            worker_id = context_worker.worker_id
        self._slow_active.append((clause, worker_id))
        target = worker_id if worker_id is not None else "all workers"
        self._record(clause, f"straggler x{clause.factor} on {target}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _pick_victims(
        self, clause: FaultClause, context_worker: Optional["Worker"]
    ) -> List["Worker"]:
        """Deterministic victim selection.

        ``worker=`` pins the first victim to a live-worker index.  A clause
        fired from a checkpoint-dispatch trigger defaults to the worker
        running that checkpoint (the mid-write kill).  Otherwise victims are
        the busiest workers — maximal in-flight loss — with worker-id order
        breaking ties.
        """
        live = self.context.cluster.live_workers()
        if not live:
            return []
        count = min(clause.count, len(live))
        if clause.worker is not None:
            start = clause.worker % len(live)
            return [live[(start + i) % len(live)] for i in range(count)]
        busy = self.context.scheduler.busy
        ranked = sorted(live, key=lambda w: (-busy.get(w.worker_id, 0), w.worker_id))
        if (
            context_worker is not None
            and clause.trigger.kind == "ckpt"
            and context_worker.alive
        ):
            rest = [w for w in ranked if w.worker_id != context_worker.worker_id]
            ranked = [context_worker] + rest
        return ranked[:count]

    def _replace(self, clause: FaultClause, victims: List["Worker"]) -> None:
        if clause.replace is None or not victims:
            return
        instance = victims[0].instance
        self.context.cluster.launch(
            instance.market_id,
            instance.bid,
            count=len(victims),
            delay=clause.replace,
            instance_type=victims[0].instance_type,
        )

    def _record(self, clause: FaultClause, description: str, victims=None) -> None:
        self.fired.append(
            FiredFault(self.context.env.now, clause, description, victims or [])
        )

    def _schedule_check(self, clause: FaultClause) -> None:
        """Run the invariant checker right after this fault settles.

        The check runs as a same-instant simulator event so it observes the
        post-fault state after the current dispatch loop unwinds — never a
        task halfway through ``_dispatch``.
        """
        if self.checker is None:
            return
        label = f"after[{clause}]@t={self.context.env.now:.1f}"
        self.context.env.schedule_at(
            self.context.env.now,
            "invariant_check",
            callback=lambda ev: self.checker.check(label),
        )
