"""The ``FaultPlan`` DSL: seeded, replayable failure scenarios as one line.

A plan is a semicolon-separated list of fault clauses.  Each clause names a
fault kind, a deterministic trigger, and keyword parameters::

    revoke at=task:40 count=2 warn=60 replace=120; ckpt-fail at=ckpt:1 count=2

Grammar::

    spec    := clause ( ';' clause )*
    clause  := kind ( WS key '=' value )*
    kind    := 'revoke' | 'warn' | 'ckpt-fail' | 'fetch-kill' | 'slow'
    trigger := 'task:N' | 'dispatch:N' | 'ckpt:N' | 'fetch:N' | 'time:T'

Triggers index deterministic engine events (all 1-based):

- ``task:N`` — the Nth task *completion* (a task boundary);
- ``dispatch:N`` — the Nth task dispatch (fires with the task in flight,
  i.e. mid-stage);
- ``ckpt:N`` — the Nth checkpoint activity: write-task dispatch for
  ``revoke``/``warn``/``slow`` (mid-checkpoint-write), write attempt for
  ``ckpt-fail``;
- ``fetch:N`` — the Nth shuffle fetch, fired before the fetch reads any map
  output;
- ``time:T`` — absolute simulated seconds.

Fault kinds and their parameters:

- ``revoke`` — kill workers.  ``count`` workers die together (a correlated
  burst); ``worker`` pins the first victim to a live-worker index (default:
  the busiest workers); ``warn`` delivers a revocation warning that many
  seconds *before* the kill (omit it for a lost warning; values below 120
  model delayed warnings); ``replace`` launches replacements that boot that
  many seconds after the kill.
- ``warn`` — deliver a warning with no kill (a false alarm).
- ``ckpt-fail`` — fail ``count`` consecutive durable checkpoint writes
  starting at the triggering write attempt.
- ``fetch-kill`` — at the triggering fetch, revoke up to ``count`` workers
  serving that shuffle's map outputs (never the fetching worker), forcing
  the ``ShuffleFetchFailure`` recovery path.
- ``slow`` — from the trigger onward, multiply task durations by ``factor``
  on one worker (``worker=`` index) or on every worker (straggler model).

Everything is deterministic: the same spec against the same seeded
environment replays the same failure scenario event-for-event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

TRIGGER_KINDS = ("task", "dispatch", "ckpt", "fetch", "time")
FAULT_KINDS = ("revoke", "warn", "ckpt-fail", "fetch-kill", "slow")

#: Keys each kind accepts beyond the mandatory ``at=``.
_ALLOWED_KEYS: Dict[str, Tuple[str, ...]] = {
    "revoke": ("count", "worker", "warn", "replace"),
    "warn": ("count", "worker"),
    "ckpt-fail": ("count",),
    "fetch-kill": ("count",),
    "slow": ("factor", "worker"),
}


class FaultPlanError(ValueError):
    """A fault-plan spec failed to parse or validate."""


@dataclass(frozen=True)
class Trigger:
    """A deterministic firing point: ``(kind, value)``."""

    kind: str
    value: float

    def __str__(self) -> str:
        value = int(self.value) if float(self.value).is_integer() else self.value
        return f"{self.kind}:{value}"


@dataclass(frozen=True)
class FaultClause:
    """One fault: what happens, when, and to whom."""

    kind: str
    trigger: Trigger
    count: int = 1
    worker: Optional[int] = None
    warn: Optional[float] = None
    replace: Optional[float] = None
    factor: float = 2.0

    def __str__(self) -> str:
        parts = [self.kind, f"at={self.trigger}"]
        if self.kind != "slow" and self.count != 1:
            parts.append(f"count={self.count}")
        if self.worker is not None:
            parts.append(f"worker={self.worker}")
        if self.warn is not None:
            parts.append(f"warn={_fmt(self.warn)}")
        if self.replace is not None:
            parts.append(f"replace={_fmt(self.replace)}")
        if self.kind == "slow":
            parts.append(f"factor={_fmt(self.factor)}")
        return " ".join(parts)


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else str(value)


def _parse_trigger(raw: str, clause_kind: str) -> Trigger:
    kind, sep, value = raw.partition(":")
    if not sep or kind not in TRIGGER_KINDS:
        raise FaultPlanError(
            f"bad trigger {raw!r} (expected one of "
            + ", ".join(f"{k}:N" for k in TRIGGER_KINDS)
            + ")"
        )
    try:
        num = float(value)
    except ValueError:
        raise FaultPlanError(f"bad trigger value in {raw!r}") from None
    if kind != "time":
        if num < 1 or not num.is_integer():
            raise FaultPlanError(f"trigger {raw!r} must use a 1-based integer index")
    elif num < 0:
        raise FaultPlanError(f"trigger {raw!r} must not be negative")
    if clause_kind == "ckpt-fail" and kind != "ckpt":
        raise FaultPlanError("ckpt-fail requires an at=ckpt:N trigger")
    if clause_kind == "fetch-kill" and kind != "fetch":
        raise FaultPlanError("fetch-kill requires an at=fetch:N trigger")
    return Trigger(kind, num)


def _parse_clause(raw: str) -> FaultClause:
    tokens = raw.split()
    kind = tokens[0]
    if kind not in FAULT_KINDS:
        raise FaultPlanError(
            f"unknown fault kind {kind!r} (expected one of {', '.join(FAULT_KINDS)})"
        )
    kv: Dict[str, str] = {}
    for token in tokens[1:]:
        key, sep, value = token.partition("=")
        if not sep:
            raise FaultPlanError(f"expected key=value, got {token!r} in clause {raw!r}")
        if key in kv:
            raise FaultPlanError(f"duplicate key {key!r} in clause {raw!r}")
        kv[key] = value
    if "at" not in kv:
        raise FaultPlanError(f"clause {raw!r} is missing its at= trigger")
    trigger = _parse_trigger(kv.pop("at"), kind)
    allowed = _ALLOWED_KEYS[kind]
    for key in kv:
        if key not in allowed:
            raise FaultPlanError(
                f"{kind!r} does not accept {key}= (allowed: at, {', '.join(allowed)})"
            )
    try:
        count = int(kv.get("count", "1"))
        worker = int(kv["worker"]) if "worker" in kv else None
        warn = float(kv["warn"]) if "warn" in kv else None
        replace = float(kv["replace"]) if "replace" in kv else None
        factor = float(kv.get("factor", "2.0"))
    except ValueError as exc:
        raise FaultPlanError(f"bad numeric value in clause {raw!r}: {exc}") from None
    if count < 1:
        raise FaultPlanError(f"count must be >= 1 in clause {raw!r}")
    if worker is not None and worker < 0:
        raise FaultPlanError(f"worker index must be >= 0 in clause {raw!r}")
    if warn is not None and warn < 0:
        raise FaultPlanError(f"warn lead must be >= 0 in clause {raw!r}")
    if replace is not None and replace < 0:
        raise FaultPlanError(f"replace delay must be >= 0 in clause {raw!r}")
    if factor <= 0:
        raise FaultPlanError(f"factor must be positive in clause {raw!r}")
    return FaultClause(
        kind=kind,
        trigger=trigger,
        count=count,
        worker=worker,
        warn=warn,
        replace=replace,
        factor=factor,
    )


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, validated sequence of fault clauses."""

    clauses: Tuple[FaultClause, ...]

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a one-line spec; raises :class:`FaultPlanError` on nonsense."""
        clauses = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if raw:
                clauses.append(_parse_clause(raw))
        if not clauses:
            raise FaultPlanError("empty fault plan")
        return cls(tuple(clauses))

    def __str__(self) -> str:
        """Canonical spec string; ``parse(str(plan))`` round-trips."""
        return "; ".join(str(clause) for clause in self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)
