"""Randomized-but-seeded chaos driver over the fault-plan space.

Generates hundreds of seeded :class:`FaultPlan` specs across two families —
``revocation`` (single kills, correlated bursts, delayed/lost warnings,
false alarms) and ``io`` (checkpoint write failures, mid-fetch map-output
loss, stragglers) — and runs each against PageRank/ALS/KMeans under both
scheduler modes via :func:`repro.faults.harness.run_with_plan`.  An opt-in
``multijob`` family (paired with the ``MultiJob`` workload) repeats the
revocation/fetch-kill mix while at least two jobs are multiplexed, checking
the per-job and per-pool scheduler books on every fault.

Every plan derives deterministically from ``(master_seed, seed)``, so any
failure replays from one line::

    python -m repro.faults.chaos --replay-seed 57 --workload PageRank \\
        --mode legacy --family io

Usage::

    python -m repro.faults.chaos --seeds 10 --workload PageRank --mode incremental
    python -m repro.faults.chaos --seeds 5            # full matrix, 5 seeds/cell
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.context import FlintContext
from repro.faults.harness import run_reference, run_with_plan
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.workloads import ALSWorkload, KMeansWorkload, PageRankWorkload

NUM_WORKERS = 6
PARTITIONS = 8
WORKLOAD_SEED = 7
#: Fixed MTTF fed to the checkpointing policy so τ lands inside these jobs.
MTTF = 1800.0

FAMILIES = ("revocation", "io")
#: Opt-in families outside the default matrix (kept stable at 120 plans);
#: ``multijob`` stresses the scheduler with >=2 jobs in flight per fault,
#: ``streaming`` lands revocations mid-window and mid-state-checkpoint on
#: the micro-batch plane (paired with the ``Streaming`` workload), and
#: ``tenancy`` drops revocations and fetch-kills on the hardened job server
#: while the journal and the invariant-checked result cache are live
#: (paired with the ``Tenancy`` workload).
EXTRA_FAMILIES = ("multijob", "streaming", "tenancy")
MODES = ("incremental", "legacy")


def _pagerank(ctx: FlintContext):
    return PageRankWorkload(
        ctx, data_gb=0.5, num_edges=1600, num_vertices=400,
        partitions=PARTITIONS, iterations=4, seed=WORKLOAD_SEED,
    )


def _kmeans(ctx: FlintContext):
    return KMeansWorkload(
        ctx, data_gb=1.0, num_points=800, k=4, dim=4,
        partitions=PARTITIONS, iterations=4, distance_cost=6.0, seed=WORKLOAD_SEED,
    )


def _als(ctx: FlintContext):
    return ALSWorkload(
        ctx, data_gb=1.0, num_ratings=900, num_users=120, num_items=60,
        partitions=PARTITIONS, iterations=3, solve_cost=4.0, seed=WORKLOAD_SEED,
    )


class _MultiJobWorkload:
    """PageRank in the foreground with a shuffled aggregation job in flight.

    ``run()`` submits the background action through the non-blocking
    ``submit_job`` surface before starting PageRank's blocking iterations,
    so every injected fault lands while at least two jobs are multiplexed.
    The reference run takes the identical path, keeping results comparable.
    """

    def __init__(self, ctx: FlintContext):
        self.ctx = ctx
        self.pagerank = _pagerank(ctx)
        source = ctx.generate(
            lambda p: [(p * 37 + i) % 211 for i in range(60)],
            num_partitions=PARTITIONS,
            record_size=64_000,
            name="mj-source",
        )
        self.background = (
            source.key_by(lambda v: v % 13).reduce_by_key(lambda a, b: a + b)
        )

    def load(self) -> None:
        self.pagerank.load()

    def run(self):
        handle = self.ctx.submit_job(self.background, len, name="mj-background")
        ranks = self.pagerank.run()
        background = handle.wait()
        return ranks, background


class _StreamingChaosWorkload:
    """Stateful wordcount + a sliding window on one micro-batch driver.

    Faults land while operator state is live: a ``ckpt:N`` revocation hits
    mid-state-checkpoint (the policy's write tasks are in flight), a
    ``time:T`` one lands mid-window (the unioned parent batches are cached
    and unreplicated, so killing their holder is last-replica state-block
    loss), and the stream must still converge to the failure-free result.
    """

    BATCHES = 8

    def __init__(self, ctx: FlintContext):
        from repro.streaming import StreamingContext
        from repro.streaming.workloads import (
            VOCABULARY,
            _add,
            _sorted_collect,
            _split_words,
            _sum_update,
            _word_one,
        )

        self.ctx = ctx
        self.ssc = StreamingContext(ctx, batch_interval=30.0)
        text = self.ssc.text_stream(
            800, PARTITIONS, VOCABULARY, seed=WORKLOAD_SEED, record_size=100_000
        )
        counts = (
            text.flat_map(_split_words)
            .map(_word_one)
            .reduce_by_key(_add, PARTITIONS)
        )
        self.state = counts.update_state_by_key(
            _sum_update, PARTITIONS, record_size=25_000
        )
        self.state.count_per_batch("keys")
        events = self.ssc.event_stream(
            600, PARTITIONS, 30, seed=WORKLOAD_SEED,
            record_size=100_000, value_range=(1, 5), label="ev", name="ev",
        )
        events.persist()
        windowed = events.reduce_by_key_and_window(
            _add, window=3, slide=2, num_partitions=PARTITIONS
        )
        windowed.foreach_rdd(_sorted_collect, "window")
        self.ssc.enable_state_checkpointing(MTTF, initial_delta=10.0, max_tau=60.0)

    def load(self) -> None:
        pass

    def run(self):
        self.ssc.run(self.BATCHES)
        final = tuple(sorted(self.state.latest_rdd.collect()))
        return (
            tuple(self.ssc.results("keys")),
            tuple(self.ssc.results("window")),
            final,
        )


class _TenancyChaosWorkload:
    """The hardened multi-tenant job server under engine faults.

    Three retry-enabled analyst tenants issue TPC-H Q3 through the result
    cache (``validate=True``: every hit recomputes and asserts equality)
    while a batch tenant runs PageRank, all journalled to a scratch JSONL
    file.  Tenancy limits are generous on purpose — admission decisions must
    not depend on fault-perturbed timing, so the faulted run and the
    failure-free reference shed nothing and their results stay bit-identical.
    ``run()`` returns only timing-independent values: each query's result
    digest and the final admission counts (which are exact because nothing
    is shed).
    """

    QUERIES_PER_ANALYST = 2
    ANALYSTS = 3

    def __init__(self, ctx: FlintContext):
        import tempfile

        from repro.server.clients import ClosedLoopClient
        from repro.server.jobserver import JobServer, PoolConfig, ServerConfig
        from repro.server.result_cache import ResultCache, lineage_fingerprint
        from repro.server.tenancy import RetryPolicy, TenancyConfig, TenantPolicy
        from repro.workloads import TPCHSession

        self.ctx = ctx
        fd, self.journal_path = tempfile.mkstemp(
            prefix="chaos-tenancy-", suffix=".jsonl"
        )
        os.close(fd)
        self.server = JobServer(ctx, ServerConfig(
            scheduling_policy="fair",
            max_queue=64,
            pools=(
                PoolConfig("interactive", policy="fifo", weight=4.0,
                           priority="interactive"),
                PoolConfig("batch", policy="fifo", weight=1.0,
                           priority="batch"),
            ),
            tenancy=TenancyConfig(default=TenantPolicy(
                max_in_flight=64, breaker_threshold=50,
            )),
            journal_path=self.journal_path,
            result_cache=ResultCache(validate=True),
        ))
        self.session = TPCHSession(
            ctx, data_gb=1.0, lineitem_rows=2_000, orders_rows=500,
            customer_rows=200, partitions=PARTITIONS, seed=WORKLOAD_SEED,
        )
        self.pagerank = _pagerank(ctx)
        self._q3_key: Optional[str] = None
        self._retry = RetryPolicy(max_attempts=3)
        self._make_client = ClosedLoopClient
        self._fingerprint = lineage_fingerprint

    def load(self) -> None:
        self.session.load()
        self.pagerank.load()
        self._q3_key = self._fingerprint(
            self.session.q3_plan(), action="collect", params=("q3-top10",)
        )

    def run(self):
        analysts = [
            self._make_client(
                self.server, self.session.q3, pool="interactive",
                name=f"analyst-{i}", think_time=20.0,
                max_queries=self.QUERIES_PER_ANALYST, master_seed=WORKLOAD_SEED,
                tenant=f"analyst-{i}", cache_key=self._q3_key,
                retry_policy=self._retry,
            )
            for i in range(self.ANALYSTS)
        ]
        for i, analyst in enumerate(analysts):
            analyst.start(delay=5.0 + i)
        ranks = self.server.run_query(
            self.pagerank.run, pool="batch", name="pagerank", tenant="batch"
        )
        env = self.ctx.env
        while not all(a.finished for a in analysts):
            if not env.events:
                raise RuntimeError("tenancy chaos workload stalled")
            env.step()
            self.ctx.scheduler.pump()
        queries = tuple(
            (r.name, repr(r.result))
            for r in sorted(self.server.records, key=lambda r: r.name)
            if r.pool == "interactive"
        )
        stats = self.server.stats
        counts = (stats.submitted, stats.completed, stats.failed,
                  stats.rejected, sum(a.retries for a in analysts))
        self.server.close()
        try:
            os.unlink(self.journal_path)
        except OSError:
            pass
        return tuple(sorted(ranks)), queries, counts


CHAOS_WORKLOADS: Dict[str, Callable[[FlintContext], object]] = {
    "PageRank": _pagerank,
    "KMeans": _kmeans,
    "ALS": _als,
}

#: Workloads outside the default matrix, runnable via ``--workload``.
EXTRA_WORKLOADS: Dict[str, Callable[[FlintContext], object]] = {
    "MultiJob": _MultiJobWorkload,
    "Streaming": _StreamingChaosWorkload,
    "Tenancy": _TenancyChaosWorkload,
}


# ----------------------------------------------------------------------
# Seeded plan generation
# ----------------------------------------------------------------------
def generate_spec(seed: int, family: str, master_seed: int = 0) -> str:
    """One deterministic plan spec for ``(master_seed, seed, family)``."""
    if family not in FAMILIES + EXTRA_FAMILIES:
        raise ValueError(
            f"unknown fault family {family!r} (expected {FAMILIES + EXTRA_FAMILIES})"
        )
    rng = random.Random(f"{master_seed}/{seed}/{family}")
    if family == "revocation":
        return _revocation_spec(rng)
    if family == "multijob":
        return _multijob_spec(rng)
    if family == "streaming":
        return _streaming_spec(rng)
    if family == "tenancy":
        return _tenancy_spec(rng)
    return _io_spec(rng)


def _revocation_spec(rng: random.Random) -> str:
    """Kills: task-boundary, mid-stage, bursts, warning variants."""
    clauses: List[str] = []
    # Never kill below a 2-worker floor so the job can always finish.
    budget = NUM_WORKERS - 2
    for _ in range(rng.randint(1, 3)):
        if budget <= 0:
            break
        trigger = rng.choice(
            [
                f"task:{rng.randint(2, 120)}",
                f"dispatch:{rng.randint(2, 120)}",
                f"time:{rng.randint(10, 600)}",
                f"ckpt:{rng.randint(1, 3)}",
            ]
        )
        count = rng.randint(1, min(2, budget))
        budget -= count
        parts = [f"revoke at={trigger}"]
        if count > 1:
            parts.append(f"count={count}")
        warn = rng.choice([None, None, 15, 60, 120])
        if warn is not None:
            parts.append(f"warn={warn}")
        replace = rng.choice([None, 60, 120])
        if replace is not None:
            parts.append(f"replace={replace}")
        clauses.append(" ".join(parts))
    if rng.random() < 0.3:
        clauses.append(f"warn at=task:{rng.randint(2, 60)}")
    return "; ".join(clauses)


def _io_spec(rng: random.Random) -> str:
    """I/O faults: checkpoint write failures, fetch-time loss, stragglers."""
    clauses: List[str] = []
    picks = rng.sample(["ckpt-fail", "fetch-kill", "slow"], k=rng.randint(1, 3))
    for kind in picks:
        if kind == "ckpt-fail":
            clauses.append(
                f"ckpt-fail at=ckpt:{rng.randint(1, 4)} count={rng.randint(1, 2)}"
            )
        elif kind == "fetch-kill":
            clauses.append(f"fetch-kill at=fetch:{rng.randint(1, 30)}")
        else:
            clauses.append(
                f"slow at=dispatch:{rng.randint(1, 80)} "
                f"factor={round(rng.uniform(2.0, 6.0), 1)} "
                f"worker={rng.randint(0, NUM_WORKERS - 1)}"
            )
    if rng.random() < 0.4:
        clauses.append(f"revoke at=task:{rng.randint(5, 100)} replace=120")
    return "; ".join(clauses)


def _multijob_spec(rng: random.Random) -> str:
    """Concurrent-job stress: revocations and fetch-kills while >=2 jobs run.

    Both fault kinds always appear — a revocation tears cross-job state
    (both jobs lose cached blocks and running tasks at once) and a
    fetch-kill lands mid-shuffle on whichever job fetches next.
    """
    clauses: List[str] = [
        f"revoke at={rng.choice(['task', 'dispatch'])}:{rng.randint(2, 60)} replace=120",
        f"fetch-kill at=fetch:{rng.randint(1, 20)}",
    ]
    if rng.random() < 0.5:
        clauses.append(f"revoke at=time:{rng.randint(20, 300)} replace=120")
    if rng.random() < 0.3:
        clauses.append(f"fetch-kill at=fetch:{rng.randint(21, 40)}")
    return "; ".join(clauses)


def _streaming_spec(rng: random.Random) -> str:
    """Streaming faults: revocations mid-window, mid-state-checkpoint, and
    last-replica cached-state loss (streaming caches are unreplicated, so
    revoking a state partition's holder always kills the last copy).

    Every revocation carries ``replace=`` — the stream is long-lived and
    must keep meeting batch deadlines on a replenished pool.
    """
    clauses: List[str] = [
        rng.choice(
            [
                # Mid-state-checkpoint: the Nth checkpoint write dispatch
                # has the policy's state write tasks in flight.
                f"revoke at=ckpt:{rng.randint(1, 4)} replace={rng.choice([60, 90])}",
                # Mid-window / mid-state: time-triggered kill while window
                # parents and the state generation sit in cache.
                f"revoke at=time:{rng.randint(40, 220)} replace={rng.choice([60, 120])}",
            ]
        )
    ]
    if rng.random() < 0.6:
        count = rng.randint(1, 2)
        parts = [f"revoke at=task:{rng.randint(10, 90)}", f"replace={rng.choice([90, 120])}"]
        if count > 1:
            parts.insert(1, f"count={count}")
        clauses.append(" ".join(parts))
    if rng.random() < 0.4:
        clauses.append(
            f"ckpt-fail at=ckpt:{rng.randint(1, 3)} count={rng.randint(1, 2)}"
        )
    if rng.random() < 0.4:
        clauses.append(f"fetch-kill at=fetch:{rng.randint(1, 25)}")
    return "; ".join(clauses)


def _tenancy_spec(rng: random.Random) -> str:
    """Serving-plane faults: revocations and fetch-kills while the hardened
    job server multiplexes analyst queries, cache validations, and a batch
    job.  Every revocation carries ``replace=`` — the server is long-lived
    and admitted queries must eventually finish on a replenished pool.
    """
    clauses: List[str] = [
        rng.choice(
            [
                f"revoke at=task:{rng.randint(2, 80)} replace={rng.choice([60, 120])}",
                f"revoke at=time:{rng.randint(20, 400)} replace={rng.choice([60, 120])}",
                f"revoke at=dispatch:{rng.randint(2, 80)} replace=120",
            ]
        )
    ]
    if rng.random() < 0.5:
        clauses.append(f"fetch-kill at=fetch:{rng.randint(1, 25)}")
    if rng.random() < 0.4:
        clauses.append(
            f"revoke at=time:{rng.randint(400, 900)} replace={rng.choice([60, 120])}"
        )
    if rng.random() < 0.3:
        clauses.append(
            f"slow at=dispatch:{rng.randint(1, 60)} "
            f"factor={round(rng.uniform(2.0, 5.0), 1)} "
            f"worker={rng.randint(0, NUM_WORKERS - 1)}"
        )
    return "; ".join(clauses)


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
@dataclass
class ChaosFailure:
    """One plan that broke an invariant, with its full replay recipe."""

    seed: int
    master_seed: int
    workload: str
    mode: str
    family: str
    spec: str
    violations: List[str]
    #: Trace files written for this failure (``--trace-failures DIR``).
    trace_paths: List[str] = field(default_factory=list)

    def replay_command(self) -> str:
        return (
            "python -m repro.faults.chaos"
            f" --replay-seed {self.seed} --master-seed {self.master_seed}"
            f" --workload {self.workload} --mode {self.mode} --family {self.family}"
        )


@dataclass
class ChaosReport:
    """Outcome of one chaos sweep."""

    plans_run: int = 0
    faults_fired: int = 0
    checks_run: int = 0
    failures: List[ChaosFailure] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures


def run_chaos(
    seeds: Sequence[int],
    workloads: Optional[Sequence[str]] = None,
    modes: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
    master_seed: int = 0,
    verbose: bool = False,
    trace_dir: Optional[str] = None,
) -> ChaosReport:
    """Sweep ``seeds`` x workloads x modes x families; never raises.

    The failure-free reference run is computed once per (workload, mode)
    cell and shared across every plan in that cell.  With ``trace_dir``
    set, every failing plan is deterministically rerun with tracing
    enabled and its Chrome trace + JSONL event log land in that directory.
    """
    workloads = list(workloads or CHAOS_WORKLOADS)
    modes = list(modes or MODES)
    families = list(families or FAMILIES)
    report = ChaosReport()
    references: Dict[Tuple[str, str], tuple] = {}
    started = time.perf_counter()
    for workload_name in workloads:
        factory = {**CHAOS_WORKLOADS, **EXTRA_WORKLOADS}[workload_name]
        for mode in modes:
            cell = (workload_name, mode)
            if cell not in references:
                references[cell] = run_reference(
                    factory, mode, NUM_WORKERS, checkpointing=True, mttf=MTTF
                )
            for family in families:
                for seed in seeds:
                    spec = generate_spec(seed, family, master_seed)
                    try:
                        run = run_with_plan(
                            factory,
                            spec,
                            mode=mode,
                            num_workers=NUM_WORKERS,
                            checkpointing=True,
                            mttf=MTTF,
                            reference=references[cell],
                            raise_on_violation=False,
                        )
                        violations = run.violations
                        report.faults_fired += len(run.faults_fired)
                        report.checks_run += run.checks_run
                    except Exception as exc:  # engine crash = chaos failure
                        violations = [f"unhandled {type(exc).__name__}: {exc}"]
                    report.plans_run += 1
                    if violations:
                        failure = ChaosFailure(
                            seed, master_seed, workload_name, mode, family, spec,
                            violations,
                        )
                        if trace_dir is not None:
                            _trace_failure(
                                factory, failure, references[cell], trace_dir
                            )
                        report.failures.append(failure)
                        _print_failure(failure)
                    elif verbose:
                        print(
                            f"ok seed={seed} {workload_name}/{mode}/{family}: {spec!r}"
                        )
    report.wall_seconds = round(time.perf_counter() - started, 2)
    return report


def _trace_failure(
    factory: Callable[[FlintContext], object],
    failure: ChaosFailure,
    reference: tuple,
    trace_dir: str,
) -> None:
    """Rerun one failing plan with tracing on; write its timeline to disk.

    The rerun is deterministic (same spec, same seed substrate), so the
    trace shows the same fault sequence that produced the violations.
    """
    os.makedirs(trace_dir, exist_ok=True)
    stem = (
        f"{failure.workload}-{failure.mode}-{failure.family}-seed{failure.seed}"
    )
    try:
        run = run_with_plan(
            factory,
            failure.spec,
            mode=failure.mode,
            num_workers=NUM_WORKERS,
            checkpointing=True,
            mttf=MTTF,
            reference=reference,
            raise_on_violation=False,
            trace=True,
        )
    except Exception as exc:
        print(f"  trace rerun failed: {type(exc).__name__}: {exc}")
        return
    trace_path = os.path.join(trace_dir, f"{stem}.trace.json")
    events_path = os.path.join(trace_dir, f"{stem}.events.jsonl")
    write_chrome_trace(run.event_log, trace_path)
    write_jsonl(run.event_log, events_path)
    failure.trace_paths = [trace_path, events_path]


def _print_failure(failure: ChaosFailure) -> None:
    print(
        f"CHAOS FAILURE seed={failure.seed} master_seed={failure.master_seed} "
        f"workload={failure.workload} mode={failure.mode} family={failure.family}"
    )
    print(f"  plan: {failure.spec}")
    for violation in failure.violations:
        print(f"  violation: {violation}")
    for path in failure.trace_paths:
        print(f"  trace: {path}")
    print(f"  replay: {failure.replay_command()}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Seeded chaos sweep over the fault-plan space."
    )
    parser.add_argument("--seeds", type=int, default=10, help="seeds per matrix cell")
    parser.add_argument("--seed-base", type=int, default=0, help="first seed value")
    parser.add_argument("--master-seed", type=int, default=0)
    parser.add_argument(
        "--workload",
        choices=sorted(CHAOS_WORKLOADS) + sorted(EXTRA_WORKLOADS),
        default=None,
    )
    parser.add_argument("--mode", choices=MODES, default=None)
    parser.add_argument("--family", choices=FAMILIES + EXTRA_FAMILIES, default=None)
    parser.add_argument(
        "--replay-seed", type=int, default=None,
        help="re-run exactly one seed (use with --workload/--mode/--family)",
    )
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--trace-failures", metavar="DIR", default=None,
        help="rerun each failing plan with tracing and write Chrome trace "
        "+ JSONL event log into DIR",
    )
    args = parser.parse_args(argv)

    if args.replay_seed is not None:
        seeds: Sequence[int] = [args.replay_seed]
    else:
        seeds = range(args.seed_base, args.seed_base + args.seeds)
    report = run_chaos(
        seeds,
        workloads=[args.workload] if args.workload else None,
        modes=[args.mode] if args.mode else None,
        families=[args.family] if args.family else None,
        master_seed=args.master_seed,
        verbose=args.verbose or args.replay_seed is not None,
        trace_dir=args.trace_failures,
    )
    print(
        f"chaos: {report.plans_run} plans, {report.faults_fired} faults fired, "
        f"{report.checks_run} invariant checks, {len(report.failures)} failures "
        f"({report.wall_seconds}s)"
    )
    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.exit(main())
