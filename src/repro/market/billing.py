"""Billing models for transient and on-demand servers.

EC2 (2015-era, the paper's setting) bills spot instances by the hour at the
spot price in effect at the start of each hour; a final partial hour is free
when *Amazon* revokes the instance, but fully charged when the *user*
terminates it.  On-demand servers bill whole hours at a fixed price.  GCE
preemptible instances bill per minute with a 10-minute minimum, except that
an instance the provider preempts inside those ten minutes is free.
"""

from __future__ import annotations

import math

import numpy as np

from repro.market.market import Market
from repro.simulation.clock import HOUR, MINUTE

#: Billing-boundary tolerance in seconds.  Durations accumulated from float
#: event times can land an epsilon either side of an exact hour/minute
#: boundary; both sides of every boundary comparison use this tolerance so
#: "exactly N hours" never misclassifies as N full hours *plus* a partial.
BILLING_EPSILON = 1e-9


def ec2_hourly_cost(
    market: Market,
    start: float,
    end: float,
    revoked_by_provider: bool,
) -> float:
    """Cost of a spot instance used on ``[start, end]``.

    Each hour boundary (measured from launch) starts a new billing hour at
    the spot price then in effect.  The in-progress hour at ``end`` is free
    if the provider revoked the instance, else charged in full.
    """
    if end < start:
        raise ValueError("end must be >= start")
    if end == start:
        return 0.0
    full_hours = int(math.floor((end - start + BILLING_EPSILON) / HOUR))
    # One vectorised trace lookup over the hour-start grid instead of a
    # per-hour ``current_price`` probe; the sequential Python sum keeps the
    # reduction order (and therefore the cost) bit-identical to the loop it
    # replaced.
    cost = sum(billed_hour_prices(market, start, full_hours).tolist())
    partial = (end - start) - full_hours * HOUR
    if partial > BILLING_EPSILON and not revoked_by_provider:
        cost += market.current_price(start + full_hours * HOUR)
    return float(cost)


def billed_hour_prices(market: Market, start: float, hours: int) -> np.ndarray:
    """Spot price at each billed-hour start: ``start + h*HOUR`` for ``h < hours``.

    The grid reproduces the scalar arithmetic (``start + h * HOUR`` per
    element) so each looked-up price matches ``market.current_price`` bit for
    bit; both the hourly biller above and the provider's analytic charge
    ledger draw their per-hour prices from here.
    """
    if hours <= 0:
        return np.empty(0)
    return market.prices_at(start + HOUR * np.arange(hours))


def on_demand_cost(price_per_hour: float, start: float, end: float) -> float:
    """On-demand billing: whole hours at a fixed price."""
    if end < start:
        raise ValueError("end must be >= start")
    if end == start:
        return 0.0
    # The boundary tolerance lives in *seconds* (BILLING_EPSILON); this
    # comparison is in hours, so it must be scaled — a bare 1e-9 here would
    # be 3.6µs, three orders of magnitude looser than the other models.
    return price_per_hour * math.ceil((end - start) / HOUR - BILLING_EPSILON / HOUR)


def gce_preemptible_cost(
    price_per_hour: float,
    start: float,
    end: float,
    revoked_by_provider: bool,
) -> float:
    """GCE preemptible billing: per-minute with a 10-minute minimum.

    The 10-minute minimum applies to user-initiated termination only — GCE
    does not bill an instance the *provider* preempts within its first ten
    minutes, and bills exactly the minutes used when it preempts later.
    """
    if end < start:
        raise ValueError("end must be >= start")
    if end == start:
        return 0.0
    minutes = (end - start) / MINUTE
    if revoked_by_provider:
        if minutes < 10.0 - BILLING_EPSILON / MINUTE:
            return 0.0
    else:
        minutes = max(10.0, minutes)
    return price_per_hour * minutes / 60.0
