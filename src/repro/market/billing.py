"""Billing models for transient and on-demand servers.

EC2 (2015-era, the paper's setting) bills spot instances by the hour at the
spot price in effect at the start of each hour; a final partial hour is free
when *Amazon* revokes the instance, but fully charged when the *user*
terminates it.  On-demand servers bill whole hours at a fixed price.  GCE
preemptible instances bill per minute with a 10-minute minimum, except that
an instance the provider preempts inside those ten minutes is free.
"""

from __future__ import annotations

import math

from repro.market.market import Market
from repro.simulation.clock import HOUR, MINUTE

#: Billing-boundary tolerance in seconds.  Durations accumulated from float
#: event times can land an epsilon either side of an exact hour/minute
#: boundary; both sides of every boundary comparison use this tolerance so
#: "exactly N hours" never misclassifies as N full hours *plus* a partial.
BILLING_EPSILON = 1e-9


def ec2_hourly_cost(
    market: Market,
    start: float,
    end: float,
    revoked_by_provider: bool,
) -> float:
    """Cost of a spot instance used on ``[start, end]``.

    Each hour boundary (measured from launch) starts a new billing hour at
    the spot price then in effect.  The in-progress hour at ``end`` is free
    if the provider revoked the instance, else charged in full.
    """
    if end < start:
        raise ValueError("end must be >= start")
    if end == start:
        return 0.0
    full_hours = int(math.floor((end - start + BILLING_EPSILON) / HOUR))
    cost = sum(market.current_price(start + h * HOUR) for h in range(full_hours))
    partial = (end - start) - full_hours * HOUR
    if partial > BILLING_EPSILON and not revoked_by_provider:
        cost += market.current_price(start + full_hours * HOUR)
    return float(cost)


def on_demand_cost(price_per_hour: float, start: float, end: float) -> float:
    """On-demand billing: whole hours at a fixed price."""
    if end < start:
        raise ValueError("end must be >= start")
    if end == start:
        return 0.0
    return price_per_hour * math.ceil((end - start) / HOUR - 1e-9)


def gce_preemptible_cost(
    price_per_hour: float,
    start: float,
    end: float,
    revoked_by_provider: bool,
) -> float:
    """GCE preemptible billing: per-minute with a 10-minute minimum.

    The 10-minute minimum applies to user-initiated termination only — GCE
    does not bill an instance the *provider* preempts within its first ten
    minutes, and bills exactly the minutes used when it preempts later.
    """
    if end < start:
        raise ValueError("end must be >= start")
    if end == start:
        return 0.0
    minutes = (end - start) / MINUTE
    if revoked_by_provider:
        if minutes < 10.0 - BILLING_EPSILON / MINUTE:
            return 0.0
    else:
        minutes = max(10.0, minutes)
    return price_per_hour * minutes / 60.0
