"""Market abstractions: spot, on-demand, and GCE preemptible pools.

A market is the unit of server selection in Flint (§3.1.2): each spot pool
has its own price process and therefore its own mean price and MTTF at a
given bid.  On-demand capacity is modelled, exactly as in the paper, as a
spot pool with a constant price and an infinite MTTF.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.simulation.clock import DAY, HOUR
from repro.simulation.rng import SeededRNG, derive_seed
from repro.traces.gce import PreemptibleLifetimeModel
from repro.traces.price_trace import PriceTrace
from repro.traces.generators import constant_trace
from repro.traces.stats import estimate_mttf

#: How far into the trace the simulation's t=0 sits, so markets always have
#: price history to estimate MTTFs from (EC2 publishes 3 months of history).
DEFAULT_HISTORY_OFFSET = 14 * DAY


class Market:
    """Base class for a pool of rentable servers with a price process."""

    def __init__(
        self,
        market_id: str,
        trace: PriceTrace,
        on_demand_price: float,
        history_offset: float = DEFAULT_HISTORY_OFFSET,
    ):
        if on_demand_price <= 0:
            raise ValueError("on_demand_price must be positive")
        self.market_id = market_id
        self.trace = trace
        self.on_demand_price = float(on_demand_price)
        self.history_offset = float(history_offset)
        #: Observability hook (attribute-wired by the engine context);
        #: None keeps the market free of any tracing branch.
        self.obs = None

    def note_revocation_draw(
        self, launch_time: float, instance_key: str, revocation_time: Optional[float]
    ) -> None:
        """First-class hook: the provider stamped an instance's fate here.

        Emits one instant event per granted instance recording the market's
        price at launch and the pre-drawn revocation time (None = never),
        which makes revocation storms visible on the market lane of a trace
        before any worker dies.
        """
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        from repro.obs import SpanEvent

        obs.bus.emit(SpanEvent(
            kind="market",
            name=self.market_id,
            start=launch_time,
            status="instant",
            attrs={
                "instance": instance_key,
                "revocation_time": revocation_time,
                "price": self.current_price(launch_time),
            },
        ))

    def _trace_time(self, sim_time: float) -> float:
        return sim_time + self.history_offset

    def current_price(self, t: float) -> float:
        """Spot price in effect at simulation time ``t``."""
        return self.trace.price_at(self._trace_time(t))

    def prices_at(self, ts) -> np.ndarray:
        """Vectorised :meth:`current_price` over an array of sim times."""
        return self.trace.prices_at(np.asarray(ts, dtype=float) + self.history_offset)

    def mean_recent_price(self, t: float, window: float = 7 * DAY) -> float:
        """Time-weighted mean price over the trailing ``window`` seconds."""
        end = self._trace_time(t)
        start = max(0.0, end - window)
        return self.trace.mean_price(start, end)

    def is_available(self, t: float, bid: float) -> bool:
        """True when a bid of ``bid`` would currently be granted."""
        return self.current_price(t) <= bid

    def estimate_mttf(self, bid: float, t: float, window: float = 14 * DAY) -> float:
        """MTTF (seconds) at ``bid``, estimated from the trailing price history.

        This is what Flint's node manager computes from EC2's published
        history; it looks only backwards from ``t``.
        """
        raise NotImplementedError

    def revocation_time_for(self, launch_time: float, bid: float, instance_key: str) -> Optional[float]:
        """Absolute simulation time at which an instance launched now dies.

        Returns None when the instance is never revoked by the provider.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.market_id!r})"


class SpotMarket(Market):
    """An EC2-style spot pool: revocation when price strictly exceeds the bid."""

    #: Granularity of MTTF estimate caching; estimates change slowly.
    _MTTF_CACHE_REFRESH = 1 * DAY

    #: LRU bound on cached MTTF estimates.  Month-long sweeps with
    #: per-selection bids mint a fresh (bid, day, window) key per probe;
    #: unbounded, the cache grew with the sweep.  The working set at any sim
    #: instant is a handful of bids × windows, so a small bound keeps every
    #: hot entry while pinning memory.
    _MTTF_CACHE_MAX = 128

    def __init__(
        self,
        market_id: str,
        trace: PriceTrace,
        on_demand_price: float,
        history_offset: float = DEFAULT_HISTORY_OFFSET,
    ):
        super().__init__(market_id, trace, on_demand_price, history_offset)
        self._mttf_cache: OrderedDict = OrderedDict()

    def estimate_mttf(self, bid: float, t: float, window: float = 14 * DAY) -> float:
        key = (round(bid, 6), int(self._trace_time(t) // self._MTTF_CACHE_REFRESH), window)
        cached = self._mttf_cache.get(key)
        if cached is not None:
            self._mttf_cache.move_to_end(key)
            return cached
        end = self._trace_time(t)
        start = max(0.0, end - window)
        value = estimate_mttf(
            self.trace, bid, sample_interval=HOUR, start=start, end=end
        )
        self._mttf_cache[key] = value
        while len(self._mttf_cache) > self._MTTF_CACHE_MAX:
            self._mttf_cache.popitem(last=False)
        return value

    def revocation_time_for(self, launch_time: float, bid: float, instance_key: str) -> Optional[float]:
        exceed = self.trace.next_exceedance(self._trace_time(launch_time), bid)
        if exceed is None:
            return None
        return exceed - self.history_offset


class OnDemandMarket(Market):
    """Non-revocable capacity at a fixed price; an infinite-MTTF spot pool."""

    def __init__(self, market_id: str, on_demand_price: float, horizon: float = 365 * DAY):
        super().__init__(
            market_id,
            constant_trace(on_demand_price, horizon=horizon),
            on_demand_price,
            history_offset=0.0,
        )

    def estimate_mttf(self, bid: float, t: float, window: float = 14 * DAY) -> float:
        return float("inf")

    def revocation_time_for(self, launch_time: float, bid: float, instance_key: str) -> Optional[float]:
        return None

    def is_available(self, t: float, bid: float) -> bool:
        return True


class PreemptibleMarket(Market):
    """A GCE-style pool: fixed price, no bids, lifetime capped at 24 hours.

    Revocations are random (not price-driven) but reproducible: each instance
    key hashes to its own lifetime draw, so re-running a simulation replays
    identical revocations.
    """

    def __init__(
        self,
        market_id: str,
        fixed_price: float,
        on_demand_price: float,
        lifetime_model: Optional[PreemptibleLifetimeModel] = None,
        seed: int = 0,
        horizon: float = 365 * DAY,
    ):
        super().__init__(
            market_id,
            constant_trace(fixed_price, horizon=horizon),
            on_demand_price,
            history_offset=0.0,
        )
        self.fixed_price = float(fixed_price)
        self.lifetime_model = lifetime_model or PreemptibleLifetimeModel()
        self._seed = seed

    def estimate_mttf(self, bid: float, t: float, window: float = 14 * DAY) -> float:
        return self.lifetime_model.mttf

    def revocation_time_for(self, launch_time: float, bid: float, instance_key: str) -> Optional[float]:
        rng = SeededRNG(derive_seed(self._seed, self.market_id), instance_key)
        return launch_time + self.lifetime_model.sample_lifetime(rng)

    def is_available(self, t: float, bid: float) -> bool:
        # GCE has no bidding: preemptible capacity is granted at the fixed
        # price whenever requested.
        return True
