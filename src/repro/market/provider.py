"""The cloud provider: grants, revokes, and bills instances.

The provider is the only component allowed to mint instances.  Because spot
revocation is deterministic given a trace and a bid, the provider stamps each
instance with its future revocation time at launch; the cluster layer turns
that into simulator events (a warning event 120 seconds ahead, then the kill).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from repro.market.billing import ec2_hourly_cost, gce_preemptible_cost, on_demand_cost
from repro.market.instance import Instance, InstanceState
from repro.market.market import Market, OnDemandMarket, PreemptibleMarket
from repro.simulation.clock import MINUTE

#: EC2 gives a two-minute revocation warning (§2.1); GCE gives 30 seconds.
REVOCATION_WARNING = 2 * MINUTE
GCE_REVOCATION_WARNING = 30.0

#: Typical delay to acquire and boot a replacement server (§3.1.2: "the delay
#: rd for replacing a server is a constant — for EC2, it is typically two
#: minutes").
REPLACEMENT_DELAY = 2 * MINUTE


class MarketUnavailableError(RuntimeError):
    """Raised when a bid is below the current spot price at acquisition."""


class CloudProvider:
    """A collection of markets plus instance lifecycle and cost accounting."""

    def __init__(self, markets: Iterable[Market], replacement_delay: float = REPLACEMENT_DELAY):
        self.markets: Dict[str, Market] = {}
        for market in markets:
            if market.market_id in self.markets:
                raise ValueError(f"duplicate market id {market.market_id!r}")
            self.markets[market.market_id] = market
        self.replacement_delay = float(replacement_delay)
        self.instances: List[Instance] = []
        self._id_counter = itertools.count()
        #: Observability hook (attribute-wired by the engine context): final
        #: instance bills land as per-market spend counters and instance
        #: spans.  None keeps billing paths free of any tracing branch.
        self.obs = None

    def add_market(self, market: Market) -> None:
        """Register an additional market."""
        if market.market_id in self.markets:
            raise ValueError(f"duplicate market id {market.market_id!r}")
        self.markets[market.market_id] = market

    def market(self, market_id: str) -> Market:
        """Look up a market by id (raises KeyError on unknown ids)."""
        return self.markets[market_id]

    def spot_markets(self) -> List[Market]:
        """All revocable markets (excludes on-demand pools)."""
        return [m for m in self.markets.values() if not isinstance(m, OnDemandMarket)]

    def acquire(
        self,
        market_id: str,
        bid: float,
        t: float,
        count: int = 1,
        instance_type_name: Optional[str] = None,
    ) -> List[Instance]:
        """Rent ``count`` instances from one market at time ``t``.

        Raises:
            MarketUnavailableError: if the current price exceeds the bid.
        """
        market = self.market(market_id)
        if not market.is_available(t, bid):
            raise MarketUnavailableError(
                f"{market_id}: price {market.current_price(t):.4f} above bid {bid:.4f}"
            )
        granted = []
        for _ in range(count):
            instance_id = f"i-{next(self._id_counter):06d}"
            revocation = market.revocation_time_for(t, bid, instance_id)
            instance = Instance(
                instance_id=instance_id,
                market_id=market_id,
                instance_type_name=instance_type_name or "r3.large",
                bid=bid,
                launch_time=t,
                revocation_time=revocation,
            )
            self.instances.append(instance)
            granted.append(instance)
            market.note_revocation_draw(t, instance_id, revocation)
        return granted

    def terminate(self, instance: Instance, t: float) -> float:
        """User-initiated termination; returns the instance's final cost."""
        instance.mark_terminated(t)
        instance.cost = self._bill(instance, t, revoked_by_provider=False)
        self._record_spend(instance, t, revoked_by_provider=False)
        return instance.cost

    def revoke(self, instance: Instance, t: float) -> float:
        """Provider-initiated revocation; returns the instance's final cost."""
        instance.mark_revoked(t)
        instance.cost = self._bill(instance, t, revoked_by_provider=True)
        self._record_spend(instance, t, revoked_by_provider=True)
        return instance.cost

    def _record_spend(self, instance: Instance, end: float, revoked_by_provider: bool) -> None:
        """Observability: one final bill -> spend counter + instance span."""
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        from repro.obs import SpanEvent

        obs.metrics.inc(f"market.spend.{instance.market_id}", instance.cost)
        obs.bus.emit(SpanEvent(
            kind="instance",
            name=instance.instance_id,
            start=instance.launch_time,
            end=end,
            status="revoked" if revoked_by_provider else "terminated",
            attrs={"market": instance.market_id, "cost": instance.cost},
        ))

    def accrued_cost(self, instance: Instance, now: float) -> float:
        """Cost of an instance as of ``now`` (final cost once it has ended)."""
        if instance.state != InstanceState.RUNNING:
            return instance.cost
        return self._bill(instance, now, revoked_by_provider=False)

    def total_cost(self, now: float) -> float:
        """Aggregate cost of every instance ever rented, as of ``now``."""
        return sum(self.accrued_cost(inst, now) for inst in self.instances)

    def running_instances(self) -> List[Instance]:
        """All instances currently in the RUNNING state."""
        return [inst for inst in self.instances if inst.is_running]

    def _bill(self, instance: Instance, end: float, revoked_by_provider: bool) -> float:
        market = self.market(instance.market_id)
        if isinstance(market, OnDemandMarket):
            return on_demand_cost(market.on_demand_price, instance.launch_time, end)
        if isinstance(market, PreemptibleMarket):
            return gce_preemptible_cost(
                market.fixed_price, instance.launch_time, end, revoked_by_provider
            )
        return ec2_hourly_cost(market, instance.launch_time, end, revoked_by_provider)
