"""The cloud provider: grants, revokes, and bills instances.

The provider is the only component allowed to mint instances.  Because spot
revocation is deterministic given a trace and a bid, the provider stamps each
instance with its future revocation time at launch; the cluster layer turns
that into simulator events (a warning event 120 seconds ahead, then the kill).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.market.billing import (
    BILLING_EPSILON,
    billed_hour_prices,
    ec2_hourly_cost,
    gce_preemptible_cost,
    on_demand_cost,
)
from repro.market.instance import Instance, InstanceState
from repro.market.market import Market, OnDemandMarket, PreemptibleMarket
from repro.market.piecewise import PiecewiseConstantFunction
from repro.simulation.clock import HOUR, MINUTE

#: EC2 gives a two-minute revocation warning (§2.1); GCE gives 30 seconds.
REVOCATION_WARNING = 2 * MINUTE
GCE_REVOCATION_WARNING = 30.0

#: Typical delay to acquire and boot a replacement server (§3.1.2: "the delay
#: rd for replacing a server is a constant — for EC2, it is typically two
#: minutes").
REPLACEMENT_DELAY = 2 * MINUTE


class MarketUnavailableError(RuntimeError):
    """Raised when a bid is below the current spot price at acquisition."""


class CloudProvider:
    """A collection of markets plus instance lifecycle and cost accounting.

    Besides the per-instance books (``instances`` and ``accrued_cost``), the
    provider maintains an *analytic ledger*: piecewise-constant breakpoint
    curves updated incrementally at acquire/revoke/terminate —

    - ``capacity``: running-instance count over time (plus one curve per
      market), answering :meth:`capacity_at` in O(log breakpoints);
    - ``cost_per_hour``: the settled $/hour burn rate, where every *charged*
      billing quantum (an EC2 hour, an on-demand hour, a GCE billed span)
      contributes its price over the quantum's full extent;
    - a cumulative committed-charge curve placing each settled bill's dollars
      at the instant the charge accrues (EC2/on-demand hour starts, GCE
      settlement at instance end), answering :meth:`cost_between` without
      re-billing ended instances.

    The ledger agrees with the per-instance books to float tolerance (curve
    sums re-associate additions), not bit-for-bit; the per-instance path
    remains the ground truth the equivalence tests compare against.
    """

    def __init__(self, markets: Iterable[Market], replacement_delay: float = REPLACEMENT_DELAY):
        self.markets: Dict[str, Market] = {}
        for market in markets:
            if market.market_id in self.markets:
                raise ValueError(f"duplicate market id {market.market_id!r}")
            self.markets[market.market_id] = market
        self.replacement_delay = float(replacement_delay)
        self.instances: List[Instance] = []
        self._id_counter = itertools.count()
        #: Observability hook (attribute-wired by the engine context): final
        #: instance bills land as per-market spend counters and instance
        #: spans.  None keeps billing paths free of any tracing branch.
        self.obs = None
        # -- analytic ledger --------------------------------------------
        #: Total running-instance count over time.
        self.capacity = PiecewiseConstantFunction()
        self._market_capacity: Dict[str, PiecewiseConstantFunction] = {
            market_id: PiecewiseConstantFunction() for market_id in self.markets
        }
        #: Settled $/hour spend rate (query dollars between two instants as
        #: ``cost_per_hour.integral(a, b, transform=hour_transform)``).
        self.cost_per_hour = PiecewiseConstantFunction()
        # Cumulative dollars committed by ended instances, stepped at each
        # charge instant, plus a scalar running total for O(1) total_cost.
        self._committed = PiecewiseConstantFunction()
        self._committed_total = 0.0
        self._running: Dict[str, Instance] = {}

    def add_market(self, market: Market) -> None:
        """Register an additional market."""
        if market.market_id in self.markets:
            raise ValueError(f"duplicate market id {market.market_id!r}")
        self.markets[market.market_id] = market
        self._market_capacity[market.market_id] = PiecewiseConstantFunction()

    def market(self, market_id: str) -> Market:
        """Look up a market by id (raises KeyError on unknown ids)."""
        return self.markets[market_id]

    def spot_markets(self) -> List[Market]:
        """All revocable markets (excludes on-demand pools)."""
        return [m for m in self.markets.values() if not isinstance(m, OnDemandMarket)]

    def acquire(
        self,
        market_id: str,
        bid: float,
        t: float,
        count: int = 1,
        instance_type_name: Optional[str] = None,
    ) -> List[Instance]:
        """Rent ``count`` instances from one market at time ``t``.

        Raises:
            MarketUnavailableError: if the current price exceeds the bid.
        """
        market = self.market(market_id)
        if not market.is_available(t, bid):
            raise MarketUnavailableError(
                f"{market_id}: price {market.current_price(t):.4f} above bid {bid:.4f}"
            )
        granted = []
        for _ in range(count):
            instance_id = f"i-{next(self._id_counter):06d}"
            revocation = market.revocation_time_for(t, bid, instance_id)
            instance = Instance(
                instance_id=instance_id,
                market_id=market_id,
                instance_type_name=instance_type_name or "r3.large",
                bid=bid,
                launch_time=t,
                revocation_time=revocation,
            )
            self.instances.append(instance)
            granted.append(instance)
            self._running[instance_id] = instance
            market.note_revocation_draw(t, instance_id, revocation)
        self.capacity.add_delta(t, float(count))
        self._market_capacity[market_id].add_delta(t, float(count))
        return granted

    def terminate(self, instance: Instance, t: float) -> float:
        """User-initiated termination; returns the instance's final cost."""
        instance.mark_terminated(t)
        instance.cost = self._bill(instance, t, revoked_by_provider=False)
        self._settle(instance, t, revoked_by_provider=False)
        self._record_spend(instance, t, revoked_by_provider=False)
        return instance.cost

    def revoke(self, instance: Instance, t: float) -> float:
        """Provider-initiated revocation; returns the instance's final cost."""
        instance.mark_revoked(t)
        instance.cost = self._bill(instance, t, revoked_by_provider=True)
        self._settle(instance, t, revoked_by_provider=True)
        self._record_spend(instance, t, revoked_by_provider=True)
        return instance.cost

    # -- analytic ledger maintenance ------------------------------------
    def _settle(self, instance: Instance, end: float, revoked_by_provider: bool) -> None:
        """Fold one ended instance into the breakpoint curves.

        Called exactly once per instance, at its end; every curve update is
        an O(1) delta-log append, so a month-long 10k-node simulation pays
        nothing per event beyond the appends (the curves compile lazily at
        the next query).
        """
        self._running.pop(instance.instance_id, None)
        self.capacity.add_delta(end, -1.0)
        self._market_capacity[instance.market_id].add_delta(end, -1.0)
        self._committed_total += instance.cost
        market = self.market(instance.market_id)
        start = instance.launch_time
        if isinstance(market, OnDemandMarket):
            hours = int(math.ceil((end - start) / HOUR - BILLING_EPSILON / HOUR))
            if hours > 0:
                h_times = start + HOUR * np.arange(hours)
                prices = np.full(hours, market.on_demand_price)
                self._charge_quanta(h_times, prices, HOUR)
        elif isinstance(market, PreemptibleMarket):
            if instance.cost > 0.0:
                # GCE settles per-minute at instance end; the billed span can
                # outrun ``end`` (10-minute minimum on user termination), so
                # recover it from the bill itself.
                billed_span = instance.cost / market.fixed_price * HOUR
                self._committed.add_delta(end, instance.cost)
                self.cost_per_hour.add_delta(start, market.fixed_price)
                self.cost_per_hour.add_delta(start + billed_span, -market.fixed_price)
        else:
            prices = self._ec2_charged_hour_prices(market, start, end, revoked_by_provider)
            if prices.size:
                h_times = start + HOUR * np.arange(prices.size)
                self._charge_quanta(h_times, prices, HOUR)

    def _charge_quanta(self, starts: np.ndarray, prices: np.ndarray, span: float) -> None:
        """Record charged billing quanta: a committed-dollar impulse at each
        quantum start, and the quantum's price on the rate curve for its
        duration."""
        self._committed.add_deltas(starts, prices)
        self.cost_per_hour.add_deltas(starts, prices)
        self.cost_per_hour.add_deltas(starts + span, -prices)

    @staticmethod
    def _ec2_charged_hour_prices(
        market: Market, start: float, end: float, revoked_by_provider: bool
    ) -> np.ndarray:
        """Price of every hour EC2 charges for ``[start, end]`` — the same
        hours and prices ``ec2_hourly_cost`` sums (partial hour free on
        provider revocation, charged in full otherwise)."""
        if end <= start:
            return np.empty(0)
        full_hours = int(math.floor((end - start + BILLING_EPSILON) / HOUR))
        prices = billed_hour_prices(market, start, full_hours)
        partial = (end - start) - full_hours * HOUR
        if partial > BILLING_EPSILON and not revoked_by_provider:
            prices = np.append(
                prices, market.current_price(start + full_hours * HOUR)
            )
        return prices

    def _record_spend(self, instance: Instance, end: float, revoked_by_provider: bool) -> None:
        """Observability: one final bill -> spend counter + instance span."""
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        from repro.obs import SpanEvent

        obs.metrics.inc(f"market.spend.{instance.market_id}", instance.cost)
        obs.bus.emit(SpanEvent(
            kind="instance",
            name=instance.instance_id,
            start=instance.launch_time,
            end=end,
            status="revoked" if revoked_by_provider else "terminated",
            attrs={"market": instance.market_id, "cost": instance.cost},
        ))

    def accrued_cost(self, instance: Instance, now: float) -> float:
        """Cost of an instance as of ``now`` (final cost once it has ended)."""
        if instance.state != InstanceState.RUNNING:
            return instance.cost
        return self._bill(instance, now, revoked_by_provider=False)

    def total_cost(self, now: float) -> float:
        """Aggregate cost of every instance ever rented, as of ``now``.

        Ended instances are served from the committed-charge scalar (O(1),
        never re-billed); only the currently running set is billed live, so
        the query scales with cluster size rather than with every instance a
        month-long simulation ever rented.
        """
        return self._committed_total + sum(
            self._bill(inst, now, revoked_by_provider=False)
            for inst in self._running.values()
        )

    def cost_between(self, a: float, b: float) -> float:
        """Dollars charged over the window ``[a, b]``.

        Settled charges come from the committed-charge curve (two
        ``searchsorted`` lookups); charges are attributed to the instant they
        accrue — EC2 and on-demand hours at each billed hour's start, GCE
        bills at the instance's settlement (its end).  Running instances add
        their in-window accrual on top, billed as if they were terminated at
        ``b`` (the in-progress EC2/on-demand hour lands at its hour start,
        GCE accrues continuously).  ``cost_between(0, now)`` therefore agrees
        with :meth:`total_cost` to float tolerance.
        """
        if b < a:
            raise ValueError("end must be >= start")
        settled = self._committed.call(b) - self._committed.call_before(a)
        live = 0.0
        for inst in self._running.values():
            live += self._running_charges_in_window(inst, a, b)
        return settled + live

    def _running_charges_in_window(self, instance: Instance, a: float, b: float) -> float:
        """Charges a still-running instance accrues at instants within [a, b]."""
        start = instance.launch_time
        if b <= start:
            return 0.0
        market = self.market(instance.market_id)
        if isinstance(market, PreemptibleMarket):
            # Per-minute billing accrues continuously: window charge is the
            # difference of accruals-to-date at the window edges.
            upper = gce_preemptible_cost(market.fixed_price, start, b, False)
            lower = (
                gce_preemptible_cost(market.fixed_price, start, a, False)
                if a > start
                else 0.0
            )
            return upper - lower
        if isinstance(market, OnDemandMarket):
            hours = int(math.ceil((b - start) / HOUR - BILLING_EPSILON / HOUR))
            if hours <= 0:
                return 0.0
            h_times = start + HOUR * np.arange(hours)
            return float(market.on_demand_price * np.count_nonzero(h_times >= a))
        prices = self._ec2_charged_hour_prices(market, start, b, False)
        if prices.size == 0:
            return 0.0
        h_times = start + HOUR * np.arange(prices.size)
        return float(prices[h_times >= a].sum())

    def capacity_at(self, t: float, market_id: Optional[str] = None) -> int:
        """Number of instances running at ``t`` — cluster-wide, or in one
        market — in O(log breakpoints) off the incremental capacity curves."""
        if market_id is None:
            return int(round(self.capacity.call(t)))
        return int(round(self._market_capacity[market_id].call(t)))

    def running_instances(self) -> List[Instance]:
        """All instances currently in the RUNNING state."""
        return list(self._running.values())

    def _bill(self, instance: Instance, end: float, revoked_by_provider: bool) -> float:
        market = self.market(instance.market_id)
        if isinstance(market, OnDemandMarket):
            return on_demand_cost(market.on_demand_price, instance.launch_time, end)
        if isinstance(market, PreemptibleMarket):
            return gce_preemptible_cost(
                market.fixed_price, instance.launch_time, end, revoked_by_provider
            )
        return ec2_hourly_cost(market, instance.launch_time, end, revoked_by_provider)
