"""Piecewise-constant functions over sorted NumPy breakpoint arrays.

The analytic billing/market plane represents every aggregate the long-horizon
simulator cares about — cluster capacity, per-market capacity, $/hour spend
rate, cumulative committed dollars — as a :class:`PiecewiseConstantFunction`:
a right-continuous step function mutated by *deltas* at breakpoints.  The
idiom follows Yelp's clusterman simulator: events append deltas in O(1),
queries compile the delta log once into sorted NumPy arrays with cached
cumulative integrals, and from then on every evaluation or window integral is
one ``searchsorted`` — O(log breakpoints) instead of a walk over instances ×
billed hours.

Mutation never pays the sort: ``add_delta`` appends to a raw log and marks
the compiled arrays dirty.  The first query after a burst of mutations
rebuilds (O(n log n) once), which matches the simulator's access pattern —
long stretches of acquire/revoke/terminate events, then a batch of cost/
capacity queries when a figure or gate wants numbers.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[float, Sequence[float], np.ndarray]

#: Seconds per hour, for :func:`hour_transform`.
_SECONDS_PER_HOUR = 3600.0


def hour_transform(seconds: ArrayLike) -> ArrayLike:
    """Convert a measure in seconds into hours.

    ``PiecewiseConstantFunction.integral`` integrates *value × seconds*; when
    the curve's value is a rate in $/hour (the provider's ``cost_per_hour``),
    pass this transform so the integral comes back in dollars:
    ``f.integral(a, b, transform=hour_transform)``.
    """
    if isinstance(seconds, np.ndarray):
        return seconds / _SECONDS_PER_HOUR
    return seconds / _SECONDS_PER_HOUR


class PiecewiseConstantFunction:
    """A right-continuous step function built from a log of deltas.

    The function has value ``initial_value`` before the first breakpoint; a
    delta at time ``t`` takes effect *at* ``t`` (so ``call(t)`` includes it).
    Multiple deltas at the same time accumulate.
    """

    __slots__ = ("initial_value", "_log_times", "_log_deltas", "_xs", "_values",
                 "_cumint", "_dirty")

    def __init__(self, initial_value: float = 0.0):
        self.initial_value = float(initial_value)
        self._log_times: list = []
        self._log_deltas: list = []
        self._xs = np.empty(0)
        self._values = np.empty(0)
        self._cumint = np.empty(1)
        self._dirty = True

    # -- mutation (O(1) amortised; defers sorting to the next query) --------
    def add_delta(self, t: float, delta: float) -> None:
        """Shift the function by ``delta`` for all times ``>= t``."""
        if delta != 0.0:
            self._log_times.append(float(t))
            self._log_deltas.append(float(delta))
            self._dirty = True

    def add_deltas(self, times: ArrayLike, deltas: ArrayLike) -> None:
        """Batch :meth:`add_delta` (one ended instance's whole hour grid)."""
        times = np.asarray(times, dtype=float)
        deltas = np.asarray(deltas, dtype=float)
        if times.shape != deltas.shape:
            raise ValueError("times and deltas must have matching shapes")
        if times.size:
            self._log_times.extend(times.tolist())
            self._log_deltas.extend(deltas.tolist())
            self._dirty = True

    def set_value(self, t: float, value: float) -> None:
        """Make the function equal ``value`` at ``t``.

        Implemented as a delta of ``value - call(t)``, so breakpoints after
        ``t`` keep their (relative) deltas and shift with the new level.
        """
        self.add_delta(t, float(value) - self.call(t))

    # -- compilation --------------------------------------------------------
    def _compile(self) -> None:
        if not self._dirty:
            return
        if self._log_times:
            times = np.asarray(self._log_times, dtype=float)
            deltas = np.asarray(self._log_deltas, dtype=float)
            order = np.argsort(times, kind="stable")
            times = times[order]
            deltas = deltas[order]
            # Coalesce duplicate breakpoints so the compiled arrays stay
            # minimal (month-long sweeps emit many same-instant deltas).
            keep = np.empty(len(times), dtype=bool)
            keep[:-1] = times[1:] != times[:-1]
            keep[-1] = True
            if not keep.all():
                segment_ids = np.cumsum(np.concatenate([[0], keep[:-1]]))
                summed = np.zeros(int(segment_ids[-1]) + 1)
                np.add.at(summed, segment_ids, deltas)
                times = times[keep]
                deltas = summed
            self._xs = times
            self._values = self.initial_value + np.cumsum(deltas)
        else:
            self._xs = np.empty(0)
            self._values = np.empty(0)
        # cumint[i] = integral of the function over [xs[0], xs[i]].
        if len(self._xs) > 1:
            widths = np.diff(self._xs)
            self._cumint = np.concatenate(
                [[0.0], np.cumsum(self._values[:-1] * widths)]
            )
        else:
            self._cumint = np.zeros(max(len(self._xs), 1))
        self._dirty = False

    # -- queries ------------------------------------------------------------
    @property
    def breakpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, values)``: sorted breakpoint instants and the value in
        effect from each one (copies; safe to mutate)."""
        self._compile()
        return self._xs.copy(), self._values.copy()

    def __len__(self) -> int:
        self._compile()
        return len(self._xs)

    def call(self, t: float) -> float:
        """Value in effect at time ``t``."""
        self._compile()
        if len(self._xs) == 0 or t < self._xs[0]:
            return self.initial_value
        idx = int(np.searchsorted(self._xs, t, side="right")) - 1
        return float(self._values[idx])

    __call__ = call

    def call_before(self, t: float) -> float:
        """Value in effect immediately *before* ``t`` (excludes deltas at
        exactly ``t``; with a cumulative-charge curve, ``call(b) -
        call_before(a)`` totals the charges landing inside ``[a, b]``)."""
        self._compile()
        if len(self._xs) == 0 or t <= self._xs[0]:
            return self.initial_value
        idx = int(np.searchsorted(self._xs, t, side="left")) - 1
        return float(self._values[idx])

    def values(self, ts: ArrayLike) -> np.ndarray:
        """Vectorised :meth:`call` over an array of query times."""
        self._compile()
        ts = np.asarray(ts, dtype=float)
        if len(self._xs) == 0:
            return np.full(ts.shape, self.initial_value)
        idx = np.searchsorted(self._xs, ts, side="right") - 1
        out = np.where(idx >= 0, self._values[np.maximum(idx, 0)],
                       self.initial_value)
        return out

    def _antiderivative(self, ts: np.ndarray) -> np.ndarray:
        """Integral of the function over ``[xs[0], t]`` for each ``t``
        (extends linearly with ``initial_value`` before the first breakpoint)."""
        if len(self._xs) == 0:
            return self.initial_value * ts
        idx = np.searchsorted(self._xs, ts, side="right") - 1
        before = idx < 0
        idx_c = np.maximum(idx, 0)
        out = self._cumint[idx_c] + self._values[idx_c] * (ts - self._xs[idx_c])
        if before.any():
            out = np.where(before, self.initial_value * (ts - self._xs[0]), out)
        return out

    def integral(
        self,
        start: float,
        end: float,
        transform: Optional[Callable[[float], float]] = None,
    ) -> float:
        """Integral of the function over ``[start, end]`` in value·seconds.

        ``transform`` maps the measure (pass :func:`hour_transform` to turn a
        $/hour rate curve's integral into dollars).
        """
        if end < start:
            raise ValueError("end must be >= start")
        self._compile()
        pair = self._antiderivative(np.array([start, end]))
        raw = float(pair[1] - pair[0])
        return raw if transform is None else float(transform(raw))

    def integrals(
        self,
        starts: ArrayLike,
        ends: ArrayLike,
        transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> np.ndarray:
        """Vectorised window integrals (multi-week sweeps batched over start
        times make one call here instead of a Python loop)."""
        self._compile()
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        if np.any(ends < starts):
            raise ValueError("end must be >= start")
        raw = self._antiderivative(ends) - self._antiderivative(starts)
        return raw if transform is None else transform(raw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self._compile()
        return (
            f"PiecewiseConstantFunction(breakpoints={len(self._xs)}, "
            f"initial={self.initial_value})"
        )
