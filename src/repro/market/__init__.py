"""Cloud market simulation: spot pools, instances, billing, and a provider.

This models the economic substrate Flint runs against.  A
:class:`~repro.market.market.SpotMarket` wraps a price trace and answers the
questions Flint's node manager asks of EC2: the current price, the recent
mean price, the MTTF at a bid, and — because revocation in a bid-based market
is deterministic given the trace — the exact future revocation instant of an
instance.  The :class:`~repro.market.provider.CloudProvider` owns a set of
markets, grants and revokes :class:`~repro.market.instance.Instance` objects,
and accounts costs using EC2-style hourly billing.
"""

from repro.market.market import (
    Market,
    OnDemandMarket,
    PreemptibleMarket,
    SpotMarket,
)
from repro.market.instance import Instance, InstanceState
from repro.market.billing import (
    billed_hour_prices,
    ec2_hourly_cost,
    gce_preemptible_cost,
    on_demand_cost,
)
from repro.market.piecewise import PiecewiseConstantFunction, hour_transform
from repro.market.provider import CloudProvider, REPLACEMENT_DELAY, REVOCATION_WARNING

__all__ = [
    "Market",
    "SpotMarket",
    "OnDemandMarket",
    "PreemptibleMarket",
    "Instance",
    "InstanceState",
    "PiecewiseConstantFunction",
    "hour_transform",
    "billed_hour_prices",
    "ec2_hourly_cost",
    "gce_preemptible_cost",
    "on_demand_cost",
    "CloudProvider",
    "REPLACEMENT_DELAY",
    "REVOCATION_WARNING",
]
