"""Instance lifecycle records.

An :class:`Instance` is a bookkeeping object: the provider stamps it with its
(deterministic) revocation time at launch, and billing reads its lifetime to
compute cost.  The compute side of a server lives in
:class:`repro.cluster.worker.Worker`, which holds a reference to its instance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class InstanceState(enum.Enum):
    """Lifecycle of a rented server."""

    RUNNING = "running"
    REVOKED = "revoked"  # provider-initiated
    TERMINATED = "terminated"  # user-initiated


@dataclass
class Instance:
    """One rented server in one market.

    Attributes:
        instance_id: unique id assigned by the provider.
        market_id: the spot pool the instance was drawn from.
        instance_type_name: catalog name (e.g. ``r3.large``).
        bid: the user's bid in $/hour (the on-demand price under Flint's
            default bidding policy).
        launch_time: simulation time the instance became usable.
        revocation_time: predetermined provider-kill instant; None if the
            market never revokes it within the trace.
    """

    instance_id: str
    market_id: str
    instance_type_name: str
    bid: float
    launch_time: float
    revocation_time: Optional[float] = None
    state: InstanceState = InstanceState.RUNNING
    end_time: Optional[float] = None
    cost: float = field(default=0.0)

    @property
    def is_running(self) -> bool:
        return self.state == InstanceState.RUNNING

    def warning_time(self, warning: float) -> Optional[float]:
        """When the revocation warning fires (EC2: 120s, GCE: 30s before)."""
        if self.revocation_time is None:
            return None
        return max(self.launch_time, self.revocation_time - warning)

    def lifetime(self, now: float) -> float:
        """Seconds the instance has been (or was) alive as of ``now``."""
        end = self.end_time if self.end_time is not None else now
        return max(0.0, end - self.launch_time)

    def mark_revoked(self, t: float) -> None:
        """Record a provider-initiated revocation at time ``t``."""
        if not self.is_running:
            raise RuntimeError(f"instance {self.instance_id} is already {self.state.value}")
        self.state = InstanceState.REVOKED
        self.end_time = t

    def mark_terminated(self, t: float) -> None:
        """Record a user-initiated termination at time ``t``."""
        if not self.is_running:
            raise RuntimeError(f"instance {self.instance_id} is already {self.state.value}")
        self.state = InstanceState.TERMINATED
        self.end_time = t
