"""Typed span events on the simulated clock.

A :class:`SpanEvent` is one observable fact about the engine's execution: a
task ran on a worker over ``[start, end]``, a shuffle bucket was fetched, a
partition was recomputed, an instance was billed.  Events carry *simulated*
timestamps (seconds) — the trace is a pure function of the run, so two runs
of the same seed produce identical event streams and traces are diffable.

The :class:`EventBus` is the collection point.  Subsystems hold a reference
to the application's bus (attribute-wired, like the fault-injection points —
never monkeypatched) and guard every emission with ``enabled``, so the
disabled hot path costs one attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Event kinds the engine emits.  Exporters and the trace-book invariant key
#: off these strings; new kinds are free to appear, these are the core set.
EVENT_KINDS = (
    "job",            # one action, submission -> retirement
    "stage",          # a shuffle's map side became complete (instant)
    "task",           # one dispatched task, dispatch -> completion/loss
    "checkpoint-write",  # a partition landed durably in the DFS (instant)
    "checkpoint-gc",  # ancestor checkpoints were garbage-collected (instant)
    "shuffle-fetch",  # one reduce task gathered its buckets (instant)
    "recompute",      # a previously seen partition was materialised again
    "query",          # one job-server query, arrival -> completion
    "worker",         # worker lifecycle (joined/warned/revoked/terminated)
    "instance",       # one billed instance, launch -> termination/revocation
    "market",         # a market-level fact (revocation draw at acquisition)
    "stream-batch",   # one micro-batch, scheduled deadline -> outputs done
)


@dataclass
class SpanEvent:
    """One timeline entry: a span (``end`` set) or an instant (``end`` None).

    Args:
        kind: event family (see :data:`EVENT_KINDS`).
        name: human-readable label (becomes the Chrome trace slice name).
        start: simulated start time in seconds.
        end: simulated end time; None marks an instant event.
        worker: worker id the event happened on (its trace lane), if any.
        job_id: owning job, if any (checkpoint writes are job-agnostic).
        pool: owning scheduler pool, if any.
        status: outcome tag — ``complete``/``lost``/``failed`` for spans,
            lifecycle words (``joined``, ``revoked``, ...) for worker events.
        attrs: free-form details (byte counts, partition ids, costs).
    """

    kind: str
    name: str
    start: float
    end: Optional[float] = None
    worker: Optional[str] = None
    job_id: Optional[int] = None
    pool: Optional[str] = None
    status: str = "complete"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 for instants)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable form (the JSONL export row)."""
        out: Dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "status": self.status,
        }
        if self.end is not None:
            out["end"] = self.end
        if self.worker is not None:
            out["worker"] = self.worker
        if self.job_id is not None:
            out["job_id"] = self.job_id
        if self.pool is not None:
            out["pool"] = self.pool
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class EventBus:
    """Ordered collector of :class:`SpanEvent`\\ s for one application.

    Emission order is completion order (the order effects land in the
    simulation), which is deterministic for a fixed seed.  Listeners fire
    synchronously on every emission; they must be observation-only.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: List[SpanEvent] = []
        self._listeners: List[Callable[[SpanEvent], None]] = []

    def emit(self, event: SpanEvent) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        self.events.append(event)
        for listener in self._listeners:
            listener(event)

    def add_listener(self, listener: Callable[[SpanEvent], None]) -> None:
        self._listeners.append(listener)

    def by_kind(self, kind: str) -> List[SpanEvent]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: Optional[str] = None, status: Optional[str] = None) -> int:
        """How many events match the given kind/status filters."""
        return sum(
            1
            for e in self.events
            if (kind is None or e.kind == kind)
            and (status is None or e.status == status)
        )

    def clear(self) -> None:
        self.events.clear()
