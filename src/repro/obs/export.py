"""Exporters: Chrome ``trace_event`` JSON and a flat JSONL event log.

The Chrome export loads directly into ``chrome://tracing`` / Perfetto and
lays events out as per-worker task timelines (one lane per worker, plus
driver lanes per pool and a market lane per billed market) — the paper's
Figure 3 recomputation storm becomes a visible wall of red ``recompute``
ticks and re-run task slices.  The JSONL export is one event per line for
replay and diffing.

Both exporters accept :class:`~repro.obs.events.SpanEvent` objects or their
``to_dict`` rows interchangeably (chaos reports carry the dict form).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.obs.events import SpanEvent

_EventLike = Union[SpanEvent, Dict[str, Any]]

#: Simulated seconds -> trace microseconds.
_US = 1_000_000

#: Event kinds rendered on the market process rather than the driver.
_MARKET_KINDS = ("instance", "market")


def _as_dict(event: _EventLike) -> Dict[str, Any]:
    return event.to_dict() if isinstance(event, SpanEvent) else event


def event_dicts(events: Iterable[_EventLike]) -> List[Dict[str, Any]]:
    """Normalised JSONL rows for an event stream."""
    return [_as_dict(e) for e in events]


def to_jsonl(events: Iterable[_EventLike]) -> str:
    """One compact JSON object per line, in emission order."""
    return "".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        for row in event_dicts(events)
    )


def write_jsonl(events: Iterable[_EventLike], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(events))


def _lane_for(row: Dict[str, Any]) -> Tuple[str, str]:
    """``(process, thread)`` a row renders on."""
    worker = row.get("worker")
    if worker is not None:
        return "workers", worker
    if row.get("kind") in _MARKET_KINDS:
        market = row.get("attrs", {}).get("market")
        return "market", market if market is not None else row.get("name", "market")
    pool = row.get("pool")
    return "driver", pool if pool is not None else "driver"


def to_chrome_trace(events: Iterable[_EventLike]) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON (object format with ``traceEvents``).

    Spans become complete events (``ph: "X"``), instants become instant
    events (``ph: "i"``); timestamps are simulated microseconds.  Processes
    and threads are named via metadata events so the viewer shows worker
    ids, pool names, and market ids instead of synthetic numbers.
    """
    trace_events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    for event in events:
        row = _as_dict(event)
        process, thread = _lane_for(row)
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
            trace_events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        lane = (process, thread)
        tid = tids.get(lane)
        if tid is None:
            tid = tids[lane] = sum(1 for p, _t in tids if p == process) + 1
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": thread},
            })
        args: Dict[str, Any] = {"status": row.get("status", "complete")}
        for key in ("job_id", "pool"):
            if row.get(key) is not None:
                args[key] = row[key]
        args.update(row.get("attrs", {}))
        entry: Dict[str, Any] = {
            "name": row["name"],
            "cat": row["kind"],
            "pid": pid,
            "tid": tid,
            "ts": round(row["start"] * _US, 3),
            "args": args,
        }
        if row.get("end") is not None:
            entry["ph"] = "X"
            entry["dur"] = round((row["end"] - row["start"]) * _US, 3)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[_EventLike], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(events), fh, indent=1)
        fh.write("\n")
