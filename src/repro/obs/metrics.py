"""Counters, gauges, and histograms over the simulated run.

One :class:`MetricsRegistry` per application.  Names are dotted paths with
any per-entity label folded into the last segment (``market.spend.us-east-1a``,
``pool.queue_delay.interactive``) — zero-dependency, no label cardinality
machinery.  Like the event bus, a disabled registry costs one attribute
check per call site.

Histogram percentiles use the same deterministic nearest-rank rule as the
job server's SLO report, so numbers line up across reports.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class Histogram:
    """A value list with nearest-rank percentiles (deterministic, exact)."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile, ``q`` in (0, 1]; None when empty."""
        if not self.values:
            return None
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        ordered = sorted(self.values)
        rank = max(1, -(-int(q * 1000) * len(ordered) // 1000))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, Optional[float]]:
        """Count/sum/extremes plus the p50/p95/p99 ladder."""
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.total / self.count,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one application."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a counter (no-op while disabled)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of a gauge (no-op while disabled)."""
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one sample to a histogram (no-op while disabled)."""
        if not self.enabled:
            return
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable view of everything recorded so far."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.histograms.items())
            },
        }
