"""``repro.obs``: zero-dependency tracing + metrics for the whole stack.

One :class:`Observability` object per application bundles the
:class:`~repro.obs.events.EventBus` (typed span events on the simulated
clock) and the :class:`~repro.obs.metrics.MetricsRegistry` (counters,
gauges, histograms).  :class:`~repro.engine.context.FlintContext` creates
it and attribute-wires it into every subsystem — scheduler, shuffle
manager, checkpoint registry, block managers, cluster, workers, markets,
provider, and job server — the same first-class hook-point pattern as the
fault injector, never monkeypatching.

Gating: tracing is **off by default**.  It turns on via the ``FLINT_TRACE``
environment variable (any value but empty/``0``/``false``, mirroring
``FLINT_PROFILE``) or by passing an enabled :class:`Observability` to the
context.  Every hook site guards on ``obs.enabled``, so the disabled hot
path costs one attribute check and the simulation's behaviour — event
order, charged time, results — is identical either way; emission is
observation-only by construction.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.obs.events import EVENT_KINDS, EventBus, SpanEvent
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "EVENT_KINDS",
    "EventBus",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "SpanEvent",
    "tracing_enabled_by_env",
]


def tracing_enabled_by_env() -> bool:
    """True when ``FLINT_TRACE`` requests engine-wide tracing."""
    return os.environ.get("FLINT_TRACE", "") not in ("", "0", "false")


class Observability:
    """The application's event bus + metrics registry, enabled as one unit."""

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = tracing_enabled_by_env()
        self.enabled = enabled
        self.bus = EventBus(enabled)
        self.metrics = MetricsRegistry(enabled)
        self._now_fn: Optional[Callable[[], float]] = None

    def bind_clock(self, now_fn: Callable[[], float]) -> None:
        """Attach the simulated clock so hook sites can stamp instants."""
        self._now_fn = now_fn

    def now(self) -> float:
        """Current simulated time (0.0 before a clock is bound)."""
        return self._now_fn() if self._now_fn is not None else 0.0
