"""Reusable experiment harnesses for the paper's systems figures.

The engine-level experiments (Figures 3, 6, 7, 8, 9) share one recipe: build
a deterministic cluster, cache a workload's input, optionally attach a
checkpointing manager, optionally inject concurrent revocations mid-run, and
measure the simulated running time.  This module packages that recipe so
each benchmark is a thin parameter sweep — and so downstream users can rerun
any experiment with their own parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.environment import Environment
from repro.core.ftmanager import FaultToleranceManager
from repro.engine.context import FlintContext
from repro.engine.costs import CostModel
from repro.market.market import OnDemandMarket
from repro.market.provider import CloudProvider
from repro.simulation.clock import HOUR
from repro.storage.dfs import DFSConfig

#: The engine-experiment substrate: non-revocable workers, so every failure
#: is injected explicitly and experiments are exactly repeatable.
_MARKET_ID = "od/r3.large"


def build_engine_context(
    num_workers: int = 10,
    seed: int = 0,
    dfs_config: Optional[DFSConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> FlintContext:
    """A fresh deterministic cluster for one experiment run."""
    provider = CloudProvider([OnDemandMarket(_MARKET_ID, 0.175)])
    env = Environment(provider, seed=seed, dfs_config=dfs_config)
    cluster = Cluster(env)
    ctx = FlintContext(env, cluster, cost_model)
    cluster.launch(_MARKET_ID, bid=0.175, count=num_workers)
    return ctx


@dataclass
class ExperimentRun:
    """Outcome of one measured workload execution."""

    runtime: float
    load_time: float
    result: Any = None
    checkpoint_partitions: int = 0
    checkpoint_bytes: int = 0
    tasks_lost: int = 0
    revocations: int = 0
    replacement_delay_share: float = 0.0


def run_batch_workload(
    workload_factory: Callable[[FlintContext], Any],
    num_workers: int = 10,
    seed: int = 0,
    checkpointing: str = "none",
    cluster_mttf: float = float("inf"),
    min_tau: float = 30.0,
    max_tau: Optional[float] = None,
    concurrent_failures: int = 0,
    failure_at: Optional[float] = None,
    replace_failures: bool = True,
    replacement_delay: float = 120.0,
    dfs_config: Optional[DFSConfig] = None,
    system_interval: Optional[float] = None,
) -> ExperimentRun:
    """Run one workload to completion under a failure/checkpoint scenario.

    Args:
        workload_factory: builds the workload from a context; the returned
            object must expose ``load()`` (cache inputs) and ``run()``.
        checkpointing: ``"none"`` (unmodified Spark), ``"flint"`` (the
            fault-tolerance manager), or ``"system"`` (whole-memory
            snapshots baseline).
        cluster_mttf: MTTF fed to the checkpointing policy (pins τ).
        concurrent_failures: how many workers to revoke simultaneously.
        failure_at: seconds into the measured run to inject the failures
            (required when ``concurrent_failures > 0``).
        replace_failures: whether replacements arrive after
            ``replacement_delay`` (the paper always replaces).
    """
    if concurrent_failures > 0 and failure_at is None:
        raise ValueError("failure_at is required when injecting failures")
    ctx = build_engine_context(num_workers, seed, dfs_config)
    manager = None
    if checkpointing == "flint":
        manager = FaultToleranceManager(
            ctx, lambda: cluster_mttf, min_tau=min_tau, max_tau=max_tau
        )
        manager.start()
    elif checkpointing == "system":
        from repro.baselines.system_checkpoint import SystemCheckpointManager

        manager = SystemCheckpointManager(
            ctx, lambda: cluster_mttf, min_tau=min_tau, interval=system_interval
        )
        manager.start()
    elif checkpointing != "none":
        raise ValueError(f"unknown checkpointing mode {checkpointing!r}")

    workload = workload_factory(ctx)
    t_start = ctx.now
    workload.load()
    load_time = ctx.now - t_start

    if concurrent_failures > 0:
        def inject(event):
            victims = ctx.cluster.live_workers()[:concurrent_failures]
            ctx.cluster.force_revoke(victims)
            if replace_failures:
                ctx.cluster.launch(
                    _MARKET_ID, 0.175, count=len(victims), delay=replacement_delay
                )

        ctx.env.schedule_in(failure_at, "failure-injection", callback=inject)

    t_run = ctx.now
    result = workload.run()
    runtime = ctx.now - t_run
    if manager is not None:
        manager.stop()
    reg = ctx.checkpoints
    return ExperimentRun(
        runtime=runtime,
        load_time=load_time,
        result=result,
        checkpoint_partitions=reg.partitions_written,
        checkpoint_bytes=reg.bytes_written,
        tasks_lost=ctx.scheduler.stats.tasks_lost,
        revocations=len(ctx.cluster.revocation_log),
        replacement_delay_share=(
            replacement_delay / runtime if concurrent_failures and runtime > 0 else 0.0
        ),
    )


def checkpointing_tax(
    workload_factory: Callable[[FlintContext], Any],
    cluster_mttf: float,
    num_workers: int = 10,
    seed: int = 0,
    mode: str = "flint",
    min_tau: float = 30.0,
    max_tau: Optional[float] = None,
    dfs_config: Optional[DFSConfig] = None,
    system_interval: Optional[float] = None,
) -> Dict[str, float]:
    """Fractional runtime increase from checkpointing alone (Figure 6).

    Runs the workload with and without the manager on identical clusters
    with no failures; the difference is pure checkpointing overhead.
    """
    base = run_batch_workload(
        workload_factory, num_workers, seed, checkpointing="none", dfs_config=dfs_config
    )
    with_ck = run_batch_workload(
        workload_factory, num_workers, seed, checkpointing=mode,
        cluster_mttf=cluster_mttf, min_tau=min_tau, max_tau=max_tau,
        dfs_config=dfs_config, system_interval=system_interval,
    )
    tax = (with_ck.runtime - base.runtime) / base.runtime
    return {
        "baseline_runtime": base.runtime,
        "checkpointed_runtime": with_ck.runtime,
        "tax": tax,
        "checkpoint_partitions": with_ck.checkpoint_partitions,
        "checkpoint_gb": with_ck.checkpoint_bytes / 1e9,
    }


def revocation_impact(
    workload_factory: Callable[[FlintContext], Any],
    failures: int,
    checkpointing: str = "none",
    cluster_mttf: float = 2 * HOUR,
    num_workers: int = 10,
    seed: int = 0,
    failure_fraction: float = 0.5,
    min_tau: float = 30.0,
    max_tau: Optional[float] = None,
) -> Dict[str, float]:
    """Runtime impact of ``failures`` simultaneous revocations (Figures 7-8).

    The failure instant is placed at ``failure_fraction`` of the measured
    baseline runtime, mirroring the paper's mid-run injections.
    """
    base = run_batch_workload(
        workload_factory, num_workers, seed, checkpointing=checkpointing,
        cluster_mttf=cluster_mttf, min_tau=min_tau, max_tau=max_tau,
    )
    if failures == 0:
        return {
            "baseline_runtime": base.runtime,
            "runtime": base.runtime,
            "increase": 0.0,
            "tasks_lost": 0,
        }
    failed = run_batch_workload(
        workload_factory, num_workers, seed, checkpointing=checkpointing,
        cluster_mttf=cluster_mttf, min_tau=min_tau, max_tau=max_tau,
        concurrent_failures=failures,
        failure_at=base.runtime * failure_fraction,
    )
    return {
        "baseline_runtime": base.runtime,
        "runtime": failed.runtime,
        "increase": (failed.runtime - base.runtime) / base.runtime,
        "tasks_lost": failed.tasks_lost,
    }
