"""Plain-text result tables for benchmark output.

Benchmarks print the same rows/series the paper's figures plot; a shared
formatter keeps them readable and grep-able in CI logs.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table."""

    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
