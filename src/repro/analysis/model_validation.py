"""Validate the analytic runtime model against trace simulation.

Flint's server selection ranks markets with the closed-form Equations 1-2;
its usefulness depends on those expectations tracking what trace-driven
execution actually delivers.  This module runs both — the formula and the
:class:`~repro.analysis.longrun.CanonicalSimulator` over the same market —
and reports the relative error, which the test suite bounds.  (The paper
leaves this check implicit; making it explicit is cheap insurance that the
policy optimises the right quantity.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.longrun import CanonicalConfig, CanonicalSimulator, fixed_market_selector
from repro.core.runtime_model import expected_cost, expected_runtime
from repro.market.provider import CloudProvider
from repro.simulation.clock import HOUR


@dataclass
class ValidationPoint:
    """Model vs simulation for one market."""

    market_id: str
    mttf: float
    model_runtime: float
    simulated_runtime: float
    model_cost: float
    simulated_cost: float

    @property
    def runtime_error(self) -> float:
        """Relative error of the Eq. 1 expectation."""
        return abs(self.model_runtime - self.simulated_runtime) / self.simulated_runtime

    @property
    def cost_error(self) -> float:
        """Relative error of the Eq. 2 expectation."""
        return abs(self.model_cost - self.simulated_cost) / self.simulated_cost


def validate_market(
    provider: CloudProvider,
    market_id: str,
    config: Optional[CanonicalConfig] = None,
    num_runs: int = 60,
    spacing: float = 7 * HOUR,
    mttf_window: float = 60 * 24 * HOUR,
) -> ValidationPoint:
    """Compare Eq. 1/2 expectations with trace-simulated means on one market."""
    cfg = config or CanonicalConfig(job_length=4 * HOUR)
    market = provider.market(market_id)
    bid = market.on_demand_price * cfg.bid_multiplier
    # Estimate the inputs exactly as Flint's node manager would: from the
    # trace's history (here a long window for statistical stability).
    mttf = market.estimate_mttf(bid, mttf_window, mttf_window)
    mean_price = market.trace.mean_price(0.0, mttf_window)

    model_runtime = expected_runtime(cfg.job_length, cfg.delta, mttf)
    model_cost = expected_cost(
        cfg.job_length, cfg.delta, mttf, mean_price, num_servers=cfg.num_workers
    )

    sim = CanonicalSimulator(provider, cfg, fixed_market_selector(market_id))
    outcomes = sim.sweep(num_runs=num_runs, spacing=spacing)
    simulated_runtime = float(np.mean([o.runtime for o in outcomes]))
    simulated_cost = float(np.mean([o.cost for o in outcomes]))

    return ValidationPoint(
        market_id=market_id,
        mttf=mttf,
        model_runtime=model_runtime,
        simulated_runtime=simulated_runtime,
        model_cost=model_cost,
        simulated_cost=simulated_cost,
    )


def validate_catalog(
    provider: CloudProvider,
    market_ids: Optional[List[str]] = None,
    **kwargs,
) -> List[ValidationPoint]:
    """Validate the model across several markets."""
    ids = market_ids or [m.market_id for m in provider.spot_markets()]
    return [validate_market(provider, mid, **kwargs) for mid in ids]
