"""Long-horizon canonical-program simulation (§5.5).

The paper evaluates cost and runtime over six months of EC2 price traces by
simulating "a canonical program that checkpoints 4GB RDD partitions every
interval".  This module is that simulator: it walks a market's (periodic)
price trace, advances job progress, pays δ at every checkpoint, loses
un-checkpointed work at each revocation, pays the replacement delay,
re-selects a market per the configured policy, and bills the servers at the
trace prices — all without running the engine, so months of operation cost
milliseconds of wall time.

Batch runs keep the whole cluster in one market (all-at-once revocations);
interactive runs spread it over m markets, losing a 1/m slice per event
(Eq. 4's accounting).
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interval import optimal_checkpoint_interval
from repro.core.selection import (
    BatchSelectionPolicy,
    OnDemandBiddingPolicy,
    snapshot_markets,
)
from repro.market.market import Market, OnDemandMarket
from repro.market.provider import CloudProvider
from repro.simulation.clock import DAY, HOUR, WEEK

GB = 10**9

#: A selector maps (provider, time, excluded market ids) -> market id.
Selector = Callable[[CloudProvider, float, Tuple[str, ...]], str]


@dataclass(frozen=True)
class CanonicalConfig:
    """The canonical program and its cluster.

    ``checkpoint_bytes_per_worker`` is the frontier volume each worker must
    persist per checkpoint (the paper's 4GB); δ follows from the DFS write
    model.
    """

    job_length: float = 2 * HOUR
    num_workers: int = 10
    checkpoint_bytes_per_worker: float = 4 * GB
    dfs_write_bandwidth: float = 100e6
    replication: int = 3
    replacement_delay: float = 120.0
    checkpointing: bool = True
    bid_multiplier: float = 1.0

    @property
    def delta(self) -> float:
        """Checkpoint write time: workers write their 4GB in parallel."""
        return (
            self.checkpoint_bytes_per_worker
            * self.replication
            / self.dfs_write_bandwidth
        )


@dataclass
class RunOutcome:
    """Result of simulating one job to completion."""

    runtime: float
    work: float
    cost: float
    revocations: int
    checkpoints: int
    markets_used: List[str] = field(default_factory=list)

    @property
    def overhead(self) -> float:
        """Fractional increase in running time over failure-free execution."""
        return (self.runtime - self.work) / self.work

    @property
    def unit_cost(self) -> float:
        """Cost normalised per hour of useful work per server cluster."""
        return self.cost / (self.work / HOUR)


# ----------------------------------------------------------------------
# Market selectors
# ----------------------------------------------------------------------
def flint_batch_selector(
    T_estimate: float = 2 * HOUR, delta_estimate: float = 120.0
) -> Selector:
    """Flint's batch policy: minimise Eq. 2 expected cost."""
    policy = BatchSelectionPolicy(T_estimate=T_estimate, delta_estimate=delta_estimate)
    bidding = OnDemandBiddingPolicy()

    def select(provider: CloudProvider, t: float, exclude: Tuple[str, ...]) -> str:
        snaps = snapshot_markets(provider, t, bidding)
        return policy.select(snaps, exclude=exclude).market_ids[0]

    return select


def spot_fleet_selector() -> Selector:
    """SpotFleet lowestPrice: cheapest current spot price, no revocation model."""

    def select(provider: CloudProvider, t: float, exclude: Tuple[str, ...]) -> str:
        excluded = set(exclude)
        candidates = [
            m
            for m in provider.spot_markets()
            if m.market_id not in excluded
            and m.current_price(t) <= m.on_demand_price
        ]
        if not candidates:
            return _on_demand_id(provider)
        return min(candidates, key=lambda m: m.current_price(t)).market_id

    return select


def fixed_market_selector(market_id: str) -> Selector:
    """Always the same market (Figure 11b's bid sweeps pin the market)."""

    def select(provider: CloudProvider, t: float, exclude: Tuple[str, ...]) -> str:
        return market_id

    return select


def on_demand_selector() -> Selector:
    """The non-revocable reference."""

    def select(provider: CloudProvider, t: float, exclude: Tuple[str, ...]) -> str:
        return _on_demand_id(provider)

    return select


def _on_demand_id(provider: CloudProvider) -> str:
    for market in provider.markets.values():
        if isinstance(market, OnDemandMarket):
            return market.market_id
    raise RuntimeError("provider has no on-demand market")


# ----------------------------------------------------------------------
# The simulator
# ----------------------------------------------------------------------
class CanonicalSimulator:
    """Walks price traces to completion of a canonical job."""

    def __init__(
        self,
        provider: CloudProvider,
        config: Optional[CanonicalConfig] = None,
        selector: Optional[Selector] = None,
        mttf_window: float = 14 * 24 * HOUR,
    ):
        self.provider = provider
        self.config = config or CanonicalConfig()
        self.selector = selector or flint_batch_selector()
        self.mttf_window = mttf_window
        self._keys = itertools.count()

    # -- helpers ----------------------------------------------------------
    def _bid(self, market: Market) -> float:
        return market.on_demand_price * self.config.bid_multiplier

    def _tau(self, market_ids: Sequence[str], t: float) -> float:
        if not self.config.checkpointing:
            return float("inf")
        from repro.core.runtime_model import harmonic_mttf

        mttfs = []
        for mid in market_ids:
            market = self.provider.market(mid)
            mttfs.append(market.estimate_mttf(self._bid(market), t, self.mttf_window))
        return optimal_checkpoint_interval(self.config.delta, harmonic_mttf(mttfs))

    def _segment_cost(self, market: Market, start: float, end: float, servers: float) -> float:
        """Bill `servers` instances in one market over [start, end]."""
        if end <= start:
            return 0.0
        hours = (end - start) / HOUR
        mean_price = market.trace.mean_price(
            market._trace_time(start), market._trace_time(end)
        )
        return mean_price * hours * servers

    # -- batch (single market, all-at-once revocations) --------------------
    def run_batch_job(self, start_time: float, max_wall: Optional[float] = None) -> RunOutcome:
        """Simulate one batch job starting at ``start_time``."""
        cfg = self.config
        t = start_time
        work_done = 0.0
        ckpt_work = 0.0
        revocations = 0
        checkpoints = 0
        cost = 0.0
        markets_used: List[str] = []
        deadline = math.inf if max_wall is None else start_time + max_wall

        market_id = self.selector(self.provider, t, ())
        while work_done < cfg.job_length:
            if t > deadline:
                break
            market = self.provider.market(market_id)
            if market_id not in markets_used:
                markets_used.append(market_id)
            bid = self._bid(market)
            rev_at = market.revocation_time_for(t, bid, f"canon-{next(self._keys)}")
            tau = self._tau([market_id], t)
            segment_start = t
            # Advance work chunk-by-chunk (a chunk ends at a checkpoint or
            # at job completion), watching for the revocation instant.
            revoked = False
            while work_done < cfg.job_length:
                if math.isinf(tau):
                    chunk_work = cfg.job_length - work_done
                    chunk_wall = chunk_work
                    completes_ckpt = False
                else:
                    next_ckpt_work = ckpt_work + tau
                    chunk_work = min(cfg.job_length, next_ckpt_work) - work_done
                    completes_ckpt = (work_done + chunk_work) >= next_ckpt_work - 1e-9
                    chunk_wall = chunk_work + (cfg.delta if completes_ckpt else 0.0)
                if rev_at is not None and t + chunk_wall > rev_at:
                    # Revoked mid-chunk: lose progress back to the last
                    # durable checkpoint.
                    cost += self._segment_cost(market, segment_start, rev_at, cfg.num_workers)
                    t = rev_at
                    work_done = ckpt_work
                    revocations += 1
                    revoked = True
                    break
                t += chunk_wall
                work_done += chunk_work
                if completes_ckpt and not math.isinf(tau):
                    ckpt_work = work_done
                    checkpoints += 1
            if not revoked:
                cost += self._segment_cost(market, segment_start, t, cfg.num_workers)
                break
            # Restoration: replacement delay, then re-select (excluding the
            # revoked market — its price just spiked).
            t += cfg.replacement_delay
            market_id = self.selector(self.provider, t, (market_id,))
        return RunOutcome(
            runtime=t - start_time,
            work=cfg.job_length,
            cost=cost,
            revocations=revocations,
            checkpoints=checkpoints,
            markets_used=markets_used,
        )

    # -- interactive (m markets, fractional revocations) --------------------
    def run_interactive_job(
        self, start_time: float, market_ids: Sequence[str], max_wall: Optional[float] = None
    ) -> RunOutcome:
        """Simulate a job over a fixed diversified market mix.

        Each revocation event kills one market's N/m slice: the job loses a
        1/m fraction of un-checkpointed work and pays the replacement delay
        only against that slice.
        """
        cfg = self.config
        m = len(market_ids)
        if m == 0:
            raise ValueError("need at least one market")
        t = start_time
        work_done = 0.0
        ckpt_work = 0.0
        revocations = 0
        checkpoints = 0
        cost = 0.0
        deadline = math.inf if max_wall is None else start_time + max_wall
        active = list(market_ids)
        # Predetermined next revocation per slice.
        rev_at: List[Optional[float]] = []
        seg_start = t
        for mid in active:
            market = self.provider.market(mid)
            rev_at.append(
                market.revocation_time_for(t, self._bid(market), f"canon-i-{next(self._keys)}")
            )
        tau = self._tau(active, t)
        while work_done < cfg.job_length and t <= deadline:
            if math.isinf(tau):
                chunk_work = cfg.job_length - work_done
                chunk_wall = chunk_work
                completes_ckpt = False
            else:
                next_ckpt_work = ckpt_work + tau
                chunk_work = min(cfg.job_length, next_ckpt_work) - work_done
                completes_ckpt = (work_done + chunk_work) >= next_ckpt_work - 1e-9
                chunk_wall = chunk_work + (cfg.delta if completes_ckpt else 0.0)
            next_rev_idx = None
            next_rev_time = math.inf
            for i, r in enumerate(rev_at):
                if r is not None and r < next_rev_time:
                    next_rev_idx, next_rev_time = i, r
            if next_rev_idx is not None and t + chunk_wall > next_rev_time:
                # One slice dies: bill everyone up to the event, roll back a
                # 1/m fraction of un-checkpointed progress, replace the slice.
                for mid in active:
                    cost += self._segment_cost(
                        self.provider.market(mid), seg_start, next_rev_time, cfg.num_workers / m
                    )
                seg_start = next_rev_time
                t = next_rev_time + cfg.replacement_delay / m
                lost = (work_done - ckpt_work) / m
                work_done -= lost
                revocations += 1
                dead = active[next_rev_idx]
                replacement = self.selector(self.provider, t, tuple([dead]))
                active[next_rev_idx] = replacement
                market = self.provider.market(replacement)
                rev_at[next_rev_idx] = market.revocation_time_for(
                    t, self._bid(market), f"canon-i-{next(self._keys)}"
                )
                tau = self._tau(active, t)
                continue
            t += chunk_wall
            work_done += chunk_work
            if completes_ckpt and not math.isinf(tau):
                ckpt_work = work_done
                checkpoints += 1
        for mid in active:
            cost += self._segment_cost(self.provider.market(mid), seg_start, t, cfg.num_workers / m)
        return RunOutcome(
            runtime=t - start_time,
            work=cfg.job_length,
            cost=cost,
            revocations=revocations,
            checkpoints=checkpoints,
            markets_used=list(dict.fromkeys(market_ids)),
        )

    # -- repeated runs over a long horizon ---------------------------------
    def sweep(
        self,
        num_runs: int,
        spacing: float = 6 * HOUR,
        start: float = 0.0,
        interactive_markets: Optional[Sequence[str]] = None,
    ) -> List[RunOutcome]:
        """Back-to-back jobs across the trace horizon (the paper's 6-month
        trace methodology)."""
        outcomes = []
        t = start
        for _ in range(num_runs):
            if interactive_markets is not None:
                outcomes.append(self.run_interactive_job(t, interactive_markets))
            else:
                outcomes.append(self.run_batch_job(t))
            t += spacing
        return outcomes

    def sweep_starts(
        self,
        starts: Sequence[float],
        interactive_markets: Optional[Sequence[str]] = None,
    ) -> List[RunOutcome]:
        """One job per explicit start instant (a multi-week sweep hands the
        whole batch of start times over at once — e.g. ``np.arange(0,
        horizon, spacing)`` — instead of stepping ``sweep`` run-by-run)."""
        starts = np.asarray(starts, dtype=float)
        if interactive_markets is not None:
            return [self.run_interactive_job(float(t), interactive_markets) for t in starts]
        return [self.run_batch_job(float(t)) for t in starts]


# ----------------------------------------------------------------------
# Portfolio-of-markets long-horizon sweeps
# ----------------------------------------------------------------------
def select_portfolio(
    provider: CloudProvider,
    size: int,
    t: float = 0.0,
    bid_multiplier: float = 1.0,
    mttf_window: float = 14 * DAY,
) -> List[str]:
    """The ``size`` spot markets with the best availability-adjusted price.

    Ranks every spot market by its recent mean price inflated by an expected
    revocation overhead (one replacement-plus-rework hour per MTTF), which is
    the portfolio analogue of Eq. 2's expected-cost ranking: cheap-but-spiky
    markets fall behind slightly dearer stable ones.  Ties break on market id
    so the portfolio is deterministic for a given provider state.
    """
    if size <= 0:
        raise ValueError("portfolio size must be positive")
    scored = []
    for market in provider.spot_markets():
        bid = market.on_demand_price * bid_multiplier
        mttf = market.estimate_mttf(bid, t, mttf_window)
        price = market.mean_recent_price(t)
        overhead = 0.0 if math.isinf(mttf) else HOUR / max(mttf, 1.0)
        scored.append((price * (1.0 + overhead), market.market_id))
    if not scored:
        raise RuntimeError("provider has no spot markets to build a portfolio from")
    scored.sort()
    return [market_id for _, market_id in scored[:size]]


def portfolio_selector(market_ids: Sequence[str]) -> Selector:
    """Replacement selection restricted to a fixed portfolio.

    Picks the cheapest currently-available portfolio market not excluded;
    when the whole portfolio is excluded or priced out, falls back to the
    on-demand market (the diversified job must keep its slice count).
    """
    portfolio = list(dict.fromkeys(market_ids))
    if not portfolio:
        raise ValueError("portfolio must name at least one market")

    def select(provider: CloudProvider, t: float, exclude: Tuple[str, ...]) -> str:
        excluded = set(exclude)
        candidates = [
            provider.market(mid)
            for mid in portfolio
            if mid not in excluded
        ]
        viable = [m for m in candidates if m.current_price(t) <= m.on_demand_price]
        if not viable:
            return _on_demand_id(provider)
        return min(viable, key=lambda m: (m.current_price(t), m.market_id)).market_id

    return select


@dataclass(frozen=True)
class LongHorizonConfig:
    """Scale knobs for a portfolio sweep over weeks of simulated time.

    The defaults are the perf-gate scenario: a 1000-node cluster diversified
    over a 4-market portfolio, running back-to-back canonical jobs across two
    weeks of trace.  ``repro longrun --nodes 10000 --weeks 4`` reaches the
    paper-scale month-long, 10k-node question interactively because every
    billing segment is an O(log breakpoints) curve query.
    """

    num_nodes: int = 1000
    weeks: float = 2.0
    portfolio_size: int = 4
    job_length: float = 2 * HOUR
    spacing: float = 6 * HOUR
    checkpointing: bool = True
    bid_multiplier: float = 1.0
    interactive: bool = True

    @property
    def horizon(self) -> float:
        """Swept span of simulated time, in seconds."""
        return self.weeks * WEEK


@dataclass
class LongHorizonReport:
    """Outcome of one long-horizon portfolio sweep, with throughput."""

    config: LongHorizonConfig
    portfolio: List[str]
    outcomes: List[RunOutcome]
    simulated_seconds: float
    wall_seconds: float

    @property
    def jobs(self) -> int:
        return len(self.outcomes)

    @property
    def total_cost(self) -> float:
        return sum(o.cost for o in self.outcomes)

    @property
    def total_revocations(self) -> int:
        return sum(o.revocations for o in self.outcomes)

    @property
    def total_checkpoints(self) -> int:
        return sum(o.checkpoints for o in self.outcomes)

    @property
    def simulated_seconds_per_wall_second(self) -> float:
        """The headline interactivity metric: how much simulated market time
        one wall-clock second buys at this scale."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.simulated_seconds / self.wall_seconds


def run_long_horizon(
    provider: CloudProvider,
    config: Optional[LongHorizonConfig] = None,
) -> LongHorizonReport:
    """Run a portfolio-of-markets sweep at scale and report throughput.

    Builds the availability-ranked portfolio once, then simulates one
    canonical job per spacing across the configured horizon — interactive
    jobs diversify the node count over the whole portfolio; batch jobs keep
    it in one portfolio market at a time.
    """
    cfg = config or LongHorizonConfig()
    canonical = CanonicalConfig(
        job_length=cfg.job_length,
        num_workers=cfg.num_nodes,
        checkpointing=cfg.checkpointing,
        bid_multiplier=cfg.bid_multiplier,
    )
    portfolio = select_portfolio(
        provider, cfg.portfolio_size, bid_multiplier=cfg.bid_multiplier
    )
    simulator = CanonicalSimulator(
        provider, canonical, selector=portfolio_selector(portfolio)
    )
    starts = np.arange(0.0, cfg.horizon, cfg.spacing)
    wall_start = time.perf_counter()
    outcomes = simulator.sweep_starts(
        starts, interactive_markets=portfolio if cfg.interactive else None
    )
    wall_seconds = time.perf_counter() - wall_start
    simulated_seconds = float(
        max(s + o.runtime for s, o in zip(starts, outcomes))
    ) if outcomes else 0.0
    return LongHorizonReport(
        config=cfg,
        portfolio=portfolio,
        outcomes=outcomes,
        simulated_seconds=simulated_seconds,
        wall_seconds=wall_seconds,
    )
