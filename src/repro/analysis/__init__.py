"""Experiment analysis: long-run trace simulation and result formatting.

The systems experiments (Figures 3, 6-9) run the real engine; the cost and
long-horizon experiments (Figures 10-11) follow the paper in simulating a
*canonical program* over months of market traces —
:class:`~repro.analysis.longrun.CanonicalSimulator` is that harness.
:mod:`repro.analysis.tables` renders the rows each benchmark prints.
"""

from repro.analysis.longrun import (
    CanonicalConfig,
    CanonicalSimulator,
    RunOutcome,
    flint_batch_selector,
    fixed_market_selector,
    on_demand_selector,
    spot_fleet_selector,
)
from repro.analysis.experiments import (
    ExperimentRun,
    build_engine_context,
    checkpointing_tax,
    revocation_impact,
    run_batch_workload,
)
from repro.analysis.tables import format_table

__all__ = [
    "ExperimentRun",
    "build_engine_context",
    "checkpointing_tax",
    "revocation_impact",
    "run_batch_workload",
    "CanonicalConfig",
    "CanonicalSimulator",
    "RunOutcome",
    "flint_batch_selector",
    "fixed_market_selector",
    "on_demand_selector",
    "spot_fleet_selector",
    "format_table",
]
