"""Load and save price traces (plug in real spot-price archives).

The paper replays six months of EC2 spot prices.  Those archives are not
redistributable, but anyone holding them (or gathering fresh ones via
``describe-spot-price-history``) can export to the simple CSV this module
reads — ``timestamp_seconds,price`` rows — and run every experiment against
real data instead of the synthetic generators.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.traces.price_trace import PriceTrace

PathLike = Union[str, Path]


def trace_to_csv(trace: PriceTrace, path: Optional[PathLike] = None) -> str:
    """Serialise a trace to ``timestamp,price`` CSV (returned, and written
    to ``path`` when given)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["timestamp_seconds", "price"])
    for t, p in zip(trace.times, trace.prices):
        writer.writerow([f"{float(t):.3f}", f"{float(p):.6f}"])
    writer.writerow([f"{trace.horizon:.3f}", ""])  # horizon sentinel
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def trace_from_csv(source: Union[PathLike, str], horizon: Optional[float] = None) -> PriceTrace:
    """Parse a trace from CSV text or a file path.

    Rows must be ``timestamp_seconds,price`` sorted by time; timestamps are
    normalised so the first row becomes t=0 (real archives use epoch
    stamps).  A trailing row with an empty price is read as the horizon;
    otherwise pass ``horizon`` or the last segment is padded by its
    preceding gap (or one hour for single-segment traces).
    """
    text = source
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source):
        text = Path(source).read_text()
    times: List[float] = []
    prices: List[float] = []
    parsed_horizon: Optional[float] = None
    reader = csv.reader(io.StringIO(text))
    for row in reader:
        if not row or row[0].strip().lower().startswith("timestamp"):
            continue
        stamp = float(row[0])
        if len(row) < 2 or row[1].strip() == "":
            parsed_horizon = stamp
            continue
        times.append(stamp)
        prices.append(float(row[1]))
    if not times:
        raise ValueError("no price rows in CSV")
    if any(b <= a for a, b in zip(times, times[1:])):
        raise ValueError("timestamps must be strictly increasing")
    base = times[0]
    times = [t - base for t in times]
    if parsed_horizon is not None:
        parsed_horizon -= base
    end = horizon if horizon is not None else parsed_horizon
    if end is None:
        pad = (times[-1] - times[-2]) if len(times) > 1 else 3600.0
        end = times[-1] + pad
    return PriceTrace(times, prices, end)


def merge_aligned(traces: Sequence[PriceTrace]) -> List[Tuple[float, List[float]]]:
    """Sample several traces onto their union of change points.

    Handy for eyeballing exported market sets: returns ``(time, [price per
    trace])`` rows covering the shortest horizon.
    """
    if not traces:
        raise ValueError("need at least one trace")
    horizon = min(t.horizon for t in traces)
    points = sorted({float(tp) for trace in traces for tp in trace.times if tp < horizon} | {0.0})
    return [(t, [trace.price_at(t) for trace in traces]) for t in points]
