"""Spot-price and availability traces.

EC2 publishes only three months of price history and GCE publishes nothing,
so the paper itself estimates MTTFs empirically and simulates long-run
behaviour over traces.  This package provides the same raw material:

* :class:`~repro.traces.price_trace.PriceTrace` — a piecewise-constant price
  series with exact exceedance queries (the revocation primitive).
* Generators for "peaky" EC2-like markets with controllable steady-state
  price, spike rate (and therefore MTTF at a given bid), and cross-market
  correlation (:mod:`repro.traces.generators`).
* GCE preemptible lifetime models (:mod:`repro.traces.gce`).
* The statistics the paper derives from traces — MTTF at a bid, availability
  ECDFs, and pairwise price correlation (:mod:`repro.traces.stats`).
* A catalog of named markets mirroring the instance types and MTTF ranges the
  paper reports (:mod:`repro.traces.ec2`).
"""

from repro.traces.price_trace import PriceTrace
from repro.traces.generators import (
    constant_trace,
    peaky_trace,
    correlated_peaky_traces,
    mean_reverting_trace,
)
from repro.traces.gce import PreemptibleLifetimeModel
from repro.traces.stats import (
    availability_ecdf,
    estimate_mttf,
    pairwise_price_correlation,
    time_to_failure_samples,
)
from repro.traces.ec2 import EC2_CATALOG, InstanceType, build_market_traces

__all__ = [
    "PriceTrace",
    "constant_trace",
    "peaky_trace",
    "correlated_peaky_traces",
    "mean_reverting_trace",
    "PreemptibleLifetimeModel",
    "availability_ecdf",
    "estimate_mttf",
    "pairwise_price_correlation",
    "time_to_failure_samples",
    "EC2_CATALOG",
    "InstanceType",
    "build_market_traces",
]
