"""Statistics Flint derives from price traces.

These implement the measurement side of §3.1: the MTTF of a market at a given
bid (estimated from price history, exactly as Flint's node manager does from
EC2's published history), availability ECDFs (Figure 2), and pairwise price
correlation between markets (Figure 4, the basis of the diversification
policy).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.traces.price_trace import PriceTrace


def _launch_grid(start: float, end_time: float, sample_interval: float) -> np.ndarray:
    """The uniform launch grid, built by the same float accumulation the
    original per-point loop used (``t += interval``), so grid instants are
    bit-identical to the pre-vectorised path."""
    grid = []
    t = start
    while t < end_time:
        grid.append(t)
        t += sample_interval
    return np.asarray(grid)


def time_to_failure_samples(
    trace: PriceTrace,
    bid: float,
    sample_interval: float = 3600.0,
    start: float = 0.0,
    end: Optional[float] = None,
) -> np.ndarray:
    """Time-to-revocation from each viable launch instant on a uniform grid.

    A launch instant is viable when the spot price is at or below the bid
    (EC2 only grants the instance then).  The time to failure from a viable
    instant is the gap to the next strict exceedance of the bid.  One
    vectorised exceedance query answers the whole grid; probing month-long
    windows point-by-point used to dominate MTTF estimation.
    """
    end_time = trace.horizon if end is None else end
    grid = _launch_grid(start, end_time, sample_interval)
    if grid.size == 0:
        return np.asarray([])
    viable = grid[trace.prices_at(grid) <= bid]
    if viable.size == 0:
        return np.asarray([])
    exceedances = trace.next_exceedance_grid(viable, bid)
    if exceedances is None:
        # The (periodic) trace never exceeds the bid: no launch ever fails.
        return np.asarray([])
    return exceedances - viable


def estimate_mttf(
    trace: PriceTrace,
    bid: float,
    sample_interval: float = 3600.0,
    start: float = 0.0,
    end: Optional[float] = None,
) -> float:
    """Mean time to failure at ``bid``; ``inf`` if the trace never exceeds it."""
    if trace.next_exceedance(start, bid) is None:
        return float("inf")
    samples = time_to_failure_samples(trace, bid, sample_interval, start, end)
    if len(samples) == 0:
        return float("inf")
    return float(np.mean(samples))


def availability_ecdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of time-to-failure samples (x sorted, y in [1/n, 1])."""
    arr = np.sort(np.asarray(samples, dtype=float))
    if len(arr) == 0:
        raise ValueError("need at least one sample for an ECDF")
    y = np.arange(1, len(arr) + 1) / len(arr)
    return arr, y


def pairwise_price_correlation(
    traces: List[PriceTrace],
    dt: float = 3600.0,
    end: Optional[float] = None,
) -> np.ndarray:
    """Pearson correlation matrix of prices sampled on a shared grid.

    Reproduces the Figure 4 analysis: darker (lower) off-diagonal entries
    mean less correlated markets, i.e. better diversification candidates.
    Constant traces (zero variance) get zero correlation with everything.
    """
    if not traces:
        raise ValueError("need at least one trace")
    horizon = min(t.horizon for t in traces) if end is None else end
    grid_samples = np.vstack([t.sample_grid(dt, 0.0, horizon) for t in traces])
    n = len(traces)
    corr = np.eye(n)
    stds = grid_samples.std(axis=1)
    for i in range(n):
        for j in range(i + 1, n):
            if stds[i] < 1e-12 or stds[j] < 1e-12:
                c = 0.0
            else:
                c = float(np.corrcoef(grid_samples[i], grid_samples[j])[0, 1])
            corr[i, j] = corr[j, i] = c
    return corr


def revocation_event_times(trace: PriceTrace, bid: float, end: Optional[float] = None) -> np.ndarray:
    """All distinct instants within one period at which price crosses above bid."""
    end_time = trace.horizon if end is None else min(end, trace.horizon)
    prices = trace.prices
    times = trace.times
    above = prices > bid
    crossings = np.nonzero(above & ~np.roll(above, 1))[0]
    # np.roll wraps the last element to the front; drop a spurious crossing at
    # index 0 when the trace both starts and ends above the bid.
    result = [float(times[i]) for i in crossings if times[i] < end_time]
    if above[0] and above[-1] and result and result[0] == 0.0:
        result = result[1:]
    return np.asarray(result)
