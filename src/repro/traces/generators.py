"""Synthetic spot-price trace generators.

EC2 spot prices are "peaky" (§5.5 of the paper): long stretches at a low
steady-state price punctuated by brief spikes far above the on-demand price.
That shape is what makes (a) bidding anywhere between ~0.5x and ~2x the
on-demand price cost-equivalent (Figure 11b) and (b) revocations effectively
Poisson with an MTTF set by the spike rate.  The generators here expose the
spike rate directly so experiments can dial in a target MTTF.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.simulation.clock import HOUR
from repro.simulation.rng import SeededRNG
from repro.traces.price_trace import PriceTrace


def constant_trace(price: float, horizon: float = 30 * 24 * HOUR) -> PriceTrace:
    """A flat trace — models on-demand or GCE fixed preemptible pricing."""
    return PriceTrace([0.0], [price], horizon)


def peaky_trace(
    rng: SeededRNG,
    on_demand_price: float,
    steady_fraction: float = 0.25,
    steady_jitter: float = 0.05,
    spike_rate_per_hour: float = 1.0 / 50.0,
    spike_height_range: tuple = (1.5, 10.0),
    spike_duration_mean: float = 0.25 * HOUR,
    horizon: float = 60 * 24 * HOUR,
    step: float = 300.0,
    churn_rate_per_hour: float = 0.0,
    churn_height_range: tuple = (0.4, 0.95),
    churn_duration_mean: float = 0.5 * HOUR,
) -> PriceTrace:
    """Generate an EC2-like peaky price trace.

    The steady-state price hovers around ``steady_fraction * on_demand_price``
    with multiplicative jitter; spikes arrive as a Poisson process at
    ``spike_rate_per_hour`` and lift the price to a uniform multiple of the
    on-demand price in ``spike_height_range`` for an exponentially distributed
    duration.  A bid at the on-demand price is revoked exactly at spikes whose
    height multiple exceeds 1, so for height ranges above 1 the MTTF at an
    on-demand bid is ~``1 / spike_rate_per_hour`` hours.

    An optional second "churn" process produces frequent *sub-bid* price
    surges: these never revoke an on-demand-bid instance but inflate what it
    is billed — the trap that makes selecting markets by instantaneous price
    (SpotFleet's lowestPrice) costly, §5.5.

    Args:
        rng: seeded stream; the same rng yields the same trace.
        on_demand_price: reference price in $/hour.
        steady_fraction: steady-state price as a fraction of on-demand.
        steady_jitter: lognormal-ish multiplicative noise on the steady price.
        spike_rate_per_hour: Poisson arrival rate of revocation spikes.
        spike_height_range: spike price as a multiple of on-demand (min, max).
        spike_duration_mean: mean spike length in seconds.
        horizon: trace length in seconds.
        step: granularity of steady-state price changes in seconds.
        churn_rate_per_hour: arrival rate of sub-bid price surges.
        churn_height_range: churn surge height as a multiple of on-demand.
        churn_duration_mean: mean churn surge length in seconds.
    """
    if not 0 < steady_fraction < 1:
        raise ValueError("steady_fraction must be in (0, 1)")
    if spike_rate_per_hour < 0:
        raise ValueError("spike_rate_per_hour must be non-negative")
    if churn_rate_per_hour < 0:
        raise ValueError("churn_rate_per_hour must be non-negative")

    n_steps = int(np.ceil(horizon / step))
    times = np.arange(n_steps) * step
    noise = np.exp(rng.normal(0.0, steady_jitter, size=n_steps))
    prices = on_demand_price * steady_fraction * noise

    def overlay(spike_times, height_range, duration_mean):
        # Heights and durations are drawn as whole batches up front, so the
        # stream order is a function of the spike count alone — per-spike
        # interleaved draws made the stream sensitive to how the loop body
        # was arranged.  (This fixes the draw order relative to earlier
        # per-spike versions of this generator: same seed, new trace.)
        n = len(spike_times)
        if n == 0:
            return
        lo, hi = height_range
        heights = on_demand_price * rng.uniform(lo, hi, size=n)
        durations = np.maximum(step, rng.exponential(duration_mean, size=n))
        for t_spike, height, duration in zip(spike_times, heights, durations):
            start_idx = int(t_spike // step)
            end_idx = min(n_steps, start_idx + max(1, int(round(duration / step))))
            prices[start_idx:end_idx] = np.maximum(prices[start_idx:end_idx], height)

    overlay(
        _poisson_arrivals(rng, spike_rate_per_hour / HOUR, horizon),
        spike_height_range,
        spike_duration_mean,
    )
    if churn_rate_per_hour > 0:
        overlay(
            _poisson_arrivals(rng.child("churn"), churn_rate_per_hour / HOUR, horizon),
            churn_height_range,
            churn_duration_mean,
        )

    return PriceTrace(times, prices, horizon)


def correlated_peaky_traces(
    rng: SeededRNG,
    on_demand_prices: Sequence[float],
    correlation: float = 0.0,
    steady_fraction: float = 0.25,
    spike_rate_per_hour: float = 1.0 / 50.0,
    spike_height_range: tuple = (1.5, 10.0),
    spike_duration_mean: float = 0.25 * HOUR,
    horizon: float = 60 * 24 * HOUR,
    step: float = 300.0,
) -> List[PriceTrace]:
    """Generate one trace per market with a tunable co-spike probability.

    Spikes come from two Poisson sources: a *common* process whose spikes hit
    every market simultaneously (rate ``correlation * spike_rate_per_hour``)
    and an *idiosyncratic* per-market process carrying the remainder.  At
    ``correlation=0`` revocations are pairwise independent, reproducing the
    uncorrelated-markets observation in Figure 4; at ``correlation=1`` every
    market is revoked together, which defeats Flint's diversification policy.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1]")
    common_rate = correlation * spike_rate_per_hour
    idio_rate = (1.0 - correlation) * spike_rate_per_hour
    common_spikes = _poisson_arrivals(rng.child("common"), common_rate / HOUR, horizon)

    traces = []
    for k, od_price in enumerate(on_demand_prices):
        market_rng = rng.child(f"market-{k}")
        base = peaky_trace(
            market_rng,
            od_price,
            steady_fraction=steady_fraction,
            spike_rate_per_hour=idio_rate,
            spike_height_range=spike_height_range,
            spike_duration_mean=spike_duration_mean,
            horizon=horizon,
            step=step,
        )
        prices = base.prices.copy()
        if len(common_spikes):
            lo, hi = spike_height_range
            # Batched draws, as in ``peaky_trace``'s overlay: the stream
            # order depends only on the spike count.
            heights = od_price * market_rng.uniform(lo, hi, size=len(common_spikes))
            durations = np.maximum(
                step, market_rng.exponential(spike_duration_mean, size=len(common_spikes))
            )
            for t_spike, height, duration in zip(common_spikes, heights, durations):
                start_idx = int(t_spike // step)
                end_idx = min(len(prices), start_idx + max(1, int(round(duration / step))))
                prices[start_idx:end_idx] = np.maximum(prices[start_idx:end_idx], height)
        traces.append(PriceTrace(base.times, prices, horizon))
    return traces


def mean_reverting_trace(
    rng: SeededRNG,
    on_demand_price: float,
    mean_fraction: float = 0.35,
    reversion_rate: float = 0.5,
    volatility: float = 0.15,
    horizon: float = 60 * 24 * HOUR,
    step: float = 300.0,
) -> PriceTrace:
    """An Ornstein-Uhlenbeck style trace for smoother, non-peaky markets.

    Used as a contrast workload for the bidding experiments: in a
    mean-reverting market the bid level matters much more than in a peaky
    one, which is why the paper's "bid the on-demand price" result is a
    property of the peaky regime.
    """
    n_steps = int(np.ceil(horizon / step))
    times = np.arange(n_steps) * step
    mu = on_demand_price * mean_fraction
    dt_hours = step / HOUR
    shocks = rng.normal(0.0, 1.0, size=n_steps)
    # The OU recurrence x_i = x_{i-1} + r*(mu - x_{i-1})*dt + c*s_i is the
    # linear filter x_i = (1 - r*dt)*x_{i-1} + (r*mu*dt + c*s_i), evaluated
    # here in one lfilter call instead of a Python loop.  The algebraic
    # regrouping changes rounding in the last ulp relative to the original
    # scalar loop; the trace is statistically unchanged and every consumer
    # (bidding experiments) is qualitative.
    decay = 1.0 - reversion_rate * dt_hours
    drive = reversion_rate * mu * dt_hours + volatility * mu * np.sqrt(dt_hours) * shocks
    try:
        from scipy.signal import lfilter

        x, _ = lfilter([1.0], [1.0, -decay], drive, zi=np.array([decay * mu]))
    except ImportError:  # pragma: no cover - scipy is a baked-in dependency
        x = np.empty(n_steps)
        acc = mu
        for i in range(n_steps):
            acc = decay * acc + drive[i]
            x[i] = acc
    prices = np.maximum(0.01 * on_demand_price, x)
    return PriceTrace(times, prices, horizon)


def _poisson_arrivals(rng: SeededRNG, rate_per_second: float, horizon: float) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on [0, horizon).

    Batched draws with cumulative sums replace the one-draw-per-iteration
    Python loop.  The per-draw stream order is preserved exactly: numpy's
    ``Generator`` fills batched draws with the same scalar routine used for
    single draws, ``np.cumsum`` accumulates left-to-right like the scalar
    loop did, and the final chunk is rewound (bit-generator state restore)
    and re-drawn at the exact count the loop would have consumed — so
    callers sharing this stream see identical subsequent draws.
    """
    if rate_per_second <= 0:
        return np.empty(0)
    scale = 1.0 / rate_per_second
    gen = rng.generator
    chunks: List[np.ndarray] = []
    t = 0.0
    # ~2x the expected draw count per chunk, so one chunk usually suffices.
    chunk = max(64, int(2 * rate_per_second * horizon) + 1)
    while True:
        state = gen.bit_generator.state
        cum = t + np.cumsum(gen.exponential(scale, size=chunk))
        over = np.nonzero(cum >= horizon)[0]
        if len(over):
            stop = int(over[0])
            # The scalar loop would have consumed exactly stop + 1 draws
            # from this chunk before breaking; rewind and re-consume that
            # many to leave the stream in the identical state.
            gen.bit_generator.state = state
            gen.exponential(scale, size=stop + 1)
            chunks.append(cum[:stop])
            break
        chunks.append(cum)
        t = float(cum[-1])
    return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
