"""Synthetic spot-price trace generators.

EC2 spot prices are "peaky" (§5.5 of the paper): long stretches at a low
steady-state price punctuated by brief spikes far above the on-demand price.
That shape is what makes (a) bidding anywhere between ~0.5x and ~2x the
on-demand price cost-equivalent (Figure 11b) and (b) revocations effectively
Poisson with an MTTF set by the spike rate.  The generators here expose the
spike rate directly so experiments can dial in a target MTTF.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.simulation.clock import HOUR
from repro.simulation.rng import SeededRNG
from repro.traces.price_trace import PriceTrace


def constant_trace(price: float, horizon: float = 30 * 24 * HOUR) -> PriceTrace:
    """A flat trace — models on-demand or GCE fixed preemptible pricing."""
    return PriceTrace([0.0], [price], horizon)


def peaky_trace(
    rng: SeededRNG,
    on_demand_price: float,
    steady_fraction: float = 0.25,
    steady_jitter: float = 0.05,
    spike_rate_per_hour: float = 1.0 / 50.0,
    spike_height_range: tuple = (1.5, 10.0),
    spike_duration_mean: float = 0.25 * HOUR,
    horizon: float = 60 * 24 * HOUR,
    step: float = 300.0,
    churn_rate_per_hour: float = 0.0,
    churn_height_range: tuple = (0.4, 0.95),
    churn_duration_mean: float = 0.5 * HOUR,
) -> PriceTrace:
    """Generate an EC2-like peaky price trace.

    The steady-state price hovers around ``steady_fraction * on_demand_price``
    with multiplicative jitter; spikes arrive as a Poisson process at
    ``spike_rate_per_hour`` and lift the price to a uniform multiple of the
    on-demand price in ``spike_height_range`` for an exponentially distributed
    duration.  A bid at the on-demand price is revoked exactly at spikes whose
    height multiple exceeds 1, so for height ranges above 1 the MTTF at an
    on-demand bid is ~``1 / spike_rate_per_hour`` hours.

    An optional second "churn" process produces frequent *sub-bid* price
    surges: these never revoke an on-demand-bid instance but inflate what it
    is billed — the trap that makes selecting markets by instantaneous price
    (SpotFleet's lowestPrice) costly, §5.5.

    Args:
        rng: seeded stream; the same rng yields the same trace.
        on_demand_price: reference price in $/hour.
        steady_fraction: steady-state price as a fraction of on-demand.
        steady_jitter: lognormal-ish multiplicative noise on the steady price.
        spike_rate_per_hour: Poisson arrival rate of revocation spikes.
        spike_height_range: spike price as a multiple of on-demand (min, max).
        spike_duration_mean: mean spike length in seconds.
        horizon: trace length in seconds.
        step: granularity of steady-state price changes in seconds.
        churn_rate_per_hour: arrival rate of sub-bid price surges.
        churn_height_range: churn surge height as a multiple of on-demand.
        churn_duration_mean: mean churn surge length in seconds.
    """
    if not 0 < steady_fraction < 1:
        raise ValueError("steady_fraction must be in (0, 1)")
    if spike_rate_per_hour < 0:
        raise ValueError("spike_rate_per_hour must be non-negative")
    if churn_rate_per_hour < 0:
        raise ValueError("churn_rate_per_hour must be non-negative")

    n_steps = int(np.ceil(horizon / step))
    times = np.arange(n_steps) * step
    noise = np.exp(rng.normal(0.0, steady_jitter, size=n_steps))
    prices = on_demand_price * steady_fraction * noise

    def overlay(spike_times, height_range, duration_mean):
        lo, hi = height_range
        for t_spike in spike_times:
            height = on_demand_price * rng.uniform(lo, hi)
            duration = max(step, float(rng.exponential(duration_mean)))
            start_idx = int(t_spike // step)
            end_idx = min(n_steps, start_idx + max(1, int(round(duration / step))))
            prices[start_idx:end_idx] = np.maximum(prices[start_idx:end_idx], height)

    overlay(
        _poisson_arrivals(rng, spike_rate_per_hour / HOUR, horizon),
        spike_height_range,
        spike_duration_mean,
    )
    if churn_rate_per_hour > 0:
        overlay(
            _poisson_arrivals(rng.child("churn"), churn_rate_per_hour / HOUR, horizon),
            churn_height_range,
            churn_duration_mean,
        )

    return PriceTrace(times, prices, horizon)


def correlated_peaky_traces(
    rng: SeededRNG,
    on_demand_prices: Sequence[float],
    correlation: float = 0.0,
    steady_fraction: float = 0.25,
    spike_rate_per_hour: float = 1.0 / 50.0,
    spike_height_range: tuple = (1.5, 10.0),
    spike_duration_mean: float = 0.25 * HOUR,
    horizon: float = 60 * 24 * HOUR,
    step: float = 300.0,
) -> List[PriceTrace]:
    """Generate one trace per market with a tunable co-spike probability.

    Spikes come from two Poisson sources: a *common* process whose spikes hit
    every market simultaneously (rate ``correlation * spike_rate_per_hour``)
    and an *idiosyncratic* per-market process carrying the remainder.  At
    ``correlation=0`` revocations are pairwise independent, reproducing the
    uncorrelated-markets observation in Figure 4; at ``correlation=1`` every
    market is revoked together, which defeats Flint's diversification policy.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1]")
    m = len(on_demand_prices)
    common_rate = correlation * spike_rate_per_hour
    idio_rate = (1.0 - correlation) * spike_rate_per_hour
    common_spikes = _poisson_arrivals(rng.child("common"), common_rate / HOUR, horizon)

    traces = []
    for k, od_price in enumerate(on_demand_prices):
        market_rng = rng.child(f"market-{k}")
        base = peaky_trace(
            market_rng,
            od_price,
            steady_fraction=steady_fraction,
            spike_rate_per_hour=idio_rate,
            spike_height_range=spike_height_range,
            spike_duration_mean=spike_duration_mean,
            horizon=horizon,
            step=step,
        )
        prices = base.prices.copy()
        lo, hi = spike_height_range
        for t_spike in common_spikes:
            height = od_price * market_rng.uniform(lo, hi)
            duration = max(step, float(market_rng.exponential(spike_duration_mean)))
            start_idx = int(t_spike // step)
            end_idx = min(len(prices), start_idx + max(1, int(round(duration / step))))
            prices[start_idx:end_idx] = np.maximum(prices[start_idx:end_idx], height)
        traces.append(PriceTrace(base.times, prices, horizon))
    return traces


def mean_reverting_trace(
    rng: SeededRNG,
    on_demand_price: float,
    mean_fraction: float = 0.35,
    reversion_rate: float = 0.5,
    volatility: float = 0.15,
    horizon: float = 60 * 24 * HOUR,
    step: float = 300.0,
) -> PriceTrace:
    """An Ornstein-Uhlenbeck style trace for smoother, non-peaky markets.

    Used as a contrast workload for the bidding experiments: in a
    mean-reverting market the bid level matters much more than in a peaky
    one, which is why the paper's "bid the on-demand price" result is a
    property of the peaky regime.
    """
    n_steps = int(np.ceil(horizon / step))
    times = np.arange(n_steps) * step
    mu = on_demand_price * mean_fraction
    dt_hours = step / HOUR
    prices = np.empty(n_steps)
    x = mu
    shocks = rng.normal(0.0, 1.0, size=n_steps)
    for i in range(n_steps):
        x = x + reversion_rate * (mu - x) * dt_hours + volatility * mu * np.sqrt(dt_hours) * shocks[i]
        prices[i] = max(0.01 * on_demand_price, x)
    return PriceTrace(times, prices, horizon)


def _poisson_arrivals(rng: SeededRNG, rate_per_second: float, horizon: float) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on [0, horizon)."""
    if rate_per_second <= 0:
        return np.empty(0)
    arrivals = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_second))
        if t >= horizon:
            break
        arrivals.append(t)
    return np.asarray(arrivals)
