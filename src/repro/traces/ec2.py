"""A catalog of named EC2-like markets.

The paper's evaluation uses r3.large clusters in US-East and reports that,
at a bid equal to the on-demand price, spot-market MTTFs range from roughly
18 to 700 hours (Figure 2a names us-west-2c at 701h, eu-west-1c at 101h and
sa-east-1a at 18.8h).  The catalog below mirrors those regimes: each entry
pins an on-demand price and a target MTTF, and :func:`build_market_traces`
turns the catalog into concrete synthetic traces whose spike rate realises
that MTTF at an on-demand bid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.simulation.clock import HOUR
from repro.simulation.rng import SeededRNG
from repro.traces.generators import peaky_trace
from repro.traces.price_trace import PriceTrace


@dataclass(frozen=True)
class InstanceType:
    """Static description of a rentable server type.

    Sizes mirror the paper's testbed (r3.large: 2 VCPUs, 15GB RAM, 32GB SSD).
    """

    name: str
    vcpus: int
    memory_gb: float
    local_disk_gb: float
    on_demand_price: float  # $/hour


R3_LARGE = InstanceType("r3.large", vcpus=2, memory_gb=15.0, local_disk_gb=32.0, on_demand_price=0.175)
R3_XLARGE = InstanceType("r3.xlarge", vcpus=4, memory_gb=30.5, local_disk_gb=80.0, on_demand_price=0.350)
M1_XLARGE = InstanceType("m1.xlarge", vcpus=4, memory_gb=15.0, local_disk_gb=420.0, on_demand_price=0.350)
M2_2XLARGE = InstanceType("m2.2xlarge", vcpus=4, memory_gb=34.2, local_disk_gb=850.0, on_demand_price=0.490)
M3_2XLARGE = InstanceType("m3.2xlarge", vcpus=8, memory_gb=30.0, local_disk_gb=160.0, on_demand_price=0.532)

INSTANCE_TYPES: Dict[str, InstanceType] = {
    it.name: it for it in (R3_LARGE, R3_XLARGE, M1_XLARGE, M2_2XLARGE, M3_2XLARGE)
}


@dataclass(frozen=True)
class MarketSpec:
    """Catalog entry: one spot pool (availability zone x instance type).

    ``spike_duration_hours`` controls how long price spikes last; volatile
    markets need short spikes or their *mean* price would exceed on-demand,
    at which point Flint's policy (correctly) refuses to use them.
    """

    market_id: str
    instance_type: InstanceType
    target_mttf_hours: float
    steady_fraction: float = 0.25
    spike_duration_hours: float = 0.25
    #: Price-change granularity of the synthetic trace.  Must be no larger
    #: than the spike duration or short spikes get stretched to one grid
    #: cell, inflating the market's mean price.
    step_seconds: float = 300.0
    #: Rate of frequent *sub-bid* price surges (no revocation, higher bill)
    #: — the lowball trap application-agnostic selection falls into.
    churn_rate_per_hour: float = 0.0


# The three zones of Figure 2a plus a spread of intermediate-volatility pools
# so server selection has a realistic search space.
EC2_CATALOG: List[MarketSpec] = [
    MarketSpec("us-west-2c/r3.large", R3_LARGE, 701.0, steady_fraction=0.22),
    MarketSpec("us-east-1a/r3.large", R3_LARGE, 350.0, steady_fraction=0.24),
    MarketSpec("us-east-1b/r3.large", R3_LARGE, 220.0, steady_fraction=0.20),
    MarketSpec("us-east-1c/r3.large", R3_LARGE, 140.0, steady_fraction=0.27),
    MarketSpec("eu-west-1c/r3.large", R3_LARGE, 101.0, steady_fraction=0.25),
    MarketSpec("us-east-1d/r3.large", R3_LARGE, 60.0, steady_fraction=0.11),
    MarketSpec("ap-south-1a/r3.large", R3_LARGE, 35.0, steady_fraction=0.30),
    MarketSpec("sa-east-1a/r3.large", R3_LARGE, 18.8, steady_fraction=0.35),
    MarketSpec("us-east-1a/r3.xlarge", R3_XLARGE, 280.0, steady_fraction=0.23),
    MarketSpec("us-east-1b/r3.xlarge", R3_XLARGE, 90.0, steady_fraction=0.21),
    MarketSpec("us-east-1a/m1.xlarge", M1_XLARGE, 180.0, steady_fraction=0.26),
    MarketSpec("us-east-1a/m2.2xlarge", M2_2XLARGE, 240.0, steady_fraction=0.22),
    MarketSpec("us-east-1a/m3.2xlarge", M3_2XLARGE, 160.0, steady_fraction=0.24),
    # "Lowball" pools: very cheap steady price, but churned by frequent
    # sub-bid surges (high billed mean) — instantaneous-price selection
    # (SpotFleet lowestPrice) lands here and overpays (§5.5, Figure 11a).
    MarketSpec("us-east-1e/r3.large", R3_LARGE, 45.0, steady_fraction=0.08, churn_rate_per_hour=1.5),
    MarketSpec("ap-northeast-1a/r3.large", R3_LARGE, 30.0, steady_fraction=0.10, churn_rate_per_hour=1.2),
]


def build_market_traces(
    rng: SeededRNG,
    catalog: Optional[Sequence[MarketSpec]] = None,
    horizon: float = 90 * 24 * HOUR,
) -> Dict[str, PriceTrace]:
    """Materialise a synthetic price trace for every catalog entry.

    The spike rate is set to ``1 / target_mttf``, so that at a bid equal to
    the on-demand price the measured MTTF approximates the catalog target.
    """
    specs = EC2_CATALOG if catalog is None else list(catalog)
    traces: Dict[str, PriceTrace] = {}
    for spec in specs:
        traces[spec.market_id] = peaky_trace(
            rng.child(spec.market_id),
            spec.instance_type.on_demand_price,
            steady_fraction=spec.steady_fraction,
            spike_rate_per_hour=1.0 / spec.target_mttf_hours,
            spike_duration_mean=spec.spike_duration_hours * 3600.0,
            horizon=horizon,
            step=min(spec.step_seconds, spec.spike_duration_hours * 3600.0),
            churn_rate_per_hour=spec.churn_rate_per_hour,
        )
    return traces
