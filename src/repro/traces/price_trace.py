"""Piecewise-constant spot price traces.

A trace is a sequence of ``(start_time, price)`` segments covering
``[0, horizon)``.  Revocation in an EC2-style market is *deterministic* given
a trace and a bid: the instance dies at the first instant the price strictly
exceeds the bid.  ``PriceTrace`` therefore exposes exact exceedance queries
rather than sampling.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np


class PriceTrace:
    """An immutable piecewise-constant price series on ``[0, horizon)``.

    Args:
        times: segment start times, strictly increasing, ``times[0] == 0``.
        prices: price during ``[times[i], times[i+1])``; same length as times.
        horizon: end of the trace; queries beyond it wrap around (the trace
            is treated as periodic) so that long simulations never fall off
            the end of a finite synthetic trace.
    """

    def __init__(self, times: Sequence[float], prices: Sequence[float], horizon: float):
        times_arr = np.asarray(times, dtype=float)
        prices_arr = np.asarray(prices, dtype=float)
        if times_arr.ndim != 1 or times_arr.shape != prices_arr.shape:
            raise ValueError("times and prices must be 1-D arrays of equal length")
        if len(times_arr) == 0:
            raise ValueError("trace must have at least one segment")
        if times_arr[0] != 0.0:
            raise ValueError(f"first segment must start at 0, got {times_arr[0]}")
        if np.any(np.diff(times_arr) <= 0):
            raise ValueError("segment start times must be strictly increasing")
        if horizon <= times_arr[-1]:
            raise ValueError("horizon must exceed the last segment start")
        if np.any(prices_arr < 0):
            raise ValueError("prices must be non-negative")
        self._times = times_arr
        self._prices = prices_arr
        self.horizon = float(horizon)
        # Cumulative integral of price from 0 to each segment start (plus the
        # horizon endpoint), so mean_price is O(log n) instead of a scan.
        widths = np.diff(np.append(times_arr, horizon))
        self._cumint = np.concatenate([[0.0], np.cumsum(self._prices * widths)])
        # Integral over one full period, for closed-form multi-period windows.
        self._period_integral = float(
            self._cumint[-2] + self._prices[-1] * (horizon - self._times[-1])
        )

    @property
    def times(self) -> np.ndarray:
        return self._times

    @property
    def prices(self) -> np.ndarray:
        return self._prices

    def __len__(self) -> int:
        return len(self._times)

    def _wrap(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"negative time {t}")
        return t % self.horizon

    def price_at(self, t: float) -> float:
        """Price in effect at absolute time ``t`` (periodic past horizon)."""
        tw = self._wrap(t)
        idx = int(np.searchsorted(self._times, tw, side="right")) - 1
        return float(self._prices[idx])

    def prices_at(self, ts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`price_at` over an array of absolute times."""
        ts = np.asarray(ts, dtype=float)
        if ts.size and float(ts.min()) < 0:
            raise ValueError(f"negative time {float(ts.min())}")
        wrapped = np.mod(ts, self.horizon)
        idx = np.searchsorted(self._times, wrapped, side="right") - 1
        return self._prices[idx]

    def mean_price(self, start: float, end: float) -> float:
        """Time-weighted mean price over ``[start, end]``.

        Closed form over the periodic trace: the head partial period, a full-
        period count × the cached period integral, and the tail partial — two
        ``searchsorted`` calls total, instead of the chunked while-loop that
        re-integrated every spanned period.
        """
        if end < start:
            raise ValueError("end must be >= start")
        if end == start:
            return self.price_at(start)
        offset = self._wrap(start)
        remaining = self.horizon - offset
        if remaining <= 1e-9:
            offset = 0.0
            remaining = self.horizon
        span = end - start
        if span <= remaining:
            # Whole window inside one period: a single exact integral (this
            # is the hot path — the long-run simulator's billing segments are
            # hours long against multi-month traces).
            total = self._integrate_within(offset, offset + span)
        else:
            total = self._integrate_within(offset, self.horizon)
            rest = span - remaining
            full_periods = int(math.floor(rest / self.horizon))
            tail = rest - full_periods * self.horizon
            total += full_periods * self._period_integral
            if tail > 1e-12:
                total += self._integral_to(tail)
        return total / (end - start)

    def _integrate_within(self, a: float, b: float) -> float:
        """Integrate price over ``[a, b]`` where both lie in one period."""
        return self._integral_to(b) - self._integral_to(a)

    def _integral_to(self, t: float) -> float:
        """Integral of price over ``[0, t]`` for t within one period."""
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return float(self._cumint[idx] + self._prices[idx] * (t - self._times[idx]))

    def next_exceedance(self, t: float, threshold: float) -> Optional[float]:
        """First absolute time ``>= t`` at which price strictly exceeds ``threshold``.

        Returns None if the (periodic) trace never exceeds the threshold.
        """
        if not np.any(self._prices > threshold):
            return None
        tw = self._wrap(t)
        base = t - tw
        idx = int(np.searchsorted(self._times, tw, side="right")) - 1
        # Current segment already above threshold: exceedance is immediate.
        if self._prices[idx] > threshold:
            return t
        # Scan the remainder of this period.
        above = np.nonzero(self._prices[idx + 1 :] > threshold)[0]
        if len(above) > 0:
            return self._snap_above(base + float(self._times[idx + 1 + above[0]]), threshold)
        # Wrap: first exceedance anywhere in the next period.
        first = int(np.nonzero(self._prices > threshold)[0][0])
        return self._snap_above(base + self.horizon + float(self._times[first]), threshold)

    #: Linear nudges tried before the snap widens geometrically, and the cap
    #: on geometric doublings before the snap gives up loudly.
    _SNAP_LINEAR_NUDGES = 4
    _SNAP_GEOMETRIC_LIMIT = 64

    def _snap_above(self, t_abs: float, threshold: float) -> float:
        """Nudge a reconstructed absolute time forward past float round-off
        so the price at the returned instant genuinely exceeds the threshold
        (``base + times[i]`` can land an ulp before the segment boundary).

        The first nudges are linear (1e-9 relative, the round-off scale); if
        those do not cross the boundary the step widens geometrically, and
        after ``_SNAP_GEOMETRIC_LIMIT`` doublings the snap raises instead of
        silently returning an instant at which the price does *not* exceed
        the threshold — a silent miss here would mint a revocation time at
        which the instance survives.
        """
        candidate = t_abs
        for _ in range(self._SNAP_LINEAR_NUDGES):
            if self.price_at(candidate) > threshold:
                return candidate
            candidate += 1e-9 * max(1.0, abs(candidate))
        step = 1e-9 * max(1.0, abs(candidate))
        for _ in range(self._SNAP_GEOMETRIC_LIMIT):
            if self.price_at(candidate) > threshold:
                return candidate
            candidate += step
            step *= 2.0
        if self.price_at(candidate) > threshold:
            return candidate
        raise RuntimeError(
            f"price trace snap failed: no price > {threshold} reachable from "
            f"t={t_abs} after {self._SNAP_LINEAR_NUDGES} linear and "
            f"{self._SNAP_GEOMETRIC_LIMIT} geometric nudges (reached "
            f"{candidate}); the reconstructed exceedance instant is invalid"
        )

    def next_exceedance_grid(
        self, ts: np.ndarray, threshold: float
    ) -> Optional[np.ndarray]:
        """Vectorised :meth:`next_exceedance` over an array of times.

        Returns the first instant ``>= ts[i]`` at which the (periodic) price
        strictly exceeds ``threshold``, for every grid point at once, or None
        when the trace never exceeds the threshold anywhere.  Lane-for-lane
        this replicates the scalar path — segment scan, periodic wrap, and
        the forward snap past float round-off — so MTTF estimation over a
        month of hourly launch instants is a few array passes instead of one
        ``next_exceedance`` probe per point.
        """
        above = self._prices > threshold
        if not np.any(above):
            return None
        ts = np.asarray(ts, dtype=float)
        if ts.size == 0:
            return np.empty(0)
        if float(ts.min()) < 0:
            raise ValueError(f"negative time {float(ts.min())}")
        tw = np.mod(ts, self.horizon)
        base = ts - tw
        idx = np.searchsorted(self._times, tw, side="right") - 1
        above_positions = np.nonzero(above)[0]
        # First above-threshold segment strictly after the current one; wrap
        # to the first anywhere in the next period when none remains.
        pos = np.searchsorted(above_positions, idx, side="right")
        wraps = pos >= len(above_positions)
        nxt = above_positions[np.minimum(pos, len(above_positions) - 1)]
        first = above_positions[0]
        candidates = np.where(
            wraps,
            base + self.horizon + float(self._times[first]),
            base + self._times[nxt],
        )
        immediate = above[idx]
        result = np.where(immediate, ts, candidates)
        # Vectorised snap: every non-immediate lane walks the same nudge
        # schedule as the scalar `_snap_above`.
        pending = ~immediate
        for _ in range(self._SNAP_LINEAR_NUDGES):
            if not pending.any():
                return result
            pending &= self.prices_at(result) <= threshold
            result = np.where(
                pending,
                result + 1e-9 * np.maximum(1.0, np.abs(result)),
                result,
            )
        steps = 1e-9 * np.maximum(1.0, np.abs(result))
        for _ in range(self._SNAP_GEOMETRIC_LIMIT):
            pending &= self.prices_at(result) <= threshold
            if not pending.any():
                return result
            result = np.where(pending, result + steps, result)
            steps = steps * 2.0
        pending &= self.prices_at(result) <= threshold
        if pending.any():
            bad = float(ts[np.nonzero(pending)[0][0]])
            raise RuntimeError(
                f"price trace snap failed: no price > {threshold} reachable "
                f"from t={bad} after {self._SNAP_LINEAR_NUDGES} linear and "
                f"{self._SNAP_GEOMETRIC_LIMIT} geometric nudges; the "
                f"reconstructed exceedance instant is invalid"
            )
        return result

    def next_drop_below(self, t: float, threshold: float) -> Optional[float]:
        """First absolute time ``>= t`` at which price is ``<= threshold``."""
        if not np.any(self._prices <= threshold):
            return None
        tw = self._wrap(t)
        base = t - tw
        idx = int(np.searchsorted(self._times, tw, side="right")) - 1
        if self._prices[idx] <= threshold:
            return t
        below = np.nonzero(self._prices[idx + 1 :] <= threshold)[0]
        if len(below) > 0:
            return base + float(self._times[idx + 1 + below[0]])
        first = int(np.nonzero(self._prices <= threshold)[0][0])
        return base + self.horizon + float(self._times[first])

    def sample_grid(self, dt: float, start: float = 0.0, end: Optional[float] = None) -> np.ndarray:
        """Prices sampled on a uniform grid (used for correlation analysis).

        One vectorised ``searchsorted`` over the wrapped grid — the Fig 4
        analysis samples 16-20 markets at 5-minute resolution over months,
        where a per-point ``price_at`` loop dominated its runtime.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if start < 0:
            raise ValueError(f"negative time {start}")
        end_time = self.horizon if end is None else end
        grid = np.arange(start, end_time, dt)
        wrapped = np.mod(grid, self.horizon)
        idx = np.searchsorted(self._times, wrapped, side="right") - 1
        return self._prices[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PriceTrace(segments={len(self)}, horizon={self.horizon:.0f}s, "
            f"min={self._prices.min():.4f}, max={self._prices.max():.4f})"
        )
