"""Piecewise-constant spot price traces.

A trace is a sequence of ``(start_time, price)`` segments covering
``[0, horizon)``.  Revocation in an EC2-style market is *deterministic* given
a trace and a bid: the instance dies at the first instant the price strictly
exceeds the bid.  ``PriceTrace`` therefore exposes exact exceedance queries
rather than sampling.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class PriceTrace:
    """An immutable piecewise-constant price series on ``[0, horizon)``.

    Args:
        times: segment start times, strictly increasing, ``times[0] == 0``.
        prices: price during ``[times[i], times[i+1])``; same length as times.
        horizon: end of the trace; queries beyond it wrap around (the trace
            is treated as periodic) so that long simulations never fall off
            the end of a finite synthetic trace.
    """

    def __init__(self, times: Sequence[float], prices: Sequence[float], horizon: float):
        times_arr = np.asarray(times, dtype=float)
        prices_arr = np.asarray(prices, dtype=float)
        if times_arr.ndim != 1 or times_arr.shape != prices_arr.shape:
            raise ValueError("times and prices must be 1-D arrays of equal length")
        if len(times_arr) == 0:
            raise ValueError("trace must have at least one segment")
        if times_arr[0] != 0.0:
            raise ValueError(f"first segment must start at 0, got {times_arr[0]}")
        if np.any(np.diff(times_arr) <= 0):
            raise ValueError("segment start times must be strictly increasing")
        if horizon <= times_arr[-1]:
            raise ValueError("horizon must exceed the last segment start")
        if np.any(prices_arr < 0):
            raise ValueError("prices must be non-negative")
        self._times = times_arr
        self._prices = prices_arr
        self.horizon = float(horizon)
        # Cumulative integral of price from 0 to each segment start (plus the
        # horizon endpoint), so mean_price is O(log n) instead of a scan.
        widths = np.diff(np.append(times_arr, horizon))
        self._cumint = np.concatenate([[0.0], np.cumsum(self._prices * widths)])

    @property
    def times(self) -> np.ndarray:
        return self._times

    @property
    def prices(self) -> np.ndarray:
        return self._prices

    def __len__(self) -> int:
        return len(self._times)

    def _wrap(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"negative time {t}")
        return t % self.horizon

    def price_at(self, t: float) -> float:
        """Price in effect at absolute time ``t`` (periodic past horizon)."""
        tw = self._wrap(t)
        idx = int(np.searchsorted(self._times, tw, side="right")) - 1
        return float(self._prices[idx])

    def mean_price(self, start: float, end: float) -> float:
        """Time-weighted mean price over ``[start, end]``."""
        if end < start:
            raise ValueError("end must be >= start")
        if end == start:
            return self.price_at(start)
        # Integrate in horizon-sized chunks to respect periodicity.  Guard
        # against float round-off at period boundaries (where the remaining
        # span of the current period collapses to ~0 and the loop would
        # stall).
        total = 0.0
        t = start
        while t < end - 1e-12:
            offset = self._wrap(t)
            remaining = self.horizon - offset
            if remaining <= 1e-9:
                offset = 0.0
                remaining = self.horizon
            chunk_end = min(end, t + remaining)
            total += self._integrate_within(offset, offset + (chunk_end - t))
            t = chunk_end
        return total / (end - start)

    def _integrate_within(self, a: float, b: float) -> float:
        """Integrate price over ``[a, b]`` where both lie in one period."""
        return self._integral_to(b) - self._integral_to(a)

    def _integral_to(self, t: float) -> float:
        """Integral of price over ``[0, t]`` for t within one period."""
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return float(self._cumint[idx] + self._prices[idx] * (t - self._times[idx]))

    def next_exceedance(self, t: float, threshold: float) -> Optional[float]:
        """First absolute time ``>= t`` at which price strictly exceeds ``threshold``.

        Returns None if the (periodic) trace never exceeds the threshold.
        """
        if not np.any(self._prices > threshold):
            return None
        tw = self._wrap(t)
        base = t - tw
        idx = int(np.searchsorted(self._times, tw, side="right")) - 1
        # Current segment already above threshold: exceedance is immediate.
        if self._prices[idx] > threshold:
            return t
        # Scan the remainder of this period.
        above = np.nonzero(self._prices[idx + 1 :] > threshold)[0]
        if len(above) > 0:
            return self._snap_above(base + float(self._times[idx + 1 + above[0]]), threshold)
        # Wrap: first exceedance anywhere in the next period.
        first = int(np.nonzero(self._prices > threshold)[0][0])
        return self._snap_above(base + self.horizon + float(self._times[first]), threshold)

    def _snap_above(self, t_abs: float, threshold: float) -> float:
        """Nudge a reconstructed absolute time forward past float round-off
        so the price at the returned instant genuinely exceeds the threshold
        (``base + times[i]`` can land an ulp before the segment boundary)."""
        candidate = t_abs
        for _ in range(4):
            if self.price_at(candidate) > threshold:
                return candidate
            candidate += 1e-9 * max(1.0, abs(candidate))
        return candidate

    def next_drop_below(self, t: float, threshold: float) -> Optional[float]:
        """First absolute time ``>= t`` at which price is ``<= threshold``."""
        if not np.any(self._prices <= threshold):
            return None
        tw = self._wrap(t)
        base = t - tw
        idx = int(np.searchsorted(self._times, tw, side="right")) - 1
        if self._prices[idx] <= threshold:
            return t
        below = np.nonzero(self._prices[idx + 1 :] <= threshold)[0]
        if len(below) > 0:
            return base + float(self._times[idx + 1 + below[0]])
        first = int(np.nonzero(self._prices <= threshold)[0][0])
        return base + self.horizon + float(self._times[first])

    def sample_grid(self, dt: float, start: float = 0.0, end: Optional[float] = None) -> np.ndarray:
        """Prices sampled on a uniform grid (used for correlation analysis).

        One vectorised ``searchsorted`` over the wrapped grid — the Fig 4
        analysis samples 16-20 markets at 5-minute resolution over months,
        where a per-point ``price_at`` loop dominated its runtime.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if start < 0:
            raise ValueError(f"negative time {start}")
        end_time = self.horizon if end is None else end
        grid = np.arange(start, end_time, dt)
        wrapped = np.mod(grid, self.horizon)
        idx = np.searchsorted(self._times, wrapped, side="right") - 1
        return self._prices[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PriceTrace(segments={len(self)}, horizon={self.horizon:.0f}s, "
            f"min={self._prices.min():.4f}, max={self._prices.max():.4f})"
        )
