"""GCE preemptible-instance availability model.

GCE preemptible VMs have a fixed price, no bidding, and a hard 24-hour
maximum lifetime.  The paper measured ~100 preemptible instances over a month
and found MTTFs of ~20-23 hours with most revocations happening close to the
24-hour cap (Figure 2b).  We model lifetimes as an exponential truncated at
24 hours, with the exponential scale chosen so the *truncated mean* matches a
target MTTF.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.clock import HOUR
from repro.simulation.rng import SeededRNG

MAX_PREEMPTIBLE_LIFETIME = 24 * HOUR


class PreemptibleLifetimeModel:
    """Samples revocation lifetimes for GCE-style preemptible instances."""

    def __init__(self, target_mttf: float = 22 * HOUR, max_lifetime: float = MAX_PREEMPTIBLE_LIFETIME):
        if not 0 < target_mttf <= max_lifetime:
            raise ValueError("target_mttf must be in (0, max_lifetime]")
        self.max_lifetime = float(max_lifetime)
        self.target_mttf = float(target_mttf)
        self._scale = self._solve_scale(target_mttf, max_lifetime)

    @staticmethod
    def _truncated_mean(scale: float, cap: float) -> float:
        """Mean of min(Exp(scale), cap) = scale * (1 - exp(-cap/scale))."""
        return scale * (1.0 - np.exp(-cap / scale))

    @classmethod
    def _solve_scale(cls, target: float, cap: float) -> float:
        """Bisect for the exponential scale whose truncated mean hits target."""
        if target >= cap * (1 - 1e-9):
            return float("inf")
        lo, hi = 1e-6, cap * 1e6
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if cls._truncated_mean(mid, cap) < target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def sample_lifetime(self, rng: SeededRNG) -> float:
        """Draw one instance lifetime in seconds."""
        if np.isinf(self._scale):
            return self.max_lifetime
        return float(min(rng.exponential(self._scale), self.max_lifetime))

    def sample_lifetimes(self, rng: SeededRNG, n: int) -> np.ndarray:
        """Draw ``n`` lifetimes (vectorised)."""
        if np.isinf(self._scale):
            return np.full(n, self.max_lifetime)
        return np.minimum(rng.exponential(self._scale, size=n), self.max_lifetime)

    @property
    def mttf(self) -> float:
        """Expected lifetime in seconds (equals the calibration target)."""
        if np.isinf(self._scale):
            return self.max_lifetime
        return self._truncated_mean(self._scale, self.max_lifetime)
