"""The streaming workload suite: identity, stateful wordcount, windows.

Mirrors the Flink-vs-Spark reproducibility study's benchmark trio
(PAPERS.md) on the micro-batch plane, plus the recovery benchmark that is
the subsystem's reason to exist: revoke transient servers mid-stream and
measure how τ-periodic state checkpointing bounds the recovery latency of
the next batch.

Every workload follows the fault-harness protocol (``load()`` / ``run()``
returning a comparable result), so the chaos driver and the golden
equivalence suites run them unmodified.
"""

from __future__ import annotations

import statistics
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext
    from repro.engine.rdd import RDD

from repro.streaming.context import StreamingContext

#: Fixed wordcount vocabulary — part of the workload's seed contract.
VOCABULARY: Tuple[str, ...] = (
    "spot", "market", "revoke", "bid", "price", "batch", "stream", "state",
    "window", "slide", "spark", "flint", "server", "transient", "lineage",
    "checkpoint", "tau", "delta", "mttf", "worker", "shuffle", "fetch",
    "block", "cache", "replay", "seed", "drift", "burst", "queue", "drain",
)


# ----------------------------------------------------------------------
# Module-level kernels: picklable for the process/async executor plane.
# ----------------------------------------------------------------------
def _identity(record):
    return record


def _identity_batch(batch):
    """Columnar twin of :func:`_identity` (a fully-kernelled chain)."""
    return batch


def _split_words(line: str) -> List[str]:
    return line.split()


def _word_one(word: str) -> Tuple[str, int]:
    return (word, 1)


def _add(a, b):
    return a + b


def _sum_update(new_values: List[int], old_state: Optional[int]) -> int:
    return (old_state or 0) + sum(new_values)


def _sorted_collect(rdd: "RDD") -> Tuple:
    return tuple(sorted(rdd.collect()))


class StreamingIdentityWorkload:
    """Pass-through pipe: rate source → identity map → per-batch count.

    The identity map carries a columnar ``batch_fn`` twin, so under
    ``FLINT_COLUMNAR=on`` the whole chain lowers to vectorised batches —
    the throughput workload deliberately exercises the fastest plane.
    """

    def __init__(
        self,
        ctx: "FlintContext",
        records_per_batch: int = 4_000,
        partitions: int = 8,
        num_batches: int = 8,
        batch_interval: float = 30.0,
        record_size: int = 125_000,
    ):
        self.ctx = ctx
        self.records_per_batch = records_per_batch
        self.partitions = partitions
        self.num_batches = num_batches
        self.ssc = StreamingContext(ctx, batch_interval)
        source = self.ssc.rate_stream(records_per_batch, partitions, record_size)
        self.source = source
        passed = source.map(_identity, batch_fn=_identity_batch)
        passed.count_per_batch("count")

    def load(self) -> None:
        pass

    def run(self) -> Tuple[int, ...]:
        infos = self.ssc.run(self.num_batches)
        return tuple(info.results["count"] for info in infos)

    def expected(self) -> Tuple[int, ...]:
        per_batch = self.source.source.records_in_batch(0)
        return tuple(per_batch for _ in range(self.num_batches))


class StreamingWordCountWorkload:
    """Stateful wordcount: text source → split → (word, 1) → reduce →
    ``update_state_by_key`` running totals.

    Strings keep this on the row plane; the state chain is the lineage
    that τ-periodic checkpointing must truncate.
    """

    def __init__(
        self,
        ctx: "FlintContext",
        lines_per_batch: int = 1_600,
        partitions: int = 8,
        num_batches: int = 8,
        batch_interval: float = 30.0,
        words_per_line: int = 4,
        seed: int = 23,
        record_size: int = 200_000,
        checkpointing: bool = False,
        mttf: float = 1800.0,
        initial_delta: Optional[float] = None,
        min_tau: float = 30.0,
        max_tau: Optional[float] = None,
    ):
        self.ctx = ctx
        self.num_batches = num_batches
        self.seed = seed
        self.ssc = StreamingContext(ctx, batch_interval)
        source = self.ssc.text_stream(
            lines_per_batch, partitions, VOCABULARY, seed, words_per_line,
            record_size,
        )
        self.source = source
        counts = (
            source.flat_map(_split_words)
            .map(_word_one)
            .reduce_by_key(_add, partitions)
        )
        self.state = counts.update_state_by_key(
            _sum_update, partitions, record_size=max(1, record_size // 4)
        )
        self.state.count_per_batch("keys")
        if checkpointing:
            self.ssc.enable_state_checkpointing(
                mttf, initial_delta=initial_delta, min_tau=min_tau, max_tau=max_tau
            )

    def load(self) -> None:
        pass

    def run(self):
        infos = self.ssc.run(self.num_batches)
        final = dict(self.state.latest_rdd.collect())
        return tuple(info.results["keys"] for info in infos), tuple(
            sorted(final.items())
        )

    def expected_state(self, num_batches: Optional[int] = None) -> Dict[str, int]:
        """Reference running totals computed without the engine."""
        counts: Dict[str, int] = {}
        for b in range(num_batches or self.num_batches):
            for line in self.source.source.reference_records(b):
                for word in line.split():
                    counts[word] = counts.get(word, 0) + 1
        return counts


class StreamingWindowWorkload:
    """Windowed aggregation: event source → ``reduce_by_key_and_window``.

    ``slide == window`` gives tumbling windows; ``slide < window`` sliding
    ones.  Emitting batches collect their sorted per-key sums to the
    driver; non-emitting batches record ``None``.
    """

    def __init__(
        self,
        ctx: "FlintContext",
        records_per_batch: int = 2_000,
        partitions: int = 8,
        num_batches: int = 9,
        window: int = 3,
        slide: Optional[int] = None,
        num_keys: int = 40,
        batch_interval: float = 30.0,
        seed: int = 31,
        record_size: int = 250_000,
        persist_source: bool = True,
    ):
        self.ctx = ctx
        self.num_batches = num_batches
        self.window = window
        self.slide = window if slide is None else slide
        self.ssc = StreamingContext(ctx, batch_interval)
        source = self.ssc.event_stream(
            records_per_batch, partitions, num_keys, seed,
            record_size, value_range=(1, 10),
        )
        if persist_source:
            source.persist()
        self.source = source
        windowed = source.reduce_by_key_and_window(
            _add, window, self.slide, partitions
        )
        windowed.foreach_rdd(_sorted_collect, "window")

    def load(self) -> None:
        pass

    def run(self) -> Tuple[Tuple[int, Tuple], ...]:
        infos = self.ssc.run(self.num_batches)
        return tuple(
            (info.index, info.results["window"])
            for info in infos
            if info.results["window"] is not None
        )

    def expected(self) -> Tuple[Tuple[int, Tuple], ...]:
        """Driver-side window sums from the source's reference records."""
        out = []
        for b in range(self.num_batches):
            done = b + 1
            if done < self.window or (done - self.window) % self.slide:
                continue
            sums: Dict[int, int] = {}
            for member in range(b - self.window + 1, b + 1):
                for key, value in self.source.source.reference_records(member):
                    sums[key] = sums.get(key, 0) + value
            out.append((b, tuple(sorted(sums.items()))))
        return tuple(out)


# ----------------------------------------------------------------------
# The recovery benchmark: streaming state meets transient servers.
# ----------------------------------------------------------------------
def run_recovery_benchmark(
    num_workers: int = 6,
    num_batches: int = 12,
    revoke_after_batch: int = 8,
    revoke_count: Optional[int] = None,
    replace_delay: float = 10.0,
    checkpointing: bool = True,
    mttf: float = 1800.0,
    batch_interval: float = 30.0,
    lines_per_batch: int = 1_600,
    partitions: int = 8,
    seed: int = 23,
    initial_delta: float = 20.0,
    min_tau: float = 30.0,
    max_tau: float = 60.0,
    mode: str = "incremental",
) -> Dict[str, float]:
    """Revoke servers mid-stream; measure how checkpointing bounds recovery.

    Runs the stateful wordcount on a deterministic on-demand cluster and,
    half an idle interval after batch ``revoke_after_batch`` completes,
    force-revokes ``revoke_count`` workers (default: the whole pool — a
    homogeneous spot cluster loses all servers at once, §3.1.1) with
    replacements booting ``replace_delay`` seconds later.  Every cached
    state partition and shuffle output dies with the pool, so the next
    batch recomputes its state generation from the deepest durable data:
    the last τ-periodic state checkpoint when the policy is on, batch 0's
    sources when it is off.  Reported are simulated steady vs recovery
    batch latency and the task count the recovery batch needed — the
    quantities checkpointing shrinks.

    Everything reported is simulated (deterministic for a fixed seed and
    backend-invariant), so the numbers double as perf-gate anchors.
    """
    if not 0 <= revoke_after_batch < num_batches - 1:
        raise ValueError("revoke_after_batch must leave at least one batch after it")
    from repro.faults.harness import _PRICE, build_fault_context

    ctx = build_fault_context(num_workers, seed=0, mode=mode)
    workload = StreamingWordCountWorkload(
        ctx,
        lines_per_batch=lines_per_batch,
        partitions=partitions,
        num_batches=num_batches,
        batch_interval=batch_interval,
        seed=seed,
        checkpointing=checkpointing,
        mttf=mttf,
        initial_delta=initial_delta,
        min_tau=min_tau,
        max_tau=max_tau,
    )
    ssc = workload.ssc
    stats = ctx.scheduler.stats
    recovery_tasks = 0
    for b in range(num_batches):
        if b == revoke_after_batch + 1:
            tasks_before = stats.tasks_completed
            ssc.run_batch()
            recovery_tasks = stats.tasks_completed - tasks_before
        else:
            ssc.run_batch()
        if b == revoke_after_batch:
            # Mid-stream revocation: half an idle interval after the batch,
            # while the next batch's deadline is already fixed.
            ctx.env.run_until(ctx.now + batch_interval / 2)
            victims = ctx.cluster.live_workers()
            if revoke_count is not None:
                victims = victims[:revoke_count]
            market_id = victims[0].instance.market_id
            ctx.cluster.force_revoke(victims)
            ctx.cluster.launch(
                market_id, bid=_PRICE, count=len(victims), delay=replace_delay
            )
    latencies = ssc.latencies()
    steady = statistics.median(latencies[1 : revoke_after_batch + 1])
    recovery = latencies[revoke_after_batch + 1]
    final_state = dict(workload.state.latest_rdd.collect())
    policy = ssc.policy
    return {
        "steady_batch_latency": steady,
        "recovery_batch_latency": recovery,
        "recovery_overhead": recovery - steady,
        "recovery_tasks": recovery_tasks,
        "records_per_second": ssc.sustained_records_per_second(),
        "state_checkpoint_marks": float(policy.stats.marks) if policy else 0.0,
        "final_state_keys": float(len(final_state)),
    }
