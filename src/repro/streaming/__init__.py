"""``repro.streaming``: the micro-batch streaming plane.

DStreams on top of the RDD engine (§6's Spark-Streaming observation made
first-class): a :class:`StreamingContext` drives batches on the simulated
clock, transformations lower to the existing RDD/fusion/columnar/executor
planes, and τ-periodic state checkpointing (``core/interval.py``) keeps
operator-state lineage — and therefore recovery after a revocation —
bounded on transient servers.
"""

from repro.streaming.context import (
    BatchInfo,
    StateCheckpointPolicy,
    StreamingContext,
)
from repro.streaming.dstream import (
    DStream,
    SourceDStream,
    StateDStream,
    TransformedDStream,
    WindowedDStream,
)
from repro.streaming.sources import (
    EventSource,
    RateSource,
    StreamSource,
    TextSource,
)
from repro.streaming.workloads import (
    StreamingIdentityWorkload,
    StreamingWindowWorkload,
    StreamingWordCountWorkload,
    run_recovery_benchmark,
)

__all__ = [
    "BatchInfo",
    "DStream",
    "EventSource",
    "RateSource",
    "SourceDStream",
    "StateCheckpointPolicy",
    "StateDStream",
    "StreamSource",
    "StreamingContext",
    "StreamingIdentityWorkload",
    "StreamingWindowWorkload",
    "StreamingWordCountWorkload",
    "TextSource",
    "TransformedDStream",
    "WindowedDStream",
    "run_recovery_benchmark",
]
