"""The micro-batch driver: batches on the simulated clock (§6 extension).

A :class:`StreamingContext` wraps a :class:`~repro.engine.context.FlintContext`
and drives a DStream graph batch-by-batch.  Two pacing disciplines:

* ``fixed-rate`` (default, Spark Streaming's model): batch ``b`` is
  *scheduled* at ``start + b·interval``; the driver idles until then, runs
  the output actions, and records ``latency = finish - scheduled`` — a run
  that falls behind sees queueing delay in its latency, exactly like a real
  micro-batch engine.
* ``fixed-delay`` (the legacy hand-rolled loop's discipline): process, then
  idle one full interval.  The ported ``StreamingWorkload`` uses this to
  stay bit-identical with its pre-DStream history.

State meets transient servers through :class:`StateCheckpointPolicy`:
every τ = √(2·δ·MTTF) simulated seconds (``core/interval.py``, clamped to
``[min_tau, max_tau]``) the current state generation of every
:class:`~repro.streaming.dstream.StateDStream` is marked in the checkpoint
registry and its partition writes enqueued, truncating the
batch-0-to-now lineage chain.  δ starts from an estimate (or the
FTManager-style conservative memory bound) and refreshes online from the
actual byte volume of completed state checkpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.interval import checkpoint_time_estimate, optimal_checkpoint_interval
from repro.obs import SpanEvent
from repro.streaming.dstream import DStream, SourceDStream, StateDStream
from repro.streaming.sources import (
    DEFAULT_RECORD_SIZE,
    EventSource,
    RateSource,
    StreamSource,
    TextSource,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import FlintContext
    from repro.engine.rdd import RDD

PACING_MODES = ("fixed-rate", "fixed-delay")


@dataclass
class BatchInfo:
    """Everything observed about one completed micro-batch."""

    index: int
    scheduled: float
    started: float
    finished: float
    latency: float
    records: int
    results: Dict[str, Any] = field(default_factory=dict)


@dataclass
class OutputOp:
    """One registered output action: materialises a stream every batch."""

    name: str
    stream: DStream
    action: Callable[["RDD"], Any]


@dataclass
class StateCheckpointStats:
    """Observable behaviour of the τ-periodic state checkpoint policy."""

    marks: int = 0
    delta_updates: int = 0
    tau_history: List[float] = field(default_factory=list)


class StateCheckpointPolicy:
    """τ-periodic checkpointing of streaming operator state (§3.1.1).

    The policy reuses the batch engine's machinery end-to-end: marking goes
    through the :class:`~repro.engine.checkpoint.CheckpointRegistry`, the
    partition writes are the scheduler's ordinary asynchronous checkpoint
    tasks, and once a state generation is fully durable the registry's GC
    truncates every ancestor checkpoint.  Only the *trigger* is new: batch
    boundaries, not a standalone timer, so marks always land on a coherent
    state generation.
    """

    def __init__(
        self,
        ssc: "StreamingContext",
        mttf_fn: Callable[[], float],
        initial_delta: Optional[float] = None,
        min_tau: float = 30.0,
        max_tau: Optional[float] = None,
    ):
        self.ssc = ssc
        self.mttf_fn = mttf_fn
        self.min_tau = min_tau
        self.max_tau = max_tau
        self.delta = (
            initial_delta if initial_delta is not None else self._conservative_delta()
        )
        self.tau = self._compute_tau()
        self.stats = StateCheckpointStats()
        self.last_mark_time = ssc.ctx.now
        self._pending_delta_refresh: List["RDD"] = []

    # -- δ and τ -----------------------------------------------------------
    def _conservative_delta(self) -> float:
        """All cluster memory as state — the FTManager's §3.1.2 upper bound."""
        ctx = self.ssc.ctx
        dfs = ctx.env.dfs.config
        return checkpoint_time_estimate(
            ctx.cluster.total_storage_memory(),
            max(1, ctx.cluster.size),
            dfs.write_bandwidth,
            dfs.replication,
        )

    def _compute_tau(self) -> float:
        tau = optimal_checkpoint_interval(max(self.delta, 1e-6), self.mttf_fn())
        if math.isinf(tau):
            return tau
        tau = max(tau, self.min_tau)
        if self.max_tau is not None:
            tau = min(tau, self.max_tau)
        return tau

    def set_delta(self, delta: float) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.delta = delta
        self.stats.delta_updates += 1
        self.tau = self._compute_tau()
        self.stats.tau_history.append(self.tau)

    def _refresh_delta(self) -> None:
        """Fold completed state checkpoints into the online δ estimate."""
        ctx = self.ssc.ctx
        registry = ctx.checkpoints
        remaining: List["RDD"] = []
        for rdd in self._pending_delta_refresh:
            if not registry.is_fully_checkpointed(rdd):
                remaining.append(rdd)
                continue
            nbytes = sum(
                registry.partition_nbytes(rdd, p) for p in range(rdd.num_partitions)
            )
            if nbytes > 0:
                dfs = ctx.env.dfs.config
                self.set_delta(
                    checkpoint_time_estimate(
                        nbytes,
                        max(1, ctx.cluster.size),
                        dfs.write_bandwidth,
                        dfs.replication,
                    )
                )
        self._pending_delta_refresh = remaining

    # -- the batch-boundary tick ------------------------------------------
    def on_batch_complete(self, batch: int) -> None:
        self._refresh_delta()
        if math.isinf(self.tau):
            return
        ctx = self.ssc.ctx
        if ctx.now - self.last_mark_time < self.tau - 1e-9:
            return
        marked_any = False
        for stream in self.ssc.state_streams():
            rdd = stream.latest_rdd
            if rdd is None:
                continue
            registry = ctx.checkpoints
            if registry.is_fully_checkpointed(rdd):
                continue
            if not registry.is_marked(rdd):
                registry.mark(rdd)
                self.stats.marks += 1
            ctx.scheduler.enqueue_checkpoints_for(rdd)
            stream.last_checkpoint_batch = batch
            self._pending_delta_refresh.append(rdd)
            marked_any = True
        if marked_any:
            self.last_mark_time = ctx.now


class StreamingContext:
    """Drives a DStream graph one micro-batch at a time."""

    def __init__(
        self,
        ctx: "FlintContext",
        batch_interval: float,
        pacing: str = "fixed-rate",
    ):
        if batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        if pacing not in PACING_MODES:
            raise ValueError(f"pacing must be one of {PACING_MODES}")
        self.ctx = ctx
        self.batch_interval = float(batch_interval)
        self.pacing = pacing
        self.streams: List[DStream] = []
        self.outputs: List[OutputOp] = []
        self.batches: List[BatchInfo] = []
        self.policy: Optional[StateCheckpointPolicy] = None
        self.start_time: Optional[float] = None
        self._next_batch = 0
        self._validated = False

    # -- graph construction ------------------------------------------------
    def _register_stream(self, stream: DStream) -> None:
        self.streams.append(stream)

    def source(self, source: StreamSource) -> SourceDStream:
        """Attach any :class:`StreamSource` as a leaf stream."""
        return SourceDStream(self, source)

    def rate_stream(
        self,
        records_per_batch: int,
        num_partitions: int,
        record_size: int = DEFAULT_RECORD_SIZE,
        start: int = 0,
        name: str = "rate",
    ) -> SourceDStream:
        return self.source(
            RateSource(records_per_batch, num_partitions, record_size, start, name)
        )

    def event_stream(
        self,
        records_per_batch: int,
        num_partitions: int,
        num_keys: int,
        seed: int,
        record_size: int = DEFAULT_RECORD_SIZE,
        value_range: Optional[Tuple[int, int]] = None,
        label: str = "batch",
        name: str = "events",
    ) -> SourceDStream:
        return self.source(
            EventSource(
                records_per_batch, num_partitions, num_keys, seed,
                record_size, value_range, label, name,
            )
        )

    def text_stream(
        self,
        lines_per_batch: int,
        num_partitions: int,
        vocabulary: Tuple[str, ...],
        seed: int,
        words_per_line: int = 4,
        record_size: int = DEFAULT_RECORD_SIZE,
        name: str = "text",
    ) -> SourceDStream:
        return self.source(
            TextSource(
                lines_per_batch, num_partitions, vocabulary, seed,
                words_per_line, record_size, name, name,
            )
        )

    def register_output(
        self, stream: DStream, action: Callable[["RDD"], Any], name: Optional[str] = None
    ) -> str:
        """Register an output action; returns its (unique) result name."""
        if name is None:
            name = f"out-{len(self.outputs)}"
        if any(out.name == name for out in self.outputs):
            raise ValueError(f"duplicate output name {name!r}")
        self.outputs.append(OutputOp(name, stream, action))
        return name

    def enable_state_checkpointing(
        self,
        mttf: float | Callable[[], float],
        initial_delta: Optional[float] = None,
        min_tau: float = 30.0,
        max_tau: Optional[float] = None,
    ) -> StateCheckpointPolicy:
        """Turn on τ-periodic operator-state checkpointing."""
        mttf_fn = mttf if callable(mttf) else (lambda: float(mttf))
        self.policy = StateCheckpointPolicy(
            self, mttf_fn, initial_delta, min_tau, max_tau
        )
        return self.policy

    def state_streams(self) -> List[StateDStream]:
        return [s for s in self.streams if isinstance(s, StateDStream)]

    def _validate_graph(self) -> None:
        """Every state stream must feed an output, or it never materialises
        (its cogroup chain would only deepen lazily, batch after batch)."""
        reachable: set = set()
        stack = [out.stream for out in self.outputs]
        while stack:
            stream = stack.pop()
            if id(stream) in reachable:
                continue
            reachable.add(id(stream))
            stack.extend(stream.parents)
        for stream in self.state_streams():
            if id(stream) not in reachable:
                raise ValueError(
                    f"state stream {stream.name!r} has no registered output; "
                    "add one (e.g. stream.count_per_batch()) so its state "
                    "materialises every batch"
                )

    # -- driving batches ---------------------------------------------------
    def run_batch(self) -> BatchInfo:
        """Process the next micro-batch (no pacing idle in fixed-delay)."""
        if not self._validated:
            self._validate_graph()
            self._validated = True
        ctx = self.ctx
        b = self._next_batch
        if self.start_time is None:
            self.start_time = ctx.now
        if self.pacing == "fixed-rate":
            scheduled = self.start_time + b * self.batch_interval
            if ctx.now < scheduled:
                ctx.env.run_until(scheduled)
        else:
            scheduled = ctx.now
        started = ctx.now
        records = sum(
            s.source.records_in_batch(b)
            for s in self.streams
            if isinstance(s, SourceDStream)
        )
        results: Dict[str, Any] = {}
        for out in self.outputs:
            rdd = out.stream.rdd(b)
            results[out.name] = None if rdd is None else out.action(rdd)
        for stream in self.streams:
            stream.post_batch(b)
        if self.policy is not None:
            self.policy.on_batch_complete(b)
        finished = ctx.now
        info = BatchInfo(
            index=b,
            scheduled=scheduled,
            started=started,
            finished=finished,
            latency=finished - scheduled,
            records=records,
            results=results,
        )
        self.batches.append(info)
        obs = ctx.obs
        if obs.enabled:
            obs.bus.emit(
                SpanEvent(
                    kind="stream-batch",
                    name=f"batch-{b}",
                    start=started,
                    end=finished,
                    pool="streaming",
                    attrs={
                        "batch": b,
                        "scheduled": scheduled,
                        "records": records,
                        "latency": info.latency,
                    },
                )
            )
            obs.metrics.inc("streaming.batches")
            obs.metrics.inc("streaming.records", records)
            obs.metrics.observe("streaming.batch_latency", info.latency)
        for stream in self.streams:
            stream.release(b)
        self._next_batch = b + 1
        return info

    def run(self, num_batches: int) -> List[BatchInfo]:
        """Drive ``num_batches`` micro-batches; returns their infos."""
        if num_batches <= 0:
            raise ValueError("num_batches must be positive")
        for _ in range(num_batches):
            self.run_batch()
            if self.pacing == "fixed-delay":
                self.ctx.env.run_until(self.ctx.now + self.batch_interval)
        return self.batches[-num_batches:]

    # -- derived metrics ---------------------------------------------------
    def results(self, name: str) -> List[Any]:
        """Per-batch results of one output (None where nothing emitted)."""
        return [info.results.get(name) for info in self.batches]

    def latencies(self) -> List[float]:
        return [info.latency for info in self.batches]

    def total_records(self) -> int:
        return sum(info.records for info in self.batches)

    def sustained_records_per_second(self) -> float:
        """Simulated ingest rate over the whole run (records / stream span)."""
        if not self.batches:
            return 0.0
        span = self.batches[-1].finished - self.batches[0].scheduled
        if span <= 0:
            return 0.0
        return self.total_records() / span
