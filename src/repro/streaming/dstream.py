"""Discretised streams: batch-indexed RDD graphs (Spark Streaming's model).

A :class:`DStream` is a function from batch index to RDD.  Transformations
build derived streams lazily; nothing materialises until the
:class:`~repro.streaming.context.StreamingContext` drives a batch and runs
the registered output actions.  Because every batch lowers to ordinary
RDDs, the whole existing execution stack — incremental scheduler, fused
narrow chains, columnar batch kernels, and all three executor backends —
applies to streaming jobs unchanged, and the bit-identical contracts those
planes carry extend to streams for free.

Closure discipline: the per-record functions passed to ``map``/``filter``/
``flat_map``/``update_state_by_key`` travel to the executor plane, so they
must capture plain data and pure functions only (never a DStream, RDD, or
context).  The builder callables (``transform``) run driver-side and are
free to capture anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.streaming.sources import StreamSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rdd import RDD
    from repro.streaming.context import StreamingContext


# ----------------------------------------------------------------------
# Picklable closure factories for the state plane.  These are module-level
# so cloudpickle ships them (plus the captured user function) to the
# process/async executors without dragging driver state along.
# ----------------------------------------------------------------------
def _merge_record(merge_fn: Callable[[Any, Any], Any], zero: Any):
    """Fold one cogroup row ``(key, (olds, news))`` into ``(key, merged)``."""

    def fold(kv):
        key, (olds, news) = kv
        old = olds[0] if olds else zero
        new = news[0] if news else zero
        return (key, merge_fn(old, new))

    return fold


def _initial_update(update_fn: Callable[[List[Any], Any], Any]):
    """First-batch update: grouped values, no prior state."""

    def apply(kv):
        key, values = kv
        return (key, update_fn(list(values), None))

    return apply


def _cogroup_update(update_fn: Callable[[List[Any], Any], Any]):
    """Steady-state update over ``(key, (old_states, new_values))`` rows."""

    def apply(kv):
        key, (olds, news) = kv
        return (key, update_fn(list(news), olds[0] if olds else None))

    return apply


def _state_not_none(kv) -> bool:
    return kv[1] is not None


class DStream:
    """One discretised stream: ``rdd(b)`` is batch ``b`` as an RDD.

    Computed RDDs are memoised per batch and retired once no downstream
    consumer can need them again (``keep`` tracks the deepest window over
    this stream).  Subclasses implement :meth:`compute`; a ``None`` return
    means the stream emits nothing at that batch (sliding windows between
    emission points).
    """

    def __init__(self, ssc: "StreamingContext", parents: tuple = ()):
        self.ssc = ssc
        self.parents = tuple(parents)
        #: Batches of history consumers need (windows raise it via require).
        self.keep = 1
        self._rdds: Dict[int, "RDD"] = {}
        self._persisted = False
        ssc._register_stream(self)

    # -- batch -> RDD ------------------------------------------------------
    def compute(self, batch: int) -> Optional["RDD"]:
        raise NotImplementedError

    def rdd(self, batch: int) -> Optional["RDD"]:
        """The (memoised) RDD for one batch, or None when nothing emits."""
        if batch in self._rdds:
            return self._rdds[batch]
        rdd = self.compute(batch)
        if rdd is not None:
            if self._persisted:
                rdd.persist()
            self._rdds[batch] = rdd
        return rdd

    def require(self, batches: int) -> None:
        """A consumer needs the last ``batches`` batches of this stream."""
        self.keep = max(self.keep, batches)

    def post_batch(self, batch: int) -> None:
        """Hook run after batch ``batch``'s output actions complete."""

    def release(self, batch: int) -> None:
        """Retire memoised RDDs that fell out of the retention horizon."""
        horizon = batch - self.keep + 1
        for b in [b for b in self._rdds if b < horizon]:
            rdd = self._rdds.pop(b)
            if self._persisted and rdd.persisted:
                rdd.unpersist()

    def persist(self) -> "DStream":
        """Cache every batch RDD while it is inside the retention horizon.

        Windowed consumers re-read the same parent batches ``window/slide``
        times; persisting trades cluster memory for recomputation, exactly
        like Spark Streaming's default window persistence.
        """
        self._persisted = True
        return self

    # -- transformations ---------------------------------------------------
    def transform(self, build: Callable[["RDD"], "RDD"]) -> "DStream":
        """Arbitrary per-batch RDD-to-RDD transform (driver-side builder)."""
        return TransformedDStream(self.ssc, self, build)

    def map(
        self,
        fn: Callable[[Any], Any],
        compute_multiplier: float = 1.0,
        batch_fn: Optional[Callable] = None,
    ) -> "DStream":
        return self.transform(
            lambda rdd: rdd.map(fn, compute_multiplier, batch_fn=batch_fn)
        )

    def filter(
        self, predicate: Callable[[Any], bool], batch_fn: Optional[Callable] = None
    ) -> "DStream":
        return self.transform(lambda rdd: rdd.filter(predicate, batch_fn=batch_fn))

    def flat_map(
        self,
        fn: Callable[[Any], Any],
        compute_multiplier: float = 1.0,
        batch_fn: Optional[Callable] = None,
    ) -> "DStream":
        return self.transform(
            lambda rdd: rdd.flat_map(fn, compute_multiplier, batch_fn=batch_fn)
        )

    def map_values(
        self, fn: Callable[[Any], Any], batch_fn: Optional[Callable] = None
    ) -> "DStream":
        return self.transform(lambda rdd: rdd.map_values(fn, batch_fn=batch_fn))

    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], num_partitions: Optional[int] = None
    ) -> "DStream":
        return self.transform(lambda rdd: rdd.reduce_by_key(fn, num_partitions))

    # -- windows -----------------------------------------------------------
    def window(self, window: int, slide: Optional[int] = None) -> "DStream":
        """Union of the last ``window`` batches, emitted every ``slide``.

        Both are batch counts; ``slide`` defaults to ``window`` (tumbling).
        The first emission waits for a full window.
        """
        return WindowedDStream(self.ssc, self, window, slide)

    def reduce_by_key_and_window(
        self,
        fn: Callable[[Any, Any], Any],
        window: int,
        slide: Optional[int] = None,
        num_partitions: Optional[int] = None,
    ) -> "DStream":
        return self.window(window, slide).reduce_by_key(fn, num_partitions)

    # -- state -------------------------------------------------------------
    def update_state_by_key(
        self,
        update_fn: Callable[[List[Any], Any], Any],
        num_partitions: Optional[int] = None,
        record_size: Optional[int] = None,
        name: str = "state",
    ) -> "StateDStream":
        """Fold each batch into per-key running state (Spark's API).

        ``update_fn(new_values, old_state) -> new_state`` runs once per key
        per batch; returning ``None`` drops the key from the state.
        """
        return StateDStream(
            self.ssc,
            self,
            update_fn=update_fn,
            num_partitions=num_partitions,
            record_size=record_size,
            name=name,
        )

    def merge_state_by_key(
        self,
        merge_fn: Callable[[Any, Any], Any],
        zero: Any = 0,
        num_partitions: Optional[int] = None,
        record_size: Optional[int] = None,
        name: str = "state",
    ) -> "StateDStream":
        """State fold for pre-aggregated batches (adopt-then-merge).

        The first batch's RDD *becomes* the state (no extra shuffle or map);
        later batches fold via ``cogroup`` + ``merge_fn(old, new)`` with
        ``zero`` standing in for absent sides.  This is the exact lowering
        of the legacy hand-rolled streaming loop, which is what keeps the
        ported ``StreamingWorkload`` bit-identical to it.
        """
        return StateDStream(
            self.ssc,
            self,
            merge_fn=merge_fn,
            zero=zero,
            num_partitions=num_partitions,
            record_size=record_size,
            name=name,
        )

    # -- outputs -----------------------------------------------------------
    def foreach_rdd(self, action: Callable[["RDD"], Any], name: Optional[str] = None) -> str:
        """Register a driver-side output action run on every emitted batch."""
        return self.ssc.register_output(self, action, name)

    def count_per_batch(self, name: Optional[str] = None) -> str:
        """Output action: count each batch's records."""
        return self.foreach_rdd(_action_count, name)

    def collect_per_batch(self, name: Optional[str] = None) -> str:
        """Output action: collect each batch to the driver."""
        return self.foreach_rdd(_action_collect, name)


def _action_count(rdd: "RDD") -> int:
    return rdd.count()


def _action_collect(rdd: "RDD") -> List[Any]:
    return rdd.collect()


class SourceDStream(DStream):
    """Leaf stream backed by a replayable :class:`StreamSource`.

    Keeps a permanent ``batch -> rdd_id`` map (ints only) so recovery tests
    can assert *which* source batches were recomputed after a revocation.
    """

    def __init__(self, ssc: "StreamingContext", source: StreamSource):
        super().__init__(ssc)
        self.source = source
        self.rdd_ids: Dict[int, int] = {}

    def compute(self, batch: int) -> "RDD":
        src = self.source
        rdd = self.ssc.ctx.generate(
            src.generator_for(batch),
            src.num_partitions,
            record_size=src.record_size,
            compute_multiplier=src.compute_multiplier,
            name=f"{src.name}-{batch}",
        )
        self.rdd_ids[batch] = rdd.rdd_id
        return rdd


class TransformedDStream(DStream):
    """Per-batch RDD transform of one parent stream."""

    def __init__(
        self, ssc: "StreamingContext", parent: DStream, build: Callable[["RDD"], "RDD"]
    ):
        super().__init__(ssc, parents=(parent,))
        self.build = build

    def compute(self, batch: int) -> Optional["RDD"]:
        parent = self.parents[0].rdd(batch)
        if parent is None:
            return None
        return self.build(parent)


class WindowedDStream(DStream):
    """Sliding/tumbling union over the parent's last ``window`` batches.

    Emits at batch ``b`` when a full window ``[b-window+1, b]`` is available
    and ``b`` lands on the slide grid; other batches yield ``None``.  The
    parent's retention horizon is raised to ``window`` so the unioned RDDs
    are the *same objects* across overlapping windows (no re-derivation,
    and persisted parents are fetched from cache).
    """

    def __init__(
        self,
        ssc: "StreamingContext",
        parent: DStream,
        window: int,
        slide: Optional[int] = None,
    ):
        if window <= 0:
            raise ValueError("window must be a positive batch count")
        slide = window if slide is None else slide
        if slide <= 0:
            raise ValueError("slide must be a positive batch count")
        super().__init__(ssc, parents=(parent,))
        self.window_batches = window
        self.slide_batches = slide
        parent.require(window)

    def emits_at(self, batch: int) -> bool:
        done = batch + 1  # batches completed once `batch` lands
        return done >= self.window_batches and (
            (done - self.window_batches) % self.slide_batches == 0
        )

    def compute(self, batch: int) -> Optional["RDD"]:
        if not self.emits_at(batch):
            return None
        from repro.engine.transformations import UnionRDD

        parent = self.parents[0]
        members = [
            parent.rdd(i)
            for i in range(batch - self.window_batches + 1, batch + 1)
        ]
        if any(m is None for m in members):  # pragma: no cover - defensive
            raise RuntimeError("window over a non-emitting parent stream")
        if len(members) == 1:
            return members[0]
        return UnionRDD(self.ssc.ctx, members)


class StateDStream(DStream):
    """Per-key running state folded batch-by-batch (``updateStateByKey``).

    Each batch's state RDD is persisted and given a stable name
    (``{name}-{b}``); the previous batch's state is unpersisted *after* the
    batch's outputs run, so exactly one state generation is cached at a
    time.  Lineage still chains every generation back to batch 0 — the
    τ-periodic :class:`~repro.streaming.context.StateCheckpointPolicy`
    truncates it by checkpointing the current generation, which is what
    bounds recovery after a late revocation.
    """

    def __init__(
        self,
        ssc: "StreamingContext",
        parent: DStream,
        update_fn: Optional[Callable[[List[Any], Any], Any]] = None,
        merge_fn: Optional[Callable[[Any, Any], Any]] = None,
        zero: Any = 0,
        num_partitions: Optional[int] = None,
        record_size: Optional[int] = None,
        name: str = "state",
    ):
        if (update_fn is None) == (merge_fn is None):
            raise ValueError("exactly one of update_fn/merge_fn is required")
        super().__init__(ssc, parents=(parent,))
        self.update_fn = update_fn
        self.merge_fn = merge_fn
        self.zero = zero
        self.num_partitions = num_partitions
        self.record_size = record_size
        self.name = name
        #: Current state generation (the latest computed batch's RDD).
        self.latest_rdd: Optional["RDD"] = None
        self.latest_batch: Optional[int] = None
        #: Batch whose state generation was last marked for checkpointing
        #: (set by the state checkpoint policy; None = never).
        self.last_checkpoint_batch: Optional[int] = None
        self.state_rdd_ids: Dict[int, int] = {}
        self._retire: Optional["RDD"] = None

    def compute(self, batch: int) -> "RDD":
        parent = self.parents[0].rdd(batch)
        if parent is None:  # pragma: no cover - defensive
            raise RuntimeError("state stream over a non-emitting parent")
        prev = self.latest_rdd
        if self.merge_fn is not None:
            if prev is None:
                state = parent  # adopt: the first batch *is* the state
            else:
                state = prev.cogroup(parent, self.num_partitions).map(
                    _merge_record(self.merge_fn, self.zero)
                )
                if self.record_size is not None:
                    state = state.set_record_size(self.record_size)
        else:
            if prev is None:
                state = (
                    parent.group_by_key(self.num_partitions)
                    .map(_initial_update(self.update_fn))
                    .filter(_state_not_none)
                )
            else:
                state = prev.cogroup(parent, self.num_partitions).map(
                    _cogroup_update(self.update_fn)
                ).filter(_state_not_none)
            if self.record_size is not None:
                state = state.set_record_size(self.record_size)
        state = state.persist().set_name(f"{self.name}-{batch}")
        self._retire = prev
        self.latest_rdd = state
        self.latest_batch = batch
        self.state_rdd_ids[batch] = state.rdd_id
        return state

    def post_batch(self, batch: int) -> None:
        """Unpersist the superseded state generation (after outputs ran)."""
        retire = self._retire
        if retire is not None and retire.persisted:
            retire.unpersist()
        self._retire = None
