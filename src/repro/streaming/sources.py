"""Unbounded seeded stream sources for the micro-batch plane.

A :class:`StreamSource` describes an infinite discretised input: batch ``b``
of the stream is a deterministic pure function of ``(source config, b)``, so
every backend — inline, process, async executors; row or columnar data
plane — regenerates byte-identical batches, and a revoked partition can
always be recomputed from the source alone (the transient-server property
the whole engine is built around).

Three concrete sources mirror the identity/wordcount/window suite of the
Flink-vs-Spark reproducibility study (PAPERS.md):

* :class:`RateSource` — monotonically increasing integers, the pass-through
  identity benchmark's input;
* :class:`EventSource` — seeded ``(key, value)`` pairs over a bounded key
  space, the windowed-aggregation input (and, with ``value_range=None``,
  a drop-in for the legacy ``StreamingWorkload`` batch generator);
* :class:`TextSource` — seeded lines of words from a fixed vocabulary, the
  stateful-wordcount input.

The per-partition generators returned by :meth:`StreamSource.generator_for`
capture only plain data (ints, strings, tuples) so the executor plane can
ship them out-of-process; they must never close over the source object,
an RDD, or the context.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.simulation.rng import SeededRNG

GB = 10**9

#: Default virtual bytes per record when a source does not override it.
DEFAULT_RECORD_SIZE = 250_000


class StreamSource:
    """One unbounded, replayable input stream (batch-indexed).

    Subclasses implement :meth:`generator_for`, returning a *picklable*
    per-partition generator for one batch.  Everything else — record
    counts, reference materialisation for tests — derives from it.
    """

    def __init__(
        self,
        name: str,
        records_per_batch: int,
        num_partitions: int,
        record_size: int = DEFAULT_RECORD_SIZE,
        compute_multiplier: float = 2.0,
    ):
        if records_per_batch <= 0:
            raise ValueError("records_per_batch must be positive")
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if record_size <= 0:
            raise ValueError("record_size must be positive")
        self.name = name
        self.records_per_batch = records_per_batch
        self.num_partitions = num_partitions
        self.record_size = record_size
        self.compute_multiplier = compute_multiplier

    @property
    def per_partition(self) -> int:
        """Records each partition emits per batch (floor division, so the
        actual batch size is ``per_partition * num_partitions``)."""
        return self.records_per_batch // self.num_partitions

    def records_in_batch(self, batch: int) -> int:
        """How many records batch ``batch`` carries (throughput accounting)."""
        return self.per_partition * self.num_partitions

    def generator_for(self, batch: int) -> Callable[[int], List[Any]]:
        """A pure, picklable ``partition -> records`` function for one batch."""
        raise NotImplementedError

    def reference_records(self, batch: int) -> List[Any]:
        """Driver-side materialisation of one whole batch (test oracle)."""
        gen = self.generator_for(batch)
        out: List[Any] = []
        for p in range(self.num_partitions):
            out.extend(gen(p))
        return out


class RateSource(StreamSource):
    """Consecutive integers at a fixed rate — the identity benchmark input.

    Batch ``b``, partition ``p`` emits
    ``start + b*batch_size + p*per_partition + i`` for ``i`` in range — pure
    arithmetic, no RNG, so recomputation is trivially deterministic.
    """

    def __init__(
        self,
        records_per_batch: int,
        num_partitions: int,
        record_size: int = DEFAULT_RECORD_SIZE,
        start: int = 0,
        name: str = "rate",
    ):
        super().__init__(name, records_per_batch, num_partitions, record_size)
        self.start = int(start)

    def generator_for(self, batch: int) -> Callable[[int], List[int]]:
        per_part = self.per_partition
        base = self.start + batch * per_part * self.num_partitions

        def generate(p: int) -> List[int]:
            lo = base + p * per_part
            return list(range(lo, lo + per_part))

        return generate


class EventSource(StreamSource):
    """Seeded ``(key, value)`` pairs over ``num_keys`` keys.

    With ``value_range=None`` every value is the literal ``1`` and the
    per-partition RNG draws exactly one ``integers`` call — the same stream
    the legacy ``StreamingWorkload`` generator consumed, which is what lets
    the DStream port stay bit-identical to the hand-rolled loop.  With a
    ``(low, high)`` range, a second draw supplies the values (the windowed
    aggregation input).
    """

    def __init__(
        self,
        records_per_batch: int,
        num_partitions: int,
        num_keys: int,
        seed: int,
        record_size: int = DEFAULT_RECORD_SIZE,
        value_range: Optional[Tuple[int, int]] = None,
        label: str = "batch",
        name: str = "events",
    ):
        super().__init__(name, records_per_batch, num_partitions, record_size)
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        self.num_keys = num_keys
        self.seed = seed
        self.value_range = value_range
        self.label = label

    def generator_for(self, batch: int) -> Callable[[int], List[Tuple[int, int]]]:
        per_part = self.per_partition
        seed = self.seed
        keys = self.num_keys
        label = self.label
        value_range = self.value_range

        def generate(p: int) -> List[Tuple[int, int]]:
            rng = SeededRNG(seed, f"{label}-{batch}-{p}")
            if value_range is None:
                return [
                    (int(k), 1)
                    for k in rng.integers(0, keys, size=per_part)
                ]
            drawn = rng.integers(0, keys, size=per_part)
            values = rng.integers(value_range[0], value_range[1], size=per_part)
            return [(int(k), int(v)) for k, v in zip(drawn, values)]

        return generate


class TextSource(StreamSource):
    """Seeded lines of words from a fixed vocabulary — wordcount's input.

    Each record is one line of ``words_per_line`` space-joined words drawn
    uniformly from ``vocabulary``.  Strings keep this stream on the row
    plane (the columnar boundary refuses non-numeric leaves), which is
    exactly the point: wordcount exercises closure-based flat_map under
    every executor backend.
    """

    def __init__(
        self,
        lines_per_batch: int,
        num_partitions: int,
        vocabulary: Tuple[str, ...],
        seed: int,
        words_per_line: int = 4,
        record_size: int = DEFAULT_RECORD_SIZE,
        label: str = "text",
        name: str = "text",
    ):
        super().__init__(name, lines_per_batch, num_partitions, record_size)
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        if words_per_line <= 0:
            raise ValueError("words_per_line must be positive")
        self.vocabulary = tuple(vocabulary)
        self.seed = seed
        self.words_per_line = words_per_line
        self.label = label

    def generator_for(self, batch: int) -> Callable[[int], List[str]]:
        per_part = self.per_partition
        seed = self.seed
        vocab = self.vocabulary
        wpl = self.words_per_line
        label = self.label

        def generate(p: int) -> List[str]:
            rng = SeededRNG(seed, f"{label}-{batch}-{p}")
            picks = rng.integers(0, len(vocab), size=per_part * wpl)
            return [
                " ".join(vocab[int(w)] for w in picks[i * wpl:(i + 1) * wpl])
                for i in range(per_part)
            ]

        return generate
