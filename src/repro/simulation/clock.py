"""Simulated wall clock.

All times in the simulator are floats in *seconds* since the start of the
simulation.  The clock only moves forward; attempting to rewind it indicates
an event-ordering bug, so it raises instead of silently accepting the value.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when a caller tries to move the clock backwards."""


class SimClock:
    """A monotonically non-decreasing simulated clock.

    The clock is deliberately dumb: it stores the current time and enforces
    monotonicity.  Scheduling lives in :class:`repro.simulation.events.EventQueue`.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock to absolute time ``t`` (must be >= now)."""
        if t < self._now - 1e-9:
            raise ClockError(f"cannot rewind clock from {self._now} to {t}")
        self._now = max(self._now, float(t))

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (must be >= 0)."""
        if dt < 0:
            raise ClockError(f"cannot advance clock by negative delta {dt}")
        self._now += float(dt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f})"


HOUR = 3600.0
MINUTE = 60.0
DAY = 24 * HOUR
WEEK = 7 * DAY


def hours(h: float) -> float:
    """Convert hours to simulator seconds."""
    return h * HOUR


def minutes(m: float) -> float:
    """Convert minutes to simulator seconds."""
    return m * MINUTE
