"""Priority event queue for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
guarantees FIFO order among events scheduled for the same instant with the
same priority, which keeps runs deterministic regardless of heap tie-breaking.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(order=True)
class Event:
    """A scheduled simulator event.

    Attributes:
        time: absolute simulated time (seconds) at which the event fires.
        priority: lower fires first among events at the same time.
        seq: monotonically increasing tie-breaker assigned by the queue.
        kind: short string tag used by handlers to dispatch.
        payload: arbitrary event data (not part of the ordering).
        callback: optional callable invoked by ``EventQueue.run`` handlers.
    """

    time: float
    priority: int
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    callback: Optional[Callable[["Event"], None]] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self):
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self,
        time: float,
        kind: str,
        payload: Any = None,
        priority: int = 0,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Insert an event and return the handle (usable for cancellation)."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        event = Event(
            time=float(time),
            priority=priority,
            seq=next(self._counter),
            kind=kind,
            payload=payload,
            callback=callback,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without removing it."""
        self._drop_cancelled()
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next non-cancelled event."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def drain_until(self, time: float) -> Iterator[Event]:
        """Yield events with ``event.time <= time`` in order."""
        while True:
            nxt = self.peek()
            if nxt is None or nxt.time > time:
                return
            yield self.pop()

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
