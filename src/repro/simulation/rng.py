"""Seeded random-number helpers.

Experiments must be reproducible: every stochastic component (price traces,
data generators, workload randomness) draws from its own ``SeededRNG`` derived
from a master seed and a stable label, so adding a new consumer never shifts
the stream seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from a master seed and a label."""
    digest = hashlib.sha256(f"{master_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class SeededRNG:
    """A labelled, reproducible wrapper around :class:`numpy.random.Generator`."""

    def __init__(self, master_seed: int, label: str):
        self.master_seed = int(master_seed)
        self.label = label
        self._rng = np.random.default_rng(derive_seed(master_seed, label))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._rng

    def child(self, label: str) -> "SeededRNG":
        """Derive an independent child stream."""
        return SeededRNG(derive_seed(self.master_seed, self.label), label)

    # Thin pass-throughs for the draws the simulator actually uses.  Keeping
    # them on the wrapper makes call sites explicit about which stream they
    # consume and keeps numpy out of domain-module signatures.
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._rng.uniform(low, high, size)

    def exponential(self, scale: float, size=None):
        return self._rng.exponential(scale, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._rng.normal(loc, scale, size)

    def integers(self, low: int, high: int, size=None):
        return self._rng.integers(low, high, size)

    def choice(self, seq, size=None, replace=True, p=None):
        return self._rng.choice(seq, size=size, replace=replace, p=p)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def random(self, size=None):
        return self._rng.random(size)
