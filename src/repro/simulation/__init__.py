"""Discrete-event simulation substrate.

Every other subsystem (markets, clusters, the execution engine) advances a
shared :class:`~repro.simulation.clock.SimClock` by draining a
:class:`~repro.simulation.events.EventQueue`.  Keeping the clock and queue
separate from the domain code makes each policy deterministic and unit
testable: given the same seed and the same event schedule, every run of an
experiment produces identical timings, costs, and revocations.
"""

from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.rng import SeededRNG, derive_seed

__all__ = ["SimClock", "Event", "EventQueue", "SeededRNG", "derive_seed"]
