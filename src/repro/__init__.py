"""repro - a full reproduction of Flint (EuroSys 2016).

Flint runs batch-interactive data-intensive (BIDI) workloads on transient
cloud servers at near on-demand performance and near spot price, via
automated RDD checkpointing and market-aware server selection.  This package
rebuilds the complete system in Python: a Spark-like RDD engine, a
discrete-event cluster and spot-market simulator, Flint's policies, the
paper's workloads, and the baselines it compares against.

Quickstart::

    from repro import Flint, FlintConfig, Mode, standard_provider

    provider = standard_provider(seed=7)
    flint = Flint(provider, FlintConfig(cluster_size=10, mode=Mode.BATCH), seed=7)
    flint.start()
    report = flint.run(lambda ctx: ctx.parallelize(range(10_000)).map(lambda x: x * x).sum())
    print(report.runtime, flint.cost_summary())
    flint.shutdown()
"""

from repro.core.config import FlintConfig, Mode
from repro.core.flint import Flint, JobReport
from repro.engine.context import FlintContext
from repro.engine.costs import CostModel
from repro.factory import standard_provider

__version__ = "1.0.0"

__all__ = [
    "Flint",
    "FlintConfig",
    "FlintContext",
    "JobReport",
    "Mode",
    "CostModel",
    "standard_provider",
    "__version__",
]
