"""Durable and local storage substrates.

Flint writes RDD checkpoints to HDFS backed by EBS volumes (§4, "Checkpoint
Storage"): data survives revocations, writes cost time proportional to bytes
and replication, and the volumes cost real money ($0.10/GB-month).  Workers
additionally have local SSDs for shuffle outputs and cache spill — storage
that is *lost* on revocation, which is exactly why shuffle maps must re-run
after a kill.
"""

from repro.storage.dfs import DistributedFileSystem, DFSConfig
from repro.storage.ebs import EBSCostModel
from repro.storage.local_disk import LocalDisk

__all__ = ["DistributedFileSystem", "DFSConfig", "EBSCostModel", "LocalDisk"]
