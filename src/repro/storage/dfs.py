"""A simulated distributed file system (HDFS-on-EBS).

The DFS stores real Python objects keyed by path and charges simulated time
for reads and writes from a bandwidth/latency model.  Replication multiplies
write traffic but not read traffic.  Because the paper stores checkpoints on
EBS volumes that persist across revocations, DFS contents survive worker
loss; only worker-local disks are volatile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class DFSConfig:
    """Performance model of the distributed file system.

    Defaults approximate HDFS over gp2 EBS on r3.large nodes: ~100 MB/s
    streaming per client, 3-way replicated writes, and a small per-operation
    latency (NameNode round trip + pipeline setup).  ``inter_az_latency`` is
    added per operation when the cluster spans availability zones — the §5.2
    ablation found checkpoint traffic bandwidth-bound, so this barely moves
    overall runtime, which our model reproduces.
    """

    read_bandwidth: float = 100e6  # bytes/sec per reader
    write_bandwidth: float = 100e6  # bytes/sec per writer, pre-replication
    replication: int = 3
    op_latency: float = 0.05  # seconds per operation
    inter_az_latency: float = 0.0  # extra per-op latency across zones


@dataclass
class _DFSEntry:
    data: Any
    nbytes: int
    created_at: float


class DistributedFileSystem:
    """Durable key-value object store with a timing model."""

    def __init__(self, config: Optional[DFSConfig] = None):
        self.config = config or DFSConfig()
        self._entries: Dict[str, _DFSEntry] = {}
        self.bytes_written_total = 0
        self.bytes_read_total = 0
        self.writes = 0
        self.reads = 0

    # -- timing model -----------------------------------------------------
    def write_duration(self, nbytes: int) -> float:
        """Seconds to durably write ``nbytes`` (replication included)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        cfg = self.config
        return cfg.op_latency + cfg.inter_az_latency + nbytes * cfg.replication / cfg.write_bandwidth

    def read_duration(self, nbytes: int) -> float:
        """Seconds to read ``nbytes`` from the nearest replica."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        cfg = self.config
        return cfg.op_latency + cfg.inter_az_latency + nbytes / cfg.read_bandwidth

    # -- data plane --------------------------------------------------------
    def put(self, path: str, data: Any, nbytes: int, t: float = 0.0) -> None:
        """Store an object durably (overwrites an existing path)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._entries[path] = _DFSEntry(data=data, nbytes=nbytes, created_at=t)
        self.bytes_written_total += nbytes
        self.writes += 1

    def get(self, path: str) -> Any:
        """Fetch the object at ``path`` (KeyError if absent)."""
        entry = self._entries[path]
        self.bytes_read_total += entry.nbytes
        self.reads += 1
        return entry.data

    def peek(self, path: str) -> Optional[Any]:
        """Read an object without touching the read counters (or None).

        The executor plane stages speculative task payloads through this;
        the authoritative read (and its ``reads``/byte accounting) happens
        later on the simulated data path.
        """
        entry = self._entries.get(path)
        return None if entry is None else entry.data

    def exists(self, path: str) -> bool:
        return path in self._entries

    def size_of(self, path: str) -> int:
        """Stored size in bytes of the object at ``path``."""
        return self._entries[path].nbytes

    def delete(self, path: str) -> bool:
        """Remove a path; returns True if it existed."""
        return self._entries.pop(path, None) is not None

    def list_prefix(self, prefix: str) -> List[str]:
        """All stored paths starting with ``prefix`` (sorted)."""
        return sorted(p for p in self._entries if p.startswith(prefix))

    def delete_prefix(self, prefix: str) -> int:
        """Remove every path under a prefix; returns the count removed."""
        doomed = self.list_prefix(prefix)
        for path in doomed:
            del self._entries[path]
        return len(doomed)

    @property
    def used_bytes(self) -> int:
        """Logical bytes currently stored (pre-replication)."""
        return sum(e.nbytes for e in self._entries.values())

    @property
    def replicated_bytes(self) -> int:
        """Physical bytes on disk including replication."""
        return self.used_bytes * self.config.replication

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate (path, nbytes) pairs."""
        for path, entry in self._entries.items():
            yield path, entry.nbytes
