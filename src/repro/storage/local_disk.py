"""Worker-local SSD storage.

Local disks hold shuffle map outputs and blocks evicted from the in-memory
RDD cache.  Unlike the DFS, local-disk contents vanish when the instance is
revoked — losing shuffle files is the reason concurrent revocations force
upstream map-stage re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List


class DiskFullError(RuntimeError):
    """Raised when a put would exceed the disk's capacity."""


@dataclass
class _DiskEntry:
    data: Any
    nbytes: int


class LocalDisk:
    """A capacity-bounded local object store with a timing model.

    Defaults approximate the r3.large local SSD: 32GB, a few hundred MB/s.
    """

    def __init__(
        self,
        capacity_bytes: int = 32 * 10**9,
        read_bandwidth: float = 300e6,
        write_bandwidth: float = 200e6,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.read_bandwidth = float(read_bandwidth)
        self.write_bandwidth = float(write_bandwidth)
        self._entries: Dict[str, _DiskEntry] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def write_duration(self, nbytes: int) -> float:
        """Seconds to write ``nbytes`` sequentially."""
        return nbytes / self.write_bandwidth

    def read_duration(self, nbytes: int) -> float:
        """Seconds to read ``nbytes`` sequentially."""
        return nbytes / self.read_bandwidth

    def put(self, key: str, data: Any, nbytes: int) -> None:
        """Store an object; raises :class:`DiskFullError` when over capacity."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        old = self._entries.get(key)
        delta = nbytes - (old.nbytes if old else 0)
        if self._used + delta > self.capacity_bytes:
            raise DiskFullError(
                f"put of {nbytes}B would exceed capacity "
                f"({self._used}/{self.capacity_bytes}B used)"
            )
        self._entries[key] = _DiskEntry(data=data, nbytes=nbytes)
        self._used += delta

    def get(self, key: str) -> Any:
        """Fetch a stored object (KeyError if absent)."""
        return self._entries[key].data

    def size_of(self, key: str) -> int:
        return self._entries[key].nbytes

    def has(self, key: str) -> bool:
        return key in self._entries

    def delete(self, key: str) -> bool:
        """Remove a key; returns True if it existed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._used -= entry.nbytes
        return True

    def keys(self) -> List[str]:
        return sorted(self._entries)

    def clear(self) -> None:
        """Wipe the disk — what a revocation does to local state."""
        self._entries.clear()
        self._used = 0
