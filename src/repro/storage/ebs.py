"""EBS volume cost model (§4 "Checkpoint Storage" and §5.5).

SSD EBS volumes cost $0.10 per GB per month.  Flint conservatively provisions
2x cluster memory for checkpoints; because Flint is a managed service the
volumes are reused across jobs and their cost amortises to about 2% of the
on-demand instance price and 10-20% of the average spot price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.clock import HOUR

SECONDS_PER_MONTH = 30 * 24 * HOUR


@dataclass(frozen=True)
class EBSCostModel:
    """Amortised pricing for checkpoint volumes.

    Attributes:
        price_per_gb_month: Amazon's gp2 SSD price ($0.10/GB-month).
        memory_provision_factor: volume GB provisioned per GB of cluster
            memory (the paper conservatively uses 2x).
    """

    price_per_gb_month: float = 0.10
    memory_provision_factor: float = 2.0

    def provisioned_gb(self, cluster_memory_gb: float) -> float:
        """Volume capacity provisioned for a cluster of given total memory."""
        if cluster_memory_gb < 0:
            raise ValueError("cluster_memory_gb must be non-negative")
        return cluster_memory_gb * self.memory_provision_factor

    def hourly_cost(self, volume_gb: float) -> float:
        """$/hour for a volume of ``volume_gb``."""
        if volume_gb < 0:
            raise ValueError("volume_gb must be non-negative")
        return volume_gb * self.price_per_gb_month / (30 * 24)

    def cost_for(self, volume_gb: float, duration_seconds: float) -> float:
        """Amortised cost of holding a volume for a duration."""
        if duration_seconds < 0:
            raise ValueError("duration_seconds must be non-negative")
        return self.hourly_cost(volume_gb) * duration_seconds / HOUR

    def cluster_checkpoint_cost(self, cluster_memory_gb: float, duration_seconds: float) -> float:
        """Cost of checkpoint volumes for a cluster over a duration."""
        return self.cost_for(self.provisioned_gb(cluster_memory_gb), duration_seconds)
