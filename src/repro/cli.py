"""Command-line interface to the Flint managed service (§4).

The paper's users "interact with Flint via the command-line to submit,
monitor, and interact with their Spark programs".  This module is that
surface for the reproduction:

    python -m repro.cli markets                 # what the node manager sees
    python -m repro.cli select --mode batch     # dry-run server selection
    python -m repro.cli run --workload pagerank # run a workload under Flint
    python -m repro.cli canonical --selector flint-batch --runs 20

Every subcommand builds its own deterministic universe from ``--seed``, so
runs are reproducible and safe to diff.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.longrun import (
    CanonicalConfig,
    CanonicalSimulator,
    flint_batch_selector,
    on_demand_selector,
    spot_fleet_selector,
)
from repro.analysis.tables import format_table
from repro.core.config import FlintConfig, Mode
from repro.core.flint import Flint
from repro.core.selection import (
    BatchSelectionPolicy,
    InteractiveSelectionPolicy,
    market_correlation_fn,
    snapshot_markets,
)
from repro.factory import standard_provider
from repro.simulation.clock import HOUR


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="universe seed")


def _add_executor(parser: argparse.ArgumentParser) -> None:
    """Executor-plane flags for subcommands that run the engine.

    ``--executor`` mirrors ``FLINT_EXECUTOR`` and ``--executor-workers``
    mirrors ``FLINT_WORKERS`` (distinct from ``--workers``, which sizes the
    simulated *cluster*).  Precedence: flag > environment > default
    (``inline``; pool sized to host cores, capped at 4).
    """
    from repro.engine.executor import EXECUTOR_BACKENDS

    parser.add_argument("--executor", choices=list(EXECUTOR_BACKENDS), default=None,
                        help="where task bodies run (default: $FLINT_EXECUTOR or inline)")
    parser.add_argument("--executor-workers", type=int, default=None,
                        help="executor pool size (default: $FLINT_WORKERS or host cores)")
    parser.add_argument("--columnar", choices=["on", "off"], default=None,
                        help="vectorised batch kernels for fused chains "
                             "(default: $FLINT_COLUMNAR or on)")


def _add_streaming(parser: argparse.ArgumentParser) -> None:
    """Micro-batch flags for subcommands that can run the streaming plane."""
    parser.add_argument("--batch-interval", type=float, default=30.0,
                        help="streaming: simulated seconds between micro-batches")
    parser.add_argument("--window", type=int, default=1,
                        help="streaming: window size in batches (>1 runs the "
                             "windowed aggregation instead of stateful wordcount)")
    parser.add_argument("--slide", type=int, default=None,
                        help="streaming: window slide in batches (default: window)")
    parser.add_argument("--batches", type=int, default=8,
                        help="streaming: how many micro-batches to run")


def _build_streaming_workload(ctx, args: argparse.Namespace, partitions: int):
    """The CLI's streaming scenario: windowed aggregation when ``--window``
    exceeds one batch, τ-checkpointed stateful wordcount otherwise."""
    from repro.streaming import StreamingWindowWorkload, StreamingWordCountWorkload

    if args.window > 1:
        return StreamingWindowWorkload(
            ctx,
            partitions=partitions,
            num_batches=args.batches,
            window=args.window,
            slide=args.slide,
            batch_interval=args.batch_interval,
        )
    return StreamingWordCountWorkload(
        ctx,
        partitions=partitions,
        num_batches=args.batches,
        batch_interval=args.batch_interval,
        checkpointing=True,
        initial_delta=20.0,
        max_tau=2 * args.batch_interval,
    )


def _print_streaming_summary(workload) -> None:
    import statistics

    ssc = workload.ssc
    latencies = ssc.latencies()
    print(
        f"batches: {len(ssc.batches)}  "
        f"median batch latency: {statistics.median(latencies):.2f}s  "
        f"sustained: {ssc.sustained_records_per_second():.0f} records/s"
    )
    if ssc.policy is not None:
        print(f"state checkpoints: {ssc.policy.stats.marks} "
              f"(tau={ssc.policy.tau:.0f}s)")


def _apply_executor(args: argparse.Namespace) -> None:
    """Publish the executor flags to the environment.

    Scenario builders construct their own contexts, so — exactly like
    ``FLINT_TRACE`` — the environment is the channel that reaches every one
    of them.  Flags override any inherited env value; absent flags leave the
    environment (and therefore its precedence over defaults) untouched.
    """
    import os

    if args.executor is not None:
        os.environ["FLINT_EXECUTOR"] = args.executor
    if args.executor_workers is not None:
        os.environ["FLINT_WORKERS"] = str(args.executor_workers)
    if args.columnar is not None:
        os.environ["FLINT_COLUMNAR"] = args.columnar


def cmd_markets(args: argparse.Namespace) -> int:
    """Print the spot universe as the node manager snapshots it."""
    provider = standard_provider(seed=args.seed)
    snaps = snapshot_markets(provider, t=0.0)
    rows = []
    for s in sorted(snaps, key=lambda s: s.mean_price):
        mttf = "inf" if s.mttf == float("inf") else f"{s.mttf / HOUR:.0f}h"
        rows.append(
            [s.market_id, s.current_price, s.mean_price, mttf,
             "SPIKING" if s.price_is_spiking else ""]
        )
    print(format_table(
        ["market", "current $/h", "mean $/h", "MTTF", "state"],
        rows, title=f"spot universe (seed={args.seed})", float_fmt="{:.4f}",
    ))
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    """Dry-run the batch or interactive selection policy."""
    provider = standard_provider(seed=args.seed)
    snaps = snapshot_markets(provider, t=0.0)
    if args.mode == "batch":
        result = BatchSelectionPolicy(T_estimate=args.hours * HOUR).select(snaps)
    else:
        correlation = market_correlation_fn(provider, 0.0)
        result = InteractiveSelectionPolicy(T_estimate=args.hours * HOUR).select(
            snaps, correlation
        )
    print(f"mode: {args.mode}")
    print(f"markets: {', '.join(result.market_ids)}")
    print(f"expected runtime: {result.expected_runtime:.0f}s")
    print(f"expected cost/server: ${result.expected_cost_per_server:.4f}")
    print(f"expected runtime variance: {result.expected_variance:.1f}s^2")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run one of the paper's workloads under a Flint cluster."""
    from repro.workloads import (
        ALSWorkload,
        KMeansWorkload,
        PageRankWorkload,
        TPCHSession,
    )

    _apply_executor(args)
    provider = standard_provider(seed=args.seed)
    mode = Mode.INTERACTIVE if args.mode == "interactive" else Mode.BATCH
    flint = Flint(
        provider,
        FlintConfig(cluster_size=args.nodes, mode=mode, T_estimate=args.hours * HOUR),
        seed=args.seed,
    )
    flint.start()
    print(f"cluster: {flint.cluster.markets_in_use()}")
    ctx = flint.context
    if args.workload == "pagerank":
        workload = PageRankWorkload(ctx, partitions=2 * args.nodes)
        report = flint.run(lambda _ctx: workload.run(), name="pagerank")
    elif args.workload == "kmeans":
        workload = KMeansWorkload(ctx, partitions=2 * args.nodes)
        report = flint.run(lambda _ctx: workload.run(), name="kmeans")
    elif args.workload == "als":
        workload = ALSWorkload(ctx, partitions=2 * args.nodes)
        report = flint.run(lambda _ctx: workload.run(), name="als")
    elif args.workload == "streaming":
        workload = _build_streaming_workload(ctx, args, partitions=2 * args.nodes)
        report = flint.run(lambda _ctx: workload.run(), name="streaming")
    else:  # tpch
        session = TPCHSession(ctx, partitions=2 * args.nodes)
        session.load()
        report = flint.run(lambda _ctx: (session.q1(), session.q3(), session.q6()),
                           name="tpch")
    print(f"runtime: {report.runtime:.1f}s (simulated)")
    print(f"revocations during run: {report.revocations}")
    if args.workload == "streaming":
        _print_streaming_summary(workload)
    summary = flint.cost_summary()
    print(f"cost: ${summary['total_cost']:.4f} "
          f"(instances ${summary['instance_cost']:.4f} "
          f"+ EBS ${summary['ebs_cost']:.4f})")
    flint.shutdown()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant serving scenario and print its SLO summary.

    Exits nonzero when any query failed or was shed by admission control, so
    scripted runs can gate on serving health.
    """
    from repro.server.scenario import run_multitenant
    from repro.server.tenancy import RetryPolicy, TenancyConfig, TenantPolicy

    _apply_executor(args)
    tenancy = None
    if (args.tenant_quota is not None or args.tenant_rate is not None
            or args.breaker_threshold is not None):
        tenancy = TenancyConfig(default=TenantPolicy(
            max_in_flight=args.tenant_quota,
            rate=args.tenant_rate,
            burst=args.tenant_burst,
            breaker_threshold=args.breaker_threshold,
            breaker_reset=args.breaker_reset,
        ))
    retry = (
        RetryPolicy(max_attempts=args.retry_attempts)
        if args.retry_attempts else None
    )
    report = run_multitenant(
        policy=args.policy,
        num_workers=args.workers,
        seed=args.seed,
        queries=args.queries,
        think_time=args.think_time,
        revoke=args.revoke,
        max_queue=args.queue_cap,
        interactive_cap=args.interactive_cap,
        clients=args.clients,
        tenancy=tenancy,
        retry=retry,
        journal_path=args.journal,
        result_cache=args.result_cache,
    )
    rows = []
    for pool_name, pool in report["pools"].items():
        rows.append([
            pool_name,
            pool["queries"],
            pool["completed"],
            pool["failed"],
            pool["rejected"],
            _fmt_s(pool["p50_response"]),
            _fmt_s(pool["p95_response"]),
            _fmt_s(pool["p99_response"]),
            _fmt_s(pool["mean_queue_delay"]),
        ])
    print(format_table(
        ["pool", "queries", "done", "failed", "rejected",
         "p50 (s)", "p95 (s)", "p99 (s)", "queue delay (s)"],
        rows,
        title=(f"job server SLOs (policy={report['scheduling_policy']}, "
               f"seed={args.seed}, workers={args.workers})"),
    ))
    print(f"submitted: {report['submitted']}  completed: {report['completed']}  "
          f"failed: {report['failed']}  rejected: {report['rejected']}  "
          f"queued peak: {report['queued_peak']}")
    print(f"revocations: {report['revocations']}")
    if report.get("rejected_by_reason"):
        reasons = ", ".join(f"{k}={v}" for k, v in
                            sorted(report["rejected_by_reason"].items()))
        print(f"rejections by reason: {reasons}  "
              f"client retries: {report.get('client_retries', 0)}")
    if report.get("tenants"):
        t_rows = [[t["tenant"], t["submitted"], t["admitted"], t["completed"],
                   t["failed"], t["cache_hits"],
                   sum(t["rejections"].values()),
                   t["breaker_state"] or "-"]
                  for t in report["tenants"].values()]
        print(format_table(
            ["tenant", "submitted", "admitted", "done", "failed",
             "cache hits", "shed", "breaker"],
            t_rows, title="per-tenant admission",
        ))
    if report.get("result_cache"):
        cache = report["result_cache"]
        print(f"result cache: entries={cache['entries']} hits={cache['hits']} "
              f"misses={cache['misses']} evictions={cache['evictions']} "
              f"validated={cache['validated']}")
    if args.journal:
        print(f"journal: {args.journal}")
    if report["failed"] or report["rejected"]:
        print("UNHEALTHY: queries failed or were rejected", file=sys.stderr)
        return 1
    return 0


def _fmt_s(value: Optional[float]) -> str:
    """Fixed-precision simulated seconds; '-' when no sample exists."""
    return "-" if value is None else f"{value:.3f}"


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a scenario with engine-wide tracing on; export its timeline.

    Writes a Chrome ``trace_event`` JSON (loadable in ``chrome://tracing`` /
    Perfetto) plus a flat JSONL event log, verifies the emitted task spans
    reconcile exactly with the scheduler's books (invariant 8), and prints a
    span/metrics summary.  Exits nonzero on any reconciliation violation.
    """
    import os

    from repro.faults.invariants import InvariantChecker
    from repro.obs.export import write_chrome_trace, write_jsonl

    # The scenario builders construct their own contexts; the env var is the
    # channel that reaches every one of them.
    os.environ["FLINT_TRACE"] = "1"
    _apply_executor(args)

    captured = {}

    def _capture(ctx) -> None:
        # The checker must subscribe before anything runs, or post-run
        # checkpoint state looks unannounced (false invariant-3 hits).
        captured["ctx"] = ctx
        captured["checker"] = InvariantChecker(ctx)

    if args.scenario == "multitenant":
        from repro.server.scenario import run_multitenant

        run_multitenant(
            policy=args.policy,
            num_workers=args.workers,
            seed=args.seed,
            queries=args.queries,
            revoke=args.revoke,
            context_hook=_capture,
        )
    elif args.scenario == "storm":
        _run_storm_scenario(args, _capture)
    elif args.scenario == "streaming":
        _run_streaming_scenario(args, _capture)
    else:
        _run_workload_scenario(args, _capture)

    ctx = captured["ctx"]
    checker = captured["checker"]
    violations = checker.check("trace")

    events = ctx.obs.bus.events
    out_path = args.out
    events_path = args.events or f"{out_path}.jsonl"
    write_chrome_trace(events, out_path)
    write_jsonl(events, events_path)

    stats = ctx.scheduler.stats
    completed_spans = ctx.obs.bus.count("task", status="complete")
    lost_spans = ctx.obs.bus.count("task", status="lost")
    print(f"trace: {len(events)} events -> {out_path} (+ {events_path})")
    print(
        f"task spans: {completed_spans} complete / {lost_spans} lost; "
        f"scheduler books: {stats.tasks_completed} completed / "
        f"{stats.tasks_lost} lost"
    )
    print(
        f"spans by kind: "
        + ", ".join(
            f"{kind}={n}"
            for kind in sorted({e.kind for e in events})
            if (n := ctx.obs.bus.count(kind))
        )
    )
    metrics = ctx.metrics_report()
    highlights = {
        name: value
        for name, value in metrics["counters"].items()
        if name.startswith(("scheduler.", "blocks.", "checkpoint.gc"))
    }
    if highlights:
        print("counters: " + ", ".join(f"{k}={v:g}" for k, v in sorted(highlights.items())))
    if violations:
        for violation in violations:
            print(f"RECONCILIATION FAILURE: {violation}", file=sys.stderr)
        return 1
    print("span/book reconciliation: OK")
    return 0


def _run_storm_scenario(args: argparse.Namespace, context_hook) -> None:
    """The Figure 3 recipe: memory-heavy PageRank + correlated revocations.

    An oversized working set under MEMORY_ONLY persistence plus a burst of
    revocations mid-iteration produces the recomputation storm; the trace
    shows it as ``recompute`` ticks and re-run task spans on the surviving
    workers' lanes.
    """
    from repro.analysis.experiments import build_engine_context
    from repro.workloads import PageRankWorkload

    ctx = build_engine_context(num_workers=args.workers, seed=args.seed)
    context_hook(ctx)
    workload = PageRankWorkload(
        ctx, data_gb=6.0, num_edges=8_000, num_vertices=1_600,
        partitions=8, iterations=6, memory_inflation=2.5, seed=99,
    )
    workload.load()

    def _revoke(_event):
        victims = ctx.cluster.live_workers()[:2]
        if victims:
            ctx.cluster.force_revoke(victims)

    ctx.env.schedule_at(args.revoke_at, "storm_revocation", callback=_revoke)
    workload.run()


def _run_streaming_scenario(args: argparse.Namespace, context_hook) -> None:
    """Trace the micro-batch plane: ``stream-batch`` spans on the
    driver/streaming lane over the usual task/job/cache books."""
    from repro.analysis.experiments import build_engine_context

    ctx = build_engine_context(num_workers=args.workers, seed=args.seed)
    context_hook(ctx)
    workload = _build_streaming_workload(ctx, args, partitions=2 * args.workers)
    workload.load()
    workload.run()


def _run_workload_scenario(args: argparse.Namespace, context_hook) -> None:
    from repro.analysis.experiments import build_engine_context
    from repro.workloads import ALSWorkload, KMeansWorkload, PageRankWorkload

    ctx = build_engine_context(num_workers=args.workers, seed=args.seed)
    context_hook(ctx)
    factories = {
        "pagerank": lambda: PageRankWorkload(ctx, partitions=2 * args.workers),
        "kmeans": lambda: KMeansWorkload(ctx, partitions=2 * args.workers),
        "als": lambda: ALSWorkload(ctx, partitions=2 * args.workers),
    }
    workload = factories[args.scenario]()
    workload.load()
    workload.run()


def cmd_advise(args: argparse.Namespace) -> int:
    """Print the what-if report for a prospective job."""
    from repro.core.advisor import JobProfile, advise

    provider = standard_provider(seed=args.seed)
    advice = advise(
        provider,
        JobProfile(runtime=args.hours * HOUR, cluster_size=args.nodes),
    )
    print(advice.render())
    return 0


def cmd_canonical(args: argparse.Namespace) -> int:
    """Long-run canonical-job simulation (the Figures 10/11 harness)."""
    import numpy as np

    provider = standard_provider(seed=args.seed)
    selectors = {
        "flint-batch": (flint_batch_selector(), True),
        "spot-fleet": (spot_fleet_selector(), False),
        "on-demand": (on_demand_selector(), False),
    }
    selector, checkpointing = selectors[args.selector]
    config = CanonicalConfig(job_length=args.hours * HOUR, checkpointing=checkpointing)
    sim = CanonicalSimulator(provider, config, selector)
    outcomes = sim.sweep(num_runs=args.runs, spacing=8 * HOUR)
    print(format_table(
        ["metric", "value"],
        [
            ["runs", args.runs],
            ["mean runtime (s)", float(np.mean([o.runtime for o in outcomes]))],
            ["mean overhead (%)", 100 * float(np.mean([o.overhead for o in outcomes]))],
            ["mean cost ($)", float(np.mean([o.cost for o in outcomes]))],
            ["total revocations", sum(o.revocations for o in outcomes)],
        ],
        title=f"canonical job under {args.selector}",
    ))
    return 0


def cmd_longrun(args: argparse.Namespace) -> int:
    """Portfolio sweep at scale: 1000s of nodes over weeks of trace."""
    from repro.analysis.longrun import LongHorizonConfig, run_long_horizon

    provider = standard_provider(seed=args.seed)
    config = LongHorizonConfig(
        num_nodes=args.nodes,
        weeks=args.weeks,
        portfolio_size=args.portfolio,
        job_length=args.hours * HOUR,
        spacing=args.spacing * HOUR,
        checkpointing=not args.no_checkpointing,
        bid_multiplier=args.bid_multiplier,
        interactive=not args.batch,
    )
    report = run_long_horizon(provider, config)
    print(format_table(
        ["metric", "value"],
        [
            ["nodes", config.num_nodes],
            ["weeks", config.weeks],
            ["portfolio", ", ".join(report.portfolio)],
            ["jobs", report.jobs],
            ["total cost ($)", report.total_cost],
            ["total revocations", report.total_revocations],
            ["total checkpoints", report.total_checkpoints],
            ["simulated seconds", report.simulated_seconds],
            ["wall seconds", report.wall_seconds],
            ["simulated s / wall s", report.simulated_seconds_per_wall_second],
        ],
        title=f"long-horizon portfolio sweep ({'batch' if args.batch else 'interactive'})",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Flint (EuroSys'16) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("markets", help="show the spot universe")
    _add_common(p)
    p.set_defaults(func=cmd_markets)

    p = sub.add_parser("select", help="dry-run server selection")
    _add_common(p)
    p.add_argument("--mode", choices=["batch", "interactive"], default="batch")
    p.add_argument("--hours", type=float, default=2.0, help="job length estimate")
    p.set_defaults(func=cmd_select)

    p = sub.add_parser("run", help="run a workload under Flint")
    _add_common(p)
    p.add_argument("--workload",
                   choices=["pagerank", "kmeans", "als", "tpch", "streaming"],
                   default="pagerank")
    p.add_argument("--mode", choices=["batch", "interactive"], default="batch")
    p.add_argument("--nodes", type=int, default=10)
    p.add_argument("--hours", type=float, default=2.0)
    _add_streaming(p)
    _add_executor(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("serve", help="multi-tenant job server scenario + SLO report")
    _add_common(p)
    p.add_argument("--policy", choices=["fifo", "fair"], default="fair",
                   help="root scheduling policy across pools")
    p.add_argument("--workers", type=int, default=10)
    p.add_argument("--queries", type=int, default=8,
                   help="queries per interactive client")
    p.add_argument("--clients", type=int, default=1,
                   help="closed-loop interactive clients")
    p.add_argument("--think-time", type=float, default=15.0,
                   help="mean client think time (simulated s)")
    p.add_argument("--queue-cap", type=int, default=16,
                   help="admission queue bound; arrivals beyond it are shed")
    p.add_argument("--interactive-cap", type=int, default=None,
                   help="max concurrent interactive queries (default unlimited)")
    p.add_argument("--revoke", action="store_true",
                   help="revoke one worker mid-stream (replacement after 120s)")
    p.add_argument("--tenant-quota", type=int, default=None,
                   help="per-tenant max queued+running queries")
    p.add_argument("--tenant-rate", type=float, default=None,
                   help="per-tenant admission rate limit (queries/sim s)")
    p.add_argument("--tenant-burst", type=float, default=4.0,
                   help="token-bucket burst capacity (with --tenant-rate)")
    p.add_argument("--breaker-threshold", type=int, default=None,
                   help="consecutive failures that open a tenant's circuit")
    p.add_argument("--breaker-reset", type=float, default=60.0,
                   help="simulated seconds an open circuit sheds before probing")
    p.add_argument("--retry-attempts", type=int, default=0,
                   help="client retries for shed queries (seeded backoff)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="append query lifecycle JSONL journal at PATH")
    p.add_argument("--result-cache", action="store_true",
                   help="share query results across sessions by lineage key")
    _add_executor(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("trace", help="run a scenario traced; export a Chrome timeline")
    _add_common(p)
    p.add_argument("scenario",
                   choices=["multitenant", "storm", "streaming",
                            "pagerank", "kmeans", "als"],
                   help="what to run under FLINT_TRACE=1")
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace_event JSON output path")
    p.add_argument("--events", default=None,
                   help="JSONL event-log path (default: <out>.jsonl)")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--policy", choices=["fifo", "fair"], default="fair",
                   help="multitenant scenario: root scheduling policy")
    p.add_argument("--queries", type=int, default=4,
                   help="multitenant scenario: queries per client")
    p.add_argument("--revoke", action="store_true",
                   help="multitenant scenario: revoke one worker mid-stream")
    p.add_argument("--revoke-at", type=float, default=150.0,
                   help="storm scenario: simulated time of the revocation burst")
    _add_streaming(p)
    _add_executor(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("advise", help="what-if report: every market + both policies")
    _add_common(p)
    p.add_argument("--hours", type=float, default=2.0, help="job length")
    p.add_argument("--nodes", type=int, default=10)
    p.set_defaults(func=cmd_advise)

    p = sub.add_parser("canonical", help="long-run canonical-job simulation")
    _add_common(p)
    p.add_argument("--selector", choices=["flint-batch", "spot-fleet", "on-demand"],
                   default="flint-batch")
    p.add_argument("--runs", type=int, default=20)
    p.add_argument("--hours", type=float, default=2.0)
    p.set_defaults(func=cmd_canonical)

    p = sub.add_parser("longrun",
                       help="portfolio sweep at scale (10k nodes, month-long)")
    _add_common(p)
    p.add_argument("--nodes", type=int, default=1000,
                   help="cluster size diversified over the portfolio")
    p.add_argument("--weeks", type=float, default=2.0,
                   help="simulated horizon in weeks")
    p.add_argument("--portfolio", type=int, default=4,
                   help="number of spot markets in the portfolio")
    p.add_argument("--hours", type=float, default=2.0, help="job length")
    p.add_argument("--spacing", type=float, default=6.0,
                   help="hours between job starts")
    p.add_argument("--bid-multiplier", type=float, default=1.0)
    p.add_argument("--no-checkpointing", action="store_true")
    p.add_argument("--batch", action="store_true",
                   help="single-market batch jobs instead of diversified")
    p.set_defaults(func=cmd_longrun)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
