#!/usr/bin/env python3
"""Streaming BIDI on transient servers (the paper's §6 extension).

A discretised stream folds micro-batches into a running state RDD whose
lineage grows with every batch.  On spot servers, a late revocation without
checkpoints would force recomputation across the entire stream history;
Flint's τ-periodic frontier checkpoints truncate the lineage as it grows.

Run:  python examples/streaming_pipeline.py
"""

from repro import Flint, FlintConfig, Mode
from repro.engine import lineage
from repro.factory import uniform_mttf_provider
from repro.simulation.clock import HOUR
from repro.workloads.streaming import StreamingWorkload


def main():
    provider = uniform_mttf_provider(seed=37, mttf_hours=1.0, num_markets=4)
    flint = Flint(
        provider,
        FlintConfig(cluster_size=8, mode=Mode.BATCH, T_estimate=2 * HOUR,
                    min_tau=60.0, max_tau=600.0),
        seed=37,
    )
    flint.start()
    print(f"cluster: {flint.cluster.markets_in_use()}, tau={flint.current_tau:.0f}s")

    stream = StreamingWorkload(
        flint.context, batch_records=2_000, batch_gb=0.5, num_keys=100,
        partitions=16, batch_interval=120.0,
    )
    for batch in range(12):
        total = stream.process_batch()
        flint.idle_until(flint.env.now + stream.batch_interval)
        depth = lineage.lineage_depth(stream.state)
        ckpts = flint.context.checkpoints.partitions_written
        revs = len(flint.cluster.revocation_log)
        print(
            f"batch {batch:2d}  t={flint.env.now:7.0f}s  state records {total:4d}  "
            f"lineage depth {depth:3d}  ckpt partitions {ckpts:4d}  revocations {revs}"
        )

    final = dict(stream.state.collect())
    expected = stream.expected_state(12)
    print(f"\nstream state exact after {len(flint.cluster.revocation_log)} "
          f"revocations: {final == expected}")
    print(f"cost: ${flint.cost_summary()['total_cost']:.3f}")
    flint.shutdown()


if __name__ == "__main__":
    main()
