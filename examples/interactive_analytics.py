#!/usr/bin/env python3
"""Interactive BIDI: a long-lived TPC-H session on a diversified spot cluster.

Simulates an analyst issuing queries over hours while the cluster weathers
revocations.  Flint's interactive mode spreads the ten servers over
uncorrelated markets, so each revocation event takes out only a slice, and
its automatic checkpoints mean lost cached tables reload from HDFS rather
than rebuilding from S3.

Run:  python examples/interactive_analytics.py
"""

from repro import Flint, FlintConfig, Mode, standard_provider
from repro.simulation.clock import HOUR
from repro.workloads import TPCHSession


def main():
    provider = standard_provider(seed=29)
    flint = Flint(
        provider,
        FlintConfig(cluster_size=10, mode=Mode.INTERACTIVE, T_estimate=6 * HOUR),
        seed=29,
    )
    flint.start()
    print("diversified cluster:", flint.cluster.markets_in_use())

    session = TPCHSession(
        flint.context, data_gb=10.0, lineitem_rows=12_000, orders_rows=3_000,
        customer_rows=800, partitions=20,
    )
    session.load()
    print(f"tables cached at t={flint.env.now:.0f}s\n")

    queries = [("Q6 revenue", session.q6), ("Q3 top orders", session.q3),
               ("Q1 pricing summary", session.q1)]
    # The analyst works in bursts with think time between them; the session
    # runs long enough to cross checkpoint intervals and real revocations.
    for burst in range(5):
        for name, query in queries:
            _result, latency = session.timed(query)
            revoked = len(flint.cluster.revocation_log)
            print(
                f"t={flint.env.now/3600:6.2f}h  {name:20s} "
                f"latency {latency:7.1f}s   cluster {flint.cluster.size:2d}/10   "
                f"revocations so far {revoked}"
            )
        flint.idle_until(flint.env.now + 2 * HOUR)

    summary = flint.cost_summary()
    print(
        f"\nsession: {summary['elapsed_hours']:.1f}h, "
        f"{int(summary['revocations'])} revocations, "
        f"total cost ${summary['total_cost']:.2f} "
        f"(on-demand would be ${10 * 0.175 * summary['elapsed_hours']:.2f})"
    )
    flint.shutdown()


if __name__ == "__main__":
    main()
