#!/usr/bin/env python3
"""Flint on GCE-style preemptible instances (no bidding, 24h max lifetime).

GCE preemptible VMs have a fixed price and no spot market, so bidding
strategies are useless there — but Flint's checkpointing and restoration
policies still apply (§2.1, §6).  This example runs a KMeans job on a
preemptible pool whose instances are individually revoked within 24 hours,
and shows the checkpoint interval adapting to the ~22h MTTF.

Run:  python examples/gce_preemptible.py
"""

from repro import Flint, FlintConfig, Mode, standard_provider
from repro.simulation.clock import HOUR
from repro.workloads import KMeansWorkload


def main():
    # A GCE-only universe: one preemptible pool plus the on-demand fallback
    # (GCE has no per-zone spot markets to arbitrage between).
    provider = standard_provider(seed=17, catalog=[], include_preemptible=True)
    config = FlintConfig(cluster_size=8, mode=Mode.BATCH, T_estimate=2 * HOUR)
    flint = Flint(provider, config, seed=17)
    flint.start()
    gce = provider.market("gce/preemptible")
    print(f"preemptible price: ${gce.fixed_price:.4f}/h "
          f"(on-demand ${gce.on_demand_price:.4f}/h)")
    print(f"pool MTTF: {gce.estimate_mttf(0.0, 0.0) / HOUR:.1f}h")
    print(f"selected markets: {flint.cluster.markets_in_use()}")
    print(f"checkpoint interval tau: {flint.current_tau:.0f}s")

    km = KMeansWorkload(
        flint.context, data_gb=16.0, num_points=12_000, k=10,
        partitions=16, iterations=8, seed=17,
    )
    report = flint.run(lambda _ctx: km.run(), name="kmeans")
    print(f"\nkmeans runtime: {report.runtime:.0f}s "
          f"({len(report.result)} centroids)")
    print(f"revocations: {len(flint.cluster.revocation_log)}")
    print(f"checkpoint partitions written: "
          f"{flint.context.checkpoints.partitions_written}")

    summary = flint.cost_summary()
    print(f"total cost: ${summary['total_cost']:.3f} over "
          f"{summary['elapsed_hours']:.2f}h")
    flint.shutdown()


if __name__ == "__main__":
    main()
