#!/usr/bin/env python3
"""Quickstart: run a Spark-style job on transient servers with Flint.

Builds a synthetic EC2-like spot universe, starts a 10-node Flint cluster
in batch mode, runs a small aggregation job, and prints what it cost —
including the EBS checkpoint volumes — versus the on-demand price.

Run:  python examples/quickstart.py
"""

from repro import Flint, FlintConfig, Mode, standard_provider
from repro.simulation.clock import HOUR


def job(ctx):
    """Word-frequency style aggregation over a generated dataset."""
    events = ctx.generate(
        lambda p: [(f"user-{i % 50}", 1) for i in range(p * 2000, (p + 1) * 2000)],
        num_partitions=20,
        record_size=100_000,  # virtual bytes/record: ~4GB of input
        name="events",
    )
    counts = events.reduce_by_key(lambda a, b: a + b).persist()
    top = sorted(counts.collect(), key=lambda kv: -kv[1])[:5]
    return top


def main():
    provider = standard_provider(seed=7)
    flint = Flint(
        provider,
        FlintConfig(cluster_size=10, mode=Mode.BATCH, T_estimate=1 * HOUR),
        seed=7,
    )
    flint.start()
    print(f"cluster markets: {flint.cluster.markets_in_use()}")
    print(f"checkpoint interval tau: {flint.current_tau:.0f}s")

    report = flint.run(job, name="top-users")
    print(f"\ntop users: {report.result}")
    print(f"simulated runtime: {report.runtime:.1f}s")
    print(f"revocations during job: {report.revocations}")

    # Keep the cluster for a 2-hour session so billing is representative.
    flint.idle_until(flint.env.now + 2 * HOUR)
    summary = flint.cost_summary()
    import math

    on_demand_equivalent = 10 * 0.175 * math.ceil(summary["elapsed_hours"])
    print(f"\nsession length: {summary['elapsed_hours']:.2f}h")
    print(f"instance cost: ${summary['instance_cost']:.4f}")
    print(f"EBS checkpoint cost: ${summary['ebs_cost']:.4f}")
    print(f"total: ${summary['total_cost']:.4f}")
    print(f"same session on on-demand servers: ${on_demand_equivalent:.4f}")
    savings = 1 - summary["total_cost"] / on_demand_equivalent
    print(f"savings: {savings:.0%}")
    flint.shutdown()


if __name__ == "__main__":
    main()
