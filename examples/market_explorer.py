#!/usr/bin/env python3
"""Explore the spot universe the way Flint's node manager sees it.

Prints every market's current price, recent mean, and MTTF at an on-demand
bid; the pairwise correlation structure; and what the batch and interactive
selection policies would pick for a 2-hour job — including why the
application-agnostic "cheapest current price" choice (SpotFleet) differs.

Run:  python examples/market_explorer.py
"""

from repro import standard_provider
from repro.analysis.tables import format_table
from repro.core.selection import (
    BatchSelectionPolicy,
    InteractiveSelectionPolicy,
    market_correlation_fn,
    snapshot_markets,
)
from repro.simulation.clock import HOUR


def main():
    provider = standard_provider(seed=11)
    t = 0.0
    snaps = snapshot_markets(provider, t)

    rows = []
    for s in sorted(snaps, key=lambda s: s.mean_price):
        mttf = "inf" if s.mttf == float("inf") else f"{s.mttf / HOUR:.0f}h"
        rows.append([
            s.market_id, s.current_price, s.mean_price, mttf,
            "SPIKING" if s.price_is_spiking else "",
        ])
    print(format_table(
        ["market", "current $/h", "mean $/h", "MTTF", "state"], rows,
        title="Spot universe", float_fmt="{:.4f}",
    ))

    batch = BatchSelectionPolicy(T_estimate=2 * HOUR)
    choice = batch.select(snaps)
    print(f"\nbatch policy picks: {choice.market_ids[0]}")
    print(f"  expected runtime {choice.expected_runtime:.0f}s, "
          f"expected cost ${choice.expected_cost_per_server:.4f}/server")

    cheapest_now = min(
        (s for s in snaps if not s.is_on_demand), key=lambda s: s.current_price
    )
    print(f"SpotFleet (cheapest current price) would pick: {cheapest_now.market_id}")
    print(f"  ... whose billed mean is ${cheapest_now.mean_price:.4f}/h vs the "
          f"${cheapest_now.current_price:.4f}/h it shows right now")

    interactive = InteractiveSelectionPolicy(T_estimate=2 * HOUR)
    correlation = market_correlation_fn(provider, t)
    mix = interactive.select(snaps, correlation)
    print(f"\ninteractive policy mixes {mix.num_markets} markets:")
    for market_id in mix.market_ids:
        print(f"  - {market_id}")
    print(f"  expected runtime variance {mix.expected_variance:.1f}s^2 "
          f"(single market: {choice.expected_variance:.1f}s^2)")


if __name__ == "__main__":
    main()
