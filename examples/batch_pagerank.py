#!/usr/bin/env python3
"""Batch BIDI on volatile spot markets: PageRank with automatic checkpointing.

Runs the paper's PageRank workload on a deliberately volatile spot universe
(MTTF ~45 minutes) three ways — Flint, unmodified Spark on the same spot
servers, and on-demand — and compares runtime and cost.  Revocations happen
for real mid-job; Flint's frontier checkpoints bound the recomputation.

Run:  python examples/batch_pagerank.py
"""

from repro import Flint, FlintConfig, Mode
from repro.baselines.unmodified import on_demand_flint, unmodified_spark_flint
from repro.factory import uniform_mttf_provider
from repro.simulation.clock import HOUR
from repro.workloads import PageRankWorkload


def run_one(label, flint):
    flint.start()
    pagerank = PageRankWorkload(
        flint.context, data_gb=2.0, num_edges=12_000, num_vertices=2_400,
        partitions=20, iterations=10, seed=3,
    )
    report = flint.run(lambda _ctx: pagerank.run(), name="pagerank")
    summary = flint.cost_summary()
    ckpts = flint.context.checkpoints.partitions_written
    print(
        f"{label:24s} runtime {report.runtime:8.1f}s   "
        f"revocations {len(flint.cluster.revocation_log):2d}   "
        f"checkpoint partitions {ckpts:4d}   cost ${summary['total_cost']:.3f}"
    )
    flint.shutdown()
    return report.result


def main():
    config = FlintConfig(cluster_size=10, mode=Mode.BATCH, T_estimate=1 * HOUR)

    provider = uniform_mttf_provider(seed=13, mttf_hours=0.75, num_markets=4)
    flint_ranks = run_one("Flint (spot)", Flint(provider, config, seed=13))

    provider = uniform_mttf_provider(seed=13, mttf_hours=0.75, num_markets=4)
    spark_ranks = run_one(
        "unmodified Spark (spot)", unmodified_spark_flint(provider, config, seed=13)
    )

    provider = uniform_mttf_provider(seed=13, mttf_hours=0.75, num_markets=4)
    od_ranks = run_one("on-demand", on_demand_flint(provider, config, seed=13))

    assert flint_ranks == spark_ranks == od_ranks
    print("\nall three configurations computed identical ranks "
          f"({len(od_ranks)} vertices) — fault tolerance is exact.")


if __name__ == "__main__":
    main()
