"""FaultInjector wiring: env-var install, hooks, stragglers, write failures."""

import pytest

from repro.faults import FaultPlan, install_plan
from repro.faults.injector import FaultInjector
from tests.conftest import build_on_demand_context


def small_pipeline(ctx):
    data = [(i % 5, i) for i in range(100)]
    return (
        ctx.parallelize(data, 8, record_size=1000)
        .reduce_by_key(lambda a, b: a + b)
        .persist()
    )


def expected_result():
    data = [(i % 5, i) for i in range(100)]
    out = {}
    for k, v in data:
        out[k] = out.get(k, 0) + v
    return out


def test_env_var_installs_injector(monkeypatch):
    monkeypatch.setenv("FLINT_FAULT_PLAN", "revoke at=task:5")
    ctx = build_on_demand_context(4)
    assert ctx.fault_injector is not None
    assert str(ctx.fault_injector.plan) == "revoke at=task:5"
    assert ctx.shuffle_manager.fault_injector is ctx.fault_injector


def test_env_var_absent_leaves_engine_clean(monkeypatch):
    monkeypatch.delenv("FLINT_FAULT_PLAN", raising=False)
    ctx = build_on_demand_context(4)
    assert ctx.fault_injector is None
    assert ctx.shuffle_manager.fault_injector is None
    assert ctx.checkpoints.write_failure_hook is None


def test_env_var_bad_spec_raises(monkeypatch):
    monkeypatch.setenv("FLINT_FAULT_PLAN", "explode at=task:1")
    with pytest.raises(Exception):
        build_on_demand_context(4)


def test_injector_installs_once_only():
    ctx = build_on_demand_context(4)
    injector = install_plan(ctx, "revoke at=task:5")
    with pytest.raises(RuntimeError):
        injector.install(ctx)


def test_revocation_fires_at_task_boundary():
    ctx = build_on_demand_context(4)
    injector = install_plan(ctx, "revoke at=task:3")
    agg = small_pipeline(ctx)
    assert dict(agg.collect()) == expected_result()
    assert len(injector.fired) == 1
    assert "revoked" in injector.fired[0].description
    assert len(ctx.cluster.live_workers()) == 3
    assert ctx.scheduler.stats.tasks_lost >= 0


def test_correlated_burst_kills_count_workers():
    ctx = build_on_demand_context(6)
    injector = install_plan(ctx, "revoke at=task:2 count=3")
    agg = small_pipeline(ctx)
    assert dict(agg.collect()) == expected_result()
    assert len(injector.fired[0].victims) == 3
    assert len(ctx.cluster.live_workers()) == 3


def test_replacement_workers_boot_after_delay():
    ctx = build_on_demand_context(4)
    install_plan(ctx, "revoke at=task:2 count=2 replace=60")
    agg = small_pipeline(ctx)
    agg.collect()
    ctx.env.run_until(ctx.now + 120)
    assert len(ctx.cluster.live_workers()) == 4


def test_straggler_slows_one_worker_and_run():
    base_ctx = build_on_demand_context(4)
    base = small_pipeline(base_ctx)
    base.collect()
    base_runtime = base_ctx.now

    slow_ctx = build_on_demand_context(4)
    injector = install_plan(slow_ctx, "slow at=dispatch:1 factor=10 worker=0")
    agg = small_pipeline(slow_ctx)
    assert dict(agg.collect()) == expected_result()
    assert injector.fired and "straggler" in injector.fired[0].description
    assert slow_ctx.now > base_runtime


def test_scale_task_duration_targets_only_named_worker():
    ctx = build_on_demand_context(4)
    injector = install_plan(ctx, "slow at=time:0 factor=3 worker=1")
    ctx.env.run_until(1.0)  # let the time trigger activate the clause
    live = ctx.cluster.live_workers()
    target = live[1]
    other = live[0]
    assert injector.scale_task_duration(None, target, 10.0) == 30.0
    assert injector.scale_task_duration(None, other, 10.0) == 10.0


def test_checkpoint_write_failure_retries_until_durable():
    ctx = build_on_demand_context(4)
    injector = install_plan(ctx, "ckpt-fail at=ckpt:1 count=2")
    agg = small_pipeline(ctx)
    agg.checkpoint()
    assert dict(agg.collect()) == expected_result()
    ctx.env.run_until(ctx.now + 300)
    # Two write attempts failed, were re-enqueued, and eventually landed.
    assert ctx.scheduler.stats.checkpoint_write_failures == 2
    assert len(injector.fired) == 2
    assert ctx.checkpoints.is_fully_checkpointed(agg)


def test_false_alarm_warning_kills_nobody():
    ctx = build_on_demand_context(4)
    injector = install_plan(ctx, "warn at=task:2")
    agg = small_pipeline(ctx)
    assert dict(agg.collect()) == expected_result()
    assert injector.fired and "false-alarm" in injector.fired[0].description
    assert len(ctx.cluster.live_workers()) == 4


def test_fired_faults_record_simulated_time():
    ctx = build_on_demand_context(4)
    injector = install_plan(ctx, "revoke at=time:15")
    agg = small_pipeline(ctx)
    agg.collect()
    ctx.env.run_until(30.0)  # the job may finish before the trigger
    assert injector.fired
    assert injector.fired[0].time == pytest.approx(15.0)


def test_clauses_fire_at_most_once():
    ctx = build_on_demand_context(6)
    injector = install_plan(ctx, "revoke at=task:2")
    agg = small_pipeline(ctx)
    agg.collect()
    agg.collect()  # plenty more task completions pass counter 2
    revokes = [f for f in injector.fired if "revoked" in f.description]
    assert len(revokes) == 1


def test_injector_without_checker_runs_no_checks():
    plan = FaultPlan.parse("revoke at=task:2")
    injector = FaultInjector(plan)
    ctx = build_on_demand_context(4)
    injector.install(ctx)
    agg = small_pipeline(ctx)
    agg.collect()
    assert injector.checker is None
