"""InvariantChecker: clean runs pass, planted corruption is caught."""

from repro.faults import InvariantChecker, InvariantViolation, install_plan
from tests.conftest import build_on_demand_context

import pytest


def run_pipeline(ctx):
    data = [(i % 5, i) for i in range(100)]
    agg = (
        ctx.parallelize(data, 8, record_size=1000)
        .reduce_by_key(lambda a, b: a + b)
        .persist()
    )
    agg.collect()
    return agg


def test_clean_run_has_no_violations():
    ctx = build_on_demand_context(4)
    checker = InvariantChecker(ctx)
    run_pipeline(ctx)
    assert checker.check("clean") == []
    assert checker.checks_run == 1
    assert checker.violations == []


def test_clean_faulted_run_has_no_violations():
    ctx = build_on_demand_context(4)
    checker = InvariantChecker(ctx)
    install_plan(ctx, "revoke at=task:3")
    run_pipeline(ctx)
    assert checker.check("post-fault") == []


def test_planted_ghost_index_entry_is_caught():
    ctx = build_on_demand_context(4)
    checker = InvariantChecker(ctx)
    run_pipeline(ctx)
    worker = ctx.cluster.live_workers()[0]
    ctx.block_index.add("rdd_999_0", worker)  # indexed, never stored
    found = checker.check()
    assert any("ghost block 'rdd_999_0'" in v for v in found)


def test_planted_index_leak_is_caught():
    ctx = build_on_demand_context(4)
    checker = InvariantChecker(ctx)
    run_pipeline(ctx)
    leaked = None
    for worker in ctx.cluster.live_workers():
        blocks = ctx.block_index.blocks_on(worker.worker_id)
        if blocks:
            leaked = (blocks[0], worker.worker_id)
            break
    assert leaked is not None
    ctx.block_index.remove(*leaked)  # cached block silently de-indexed
    found = checker.check()
    assert any("leaked block" in v and leaked[0] in v for v in found)


def test_corrupted_shuffle_missing_set_is_caught():
    ctx = build_on_demand_context(4)
    checker = InvariantChecker(ctx)
    run_pipeline(ctx)
    shuffles = ctx.shuffle_manager.tracked_shuffles()
    assert shuffles
    shuffle_id, _num_maps = shuffles[0]
    # Claim map 0 is missing even though its output is still on disk.
    ctx.shuffle_manager._missing[shuffle_id].add(0)
    found = checker.check()
    assert any(
        f"shuffle {shuffle_id} missing-set untruthful" in v for v in found
    )


def checkpointed_pipeline(ctx):
    data = [(i % 5, i) for i in range(100)]
    agg = (
        ctx.parallelize(data, 8, record_size=1000)
        .reduce_by_key(lambda a, b: a + b)
        .persist()
    )
    agg.checkpoint()  # mark before first compute so writes enqueue
    agg.collect()
    ctx.env.run_until(ctx.now + 300)  # drain the async writes
    return agg


def test_silent_checkpoint_loss_is_caught():
    ctx = build_on_demand_context(4)
    checker = InvariantChecker(ctx)
    agg = checkpointed_pipeline(ctx)
    assert ctx.checkpoints.is_fully_checkpointed(agg)
    assert checker.check() == []
    # Delete one checkpoint file behind the registry's back.
    path = ctx.checkpoints.path_for(agg.rdd_id, 0)
    assert ctx.env.dfs.delete(path)
    found = checker.check()
    assert any("vanished from the DFS" in v for v in found)


def test_notified_checkpoint_gc_is_legal():
    ctx = build_on_demand_context(4)
    checker = InvariantChecker(ctx)
    agg = checkpointed_pipeline(ctx)
    assert ctx.checkpoints.is_fully_checkpointed(agg)
    # A registry-driven removal announces itself; no violation — even
    # though the checkpoint frontier regresses.
    assert ctx.checkpoints.discard_partition(agg, 0)
    assert checker.check() == []


def test_dead_worker_index_entries_are_caught():
    ctx = build_on_demand_context(4)
    checker = InvariantChecker(ctx)
    run_pipeline(ctx)
    victim = None
    for worker in ctx.cluster.live_workers():
        if ctx.block_index.blocks_on(worker.worker_id):
            victim = worker
            break
    assert victim is not None
    # Kill the worker with the death->index purge path severed, so the
    # index still lists its blocks after death.
    victim.block_manager.index = None
    victim.kill()
    found = checker.check()
    assert any("indexed on dead worker" in v for v in found)


def test_raise_if_violated():
    ctx = build_on_demand_context(4)
    checker = InvariantChecker(ctx)
    checker.violations.append("synthetic violation")
    with pytest.raises(InvariantViolation) as excinfo:
        checker.raise_if_violated()
    assert "synthetic violation" in str(excinfo.value)
