"""The ``streaming`` chaos family: faults on the micro-batch plane.

Every plan lands at least one revocation mid-window or mid-state-checkpoint
(plus optional extra revocations, checkpoint-write failures, and cached
state-block loss) on the combined wordcount+window streaming workload.  The
harness holds the run to its failure-free reference and to every engine
invariant.
"""

from __future__ import annotations

import pytest

from repro.faults.chaos import (
    EXTRA_WORKLOADS,
    NUM_WORKERS,
    _StreamingChaosWorkload,
    generate_spec,
    run_chaos,
)
from repro.faults.harness import run_with_plan


def test_streaming_family_specs_always_hit_the_stream():
    # Every seed's plan opens with a revocation aimed mid-window
    # (time-triggered) or mid-state-checkpoint (ckpt-triggered).
    for seed in range(12):
        spec = generate_spec(seed, "streaming")
        first = spec.split(";")[0]
        assert first.startswith("revoke")
        assert "at=ckpt:" in first or "at=time:" in first


def test_streaming_workload_is_registered():
    assert EXTRA_WORKLOADS["Streaming"] is _StreamingChaosWorkload


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_streaming_plans_uphold_invariants(seed):
    spec = generate_spec(seed, "streaming")
    report = run_with_plan(
        _StreamingChaosWorkload,
        spec,
        mode="incremental",
        num_workers=NUM_WORKERS,
        checkpointing=True,
        mttf=1800.0,
    )
    assert report.results_match
    assert not report.violations


def test_streaming_family_sweep():
    report = run_chaos(
        seeds=range(2),
        workloads=["Streaming"],
        modes=["incremental"],
        families=["streaming"],
    )
    assert report.plans_run == 2
    assert report.faults_fired >= 2
    assert not report.failures
